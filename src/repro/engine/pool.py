"""Worker pool and the :class:`ExecutionEngine` facade.

Execution model:

* ``jobs=1`` runs every spec inline, in submission order, in the current
  process — the bit-identical baseline.
* ``jobs=N`` runs specs on ``N`` persistent worker processes started
  with the ``spawn`` context (clean interpreters, no inherited state —
  and the only start method that is fork-safety-proof across platforms).
  Workers receive picklable :class:`~repro.engine.jobs.JobSpec`s over a
  pipe, rebuild the simulation from the seed, and send back a serialized
  result dict.

Fault isolation: a job that raises fails alone (its exception text comes
back over the pipe); a worker that dies mid-job (segfault, OOM kill)
takes down only its current job, which is retried a bounded number of
times on a fresh worker before being recorded as crashed; a job that
exceeds its timeout has its worker killed and is recorded as timed out.
Sibling jobs and the cache are never poisoned — only successful results
are stored.

Determinism: results are returned in submission order regardless of
completion order, and each job rebuilds its whole world from its seed,
so ``jobs=1`` and ``jobs=N`` produce identical simulated metrics.  (The
measured ``scheduler_seconds`` timings are wall durations and therefore
vary run to run — they are measurements, not simulation outputs; cached
replays return even those bit-for-bit.)
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.cloudsim.simulation import SimulationResult
from repro.engine import events as ev
from repro.engine.cache import ResultCache
from repro.engine.events import EventJournal
from repro.engine.jobs import JobSpec, content_hash
from repro.engine.registry import (
    BuilderSpec,
    SchedulerSpec,
    execute_spec,
    job_spec,
)
from repro.engine.serialize import result_from_dict, result_to_dict
from repro.errors import ConfigurationError, EngineError

#: Job terminal states.
STATUS_OK = "ok"
STATUS_FAILED = "failed"  # the job itself raised (deterministic; no retry)
STATUS_TIMEOUT = "timeout"  # exceeded timeout_seconds; worker killed
STATUS_CRASHED = "crashed"  # worker died mid-job; retried up to `retries`

#: Supervisor poll interval while waiting on workers (seconds).
_POLL_SECONDS = 0.02


@dataclass
class JobResult:
    """Terminal record for one job: outcome, provenance, and cost."""

    spec: JobSpec
    key: str
    status: str
    result: Optional[SimulationResult] = None
    error: str = ""
    attempts: int = 1
    duration_seconds: float = 0.0
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


def _worker_main(conn) -> None:
    """Worker loop: receive specs, execute, reply — until EOF/None."""
    while True:
        try:
            spec = conn.recv()
        except (EOFError, OSError):
            break
        if spec is None:
            break
        try:
            payload: Tuple[str, Any] = (
                "ok",
                result_to_dict(execute_spec(spec)),
            )
        except Exception as exc:  # isolation boundary: report, don't die
            payload = (
                "error",
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            )
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            break  # supervisor went away; nothing left to report to
    conn.close()


@dataclass
class _Worker:
    """Supervisor-side handle for one worker process."""

    process: Any
    conn: Any
    job: Optional[Tuple[int, int]] = None  # (spec index, attempt)
    started: float = 0.0


class _Supervisor:
    """Drives persistent workers over a pending queue of specs."""

    def __init__(
        self,
        specs: Sequence[JobSpec],
        keys: Sequence[str],
        jobs: int,
        journal: EventJournal,
        cache: Optional[ResultCache],
        timeout_seconds: Optional[float],
        retries: int,
    ) -> None:
        self.specs = specs
        self.keys = keys
        self.jobs = jobs
        self.journal = journal
        self.cache = cache
        self.timeout_seconds = timeout_seconds
        self.retries = retries
        self.context = multiprocessing.get_context("spawn")
        self.workers: List[_Worker] = []
        self.results: Dict[int, JobResult] = {}
        self.pending: Deque[Tuple[int, int]] = deque()

    # -- worker lifecycle ----------------------------------------------
    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self.context.Pipe()
        process = self.context.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        worker = _Worker(process=process, conn=parent_conn)
        self.workers.append(worker)
        return worker

    def _discard_worker(self, worker: _Worker, kill: bool = False) -> None:
        self.workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass  # pipe already broken; the worker is being discarded
        if kill and worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=5.0)

    # -- job bookkeeping -----------------------------------------------
    def _record(self, index: int, job_result: JobResult) -> None:
        self.results[index] = job_result

    def _fail(
        self,
        index: int,
        attempt: int,
        status: str,
        error: str,
        duration: float,
    ) -> None:
        spec, key = self.specs[index], self.keys[index]
        kind = ev.TIMEOUT if status == STATUS_TIMEOUT else ev.FAILED
        self.journal.emit(
            kind,
            key,
            tag=spec.tag,
            attempt=attempt,
            duration_seconds=duration,
            detail=error.splitlines()[0] if error else "",
        )
        self._record(
            index,
            JobResult(
                spec=spec,
                key=key,
                status=status,
                error=error,
                attempts=attempt,
                duration_seconds=duration,
            ),
        )

    def _finish(
        self, index: int, attempt: int, result: SimulationResult, duration: float
    ) -> None:
        spec, key = self.specs[index], self.keys[index]
        self.journal.emit(
            ev.FINISHED,
            key,
            tag=spec.tag,
            attempt=attempt,
            duration_seconds=duration,
        )
        if self.cache is not None:
            self.cache.put(key, result)
        self._record(
            index,
            JobResult(
                spec=spec,
                key=key,
                status=STATUS_OK,
                result=result,
                attempts=attempt,
                duration_seconds=duration,
            ),
        )

    def _handle_crash(self, index: int, attempt: int, duration: float, reason: str) -> None:
        if attempt <= self.retries:
            self.journal.emit(
                ev.RETRIED,
                self.keys[index],
                tag=self.specs[index].tag,
                attempt=attempt,
                detail=reason,
            )
            self.pending.append((index, attempt + 1))
        else:
            self._fail(index, attempt, STATUS_CRASHED, reason, duration)

    # -- dispatch loop --------------------------------------------------
    def _assign(self, worker: _Worker) -> bool:
        """Hand the next pending job to ``worker``; False if send failed."""
        index, attempt = self.pending.popleft()
        spec = self.specs[index]
        try:
            worker.conn.send(spec)
        except (BrokenPipeError, OSError):
            # Worker died while idle; job is untouched — requeue at the
            # front and let the caller replace the worker.
            self.pending.appendleft((index, attempt))
            return False
        worker.job = (index, attempt)
        worker.started = time.perf_counter()
        self.journal.emit(
            ev.STARTED, self.keys[index], tag=spec.tag, attempt=attempt
        )
        return True

    def _receive(self, worker: _Worker) -> None:
        index, attempt = worker.job  # type: ignore[misc]
        duration = time.perf_counter() - worker.started
        worker.job = None
        try:
            payload = worker.conn.recv()
        except (EOFError, OSError):
            payload = None
        if payload is None:
            exit_code = worker.process.exitcode
            self._discard_worker(worker, kill=True)
            self._handle_crash(
                index,
                attempt,
                duration,
                f"worker died mid-job (exit code {exit_code})",
            )
        elif payload[0] == "ok":
            self._finish(index, attempt, result_from_dict(payload[1]), duration)
        else:
            self._fail(index, attempt, STATUS_FAILED, payload[1], duration)

    def _reap_timeouts(self) -> None:
        if self.timeout_seconds is None:
            return
        now = time.perf_counter()
        for worker in list(self.workers):
            if worker.job is None:
                continue
            duration = now - worker.started
            if duration <= self.timeout_seconds:
                continue
            index, attempt = worker.job
            worker.job = None
            self._discard_worker(worker, kill=True)
            self._fail(
                index,
                attempt,
                STATUS_TIMEOUT,
                f"exceeded timeout of {self.timeout_seconds:.1f}s",
                duration,
            )

    def run(self, pending: Deque[Tuple[int, int]]) -> None:
        """Run every pending job to a terminal state."""
        self.pending = pending
        try:
            while self.pending or any(w.job is not None for w in self.workers):
                busy = sum(1 for w in self.workers if w.job is not None)
                wanted = min(self.jobs, busy + len(self.pending))
                while len(self.workers) < wanted:
                    self._spawn_worker()
                for worker in list(self.workers):
                    if self.pending and worker.job is None:
                        if not self._assign(worker):
                            self._discard_worker(worker, kill=True)
                busy_conns = [w.conn for w in self.workers if w.job is not None]
                if not busy_conns:
                    continue
                ready = multiprocessing.connection.wait(
                    busy_conns, timeout=_POLL_SECONDS
                )
                for conn in ready:
                    worker = next(
                        (w for w in self.workers if w.conn is conn), None
                    )
                    if worker is not None and worker.job is not None:
                        self._receive(worker)
                self._reap_timeouts()
        finally:
            for worker in list(self.workers):
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass  # already dead; join/terminate below handles it
                self._discard_worker(worker, kill=True)


def run_jobs(
    specs: Sequence[JobSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    journal: Optional[EventJournal] = None,
    timeout_seconds: Optional[float] = None,
    retries: int = 1,
) -> List[JobResult]:
    """Execute ``specs`` and return one :class:`JobResult` per spec.

    Results are ordered by submission index, independent of completion
    order.  Cache lookups happen first (in order, in the parent), so a
    fully warm cache executes nothing.  ``timeout_seconds`` is enforced
    only when ``jobs >= 2`` (the serial path cannot preempt itself).
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    if retries < 0:
        raise ConfigurationError("retries must be >= 0")
    if timeout_seconds is not None and timeout_seconds <= 0:
        raise ConfigurationError("timeout must be > 0 (or None)")
    journal = journal if journal is not None else EventJournal()
    keys = [content_hash(spec) for spec in specs]
    results: Dict[int, JobResult] = {}
    pending: Deque[Tuple[int, int]] = deque()
    for index, (spec, key) in enumerate(zip(specs, keys)):
        journal.emit(ev.QUEUED, key, tag=spec.tag)
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            journal.emit(ev.CACHE_HIT, key, tag=spec.tag)
            results[index] = JobResult(
                spec=spec,
                key=key,
                status=STATUS_OK,
                result=cached,
                attempts=0,
                from_cache=True,
            )
        else:
            pending.append((index, 1))
    if jobs == 1:
        _run_serial(specs, keys, pending, journal, cache, results)
    else:
        supervisor = _Supervisor(
            specs, keys, jobs, journal, cache, timeout_seconds, retries
        )
        supervisor.run(pending)
        results.update(supervisor.results)
    return [results[index] for index in range(len(specs))]


def _run_serial(
    specs: Sequence[JobSpec],
    keys: Sequence[str],
    pending: Deque[Tuple[int, int]],
    journal: EventJournal,
    cache: Optional[ResultCache],
    results: Dict[int, JobResult],
) -> None:
    """Inline execution: submission order, same-process, faults isolated."""
    while pending:
        index, attempt = pending.popleft()
        spec, key = specs[index], keys[index]
        journal.emit(ev.STARTED, key, tag=spec.tag, attempt=attempt)
        started = time.perf_counter()
        try:
            result = execute_spec(spec)
        except Exception as exc:  # isolation boundary: record, continue
            duration = time.perf_counter() - started
            error = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            journal.emit(
                ev.FAILED,
                key,
                tag=spec.tag,
                attempt=attempt,
                duration_seconds=duration,
                detail=error.splitlines()[0],
            )
            results[index] = JobResult(
                spec=spec,
                key=key,
                status=STATUS_FAILED,
                error=error,
                attempts=attempt,
                duration_seconds=duration,
            )
            continue
        duration = time.perf_counter() - started
        journal.emit(
            ev.FINISHED,
            key,
            tag=spec.tag,
            attempt=attempt,
            duration_seconds=duration,
        )
        if cache is not None:
            cache.put(key, result)
        results[index] = JobResult(
            spec=spec,
            key=key,
            status=STATUS_OK,
            result=result,
            attempts=attempt,
            duration_seconds=duration,
        )


def require_ok(job_results: Sequence[JobResult]) -> List[SimulationResult]:
    """Unwrap results, raising :class:`EngineError` if any job failed."""
    failures = [jr for jr in job_results if not jr.ok]
    if failures:
        details = "; ".join(
            f"{jr.spec.tag} [{jr.status}] "
            f"{jr.error.splitlines()[0] if jr.error else ''}"
            for jr in failures[:5]
        )
        raise EngineError(
            f"{len(failures)} of {len(job_results)} jobs failed: {details}"
        )
    return [jr.result for jr in job_results]  # type: ignore[misc]


class ExecutionEngine:
    """Configured entry point: jobs, cache, journal, timeout, retries.

    One engine instance can serve many calls; the journal and cache
    counters accumulate across them, which is how a benchmark session or
    CLI invocation reports totals.

    Args:
        jobs: worker processes (1 = inline serial execution).
        cache_dir: directory for the content-addressed result cache
            (``None`` disables caching).
        journal_path: JSONL file mirroring the event journal.
        timeout_seconds: per-job wall limit, enforced when ``jobs >= 2``.
        retries: extra attempts for jobs whose *worker* crashed
            (exceptions raised by the job itself are never retried —
            they are deterministic).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Any]] = None,
        journal_path: Optional[Union[str, Any]] = None,
        timeout_seconds: Optional[float] = None,
        retries: int = 1,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        self.jobs = int(jobs)
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.journal = EventJournal(journal_path)
        self.timeout_seconds = timeout_seconds
        self.retries = retries

    # -- core ------------------------------------------------------------
    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        """Execute specs; one :class:`JobResult` per spec, input order."""
        return run_jobs(
            specs,
            jobs=self.jobs,
            cache=self.cache,
            journal=self.journal,
            timeout_seconds=self.timeout_seconds,
            retries=self.retries,
        )

    def run_strict(self, specs: Sequence[JobSpec]) -> List[SimulationResult]:
        """Execute specs; raise :class:`EngineError` unless all succeed."""
        return require_ok(self.run(specs))

    # -- harness-shaped entry points -------------------------------------
    def run_matrix(
        self,
        builder: Callable[[int], Any],
        factories: "Dict[str, Callable[[Any], Any]]",
        seeds: Sequence[int],
        num_steps: Optional[int] = None,
    ) -> List[Dict[str, SimulationResult]]:
        """Run every factory at every seed; one result dict per seed.

        ``builder``/``factories`` must be spec-carrying callables
        (:class:`BuilderSpec` / :class:`SchedulerSpec`) for parallel or
        cached execution; arbitrary callables are accepted only at
        ``jobs=1`` with no cache, where they run exactly like the legacy
        serial harness.
        """
        names = list(factories)
        if not _is_spec_pair(builder, factories):
            if self.jobs > 1 or self.cache is not None:
                raise ConfigurationError(
                    "parallel or cached execution needs registry-backed "
                    "specs (BuilderSpec/SchedulerSpec from "
                    "repro.engine.registry); plain callables cannot cross "
                    "process boundaries or derive stable cache keys"
                )
            return self._run_matrix_inline(builder, factories, seeds, num_steps)
        specs = [
            job_spec(
                builder,
                factories[name],
                seed,
                num_steps=num_steps,
                tag=f"{name}@seed{seed}",
            )
            for seed in seeds
            for name in names
        ]
        flat = self.run_strict(specs)
        grouped: List[Dict[str, SimulationResult]] = []
        for row, _seed in enumerate(seeds):
            offset = row * len(names)
            grouped.append(
                dict(zip(names, flat[offset:offset + len(names)]))
            )
        return grouped

    def _run_matrix_inline(
        self, builder, factories, seeds, num_steps
    ) -> List[Dict[str, SimulationResult]]:
        from repro.harness.runner import run_comparison

        grouped = []
        for seed in seeds:
            for name in factories:
                self.journal.emit(ev.QUEUED, "", tag=f"{name}@seed{seed}")
            simulation = builder(seed)
            results = {}
            for name, factory in factories.items():
                tag = f"{name}@seed{seed}"
                self.journal.emit(ev.STARTED, "", tag=tag)
                started = time.perf_counter()
                results[name] = run_comparison(
                    simulation, {name: factory}, num_steps=num_steps
                )[name]
                self.journal.emit(
                    ev.FINISHED,
                    "",
                    tag=tag,
                    duration_seconds=time.perf_counter() - started,
                )
            grouped.append(results)
        return grouped

    def run_comparison(
        self,
        builder: Callable[[int], Any],
        factories: "Dict[str, Callable[[Any], Any]]",
        seed: int = 0,
        num_steps: Optional[int] = None,
    ) -> Dict[str, SimulationResult]:
        """Single-seed comparison (engine-side ``run_comparison``)."""
        return self.run_matrix(builder, factories, [seed], num_steps)[0]

    def run_sweep(
        self,
        builder: BuilderSpec,
        configs: Sequence[Any],
        seeds: Sequence[int],
    ) -> List[List[SimulationResult]]:
        """Run a Megh config grid: one result list (per seed) per config."""
        import dataclasses

        specs = []
        for cell, config in enumerate(configs):
            params = (
                dataclasses.asdict(config)
                if dataclasses.is_dataclass(config)
                else dict(config)
            )
            for seed in seeds:
                specs.append(
                    job_spec(
                        builder,
                        SchedulerSpec.create(
                            "megh", seed=seed, config=params
                        ),
                        seed,
                        tag=f"megh[cell{cell}]@seed{seed}",
                    )
                )
        flat = self.run_strict(specs)
        per_cell: List[List[SimulationResult]] = []
        for cell in range(len(configs)):
            offset = cell * len(seeds)
            per_cell.append(flat[offset:offset + len(seeds)])
        return per_cell

    # -- reporting --------------------------------------------------------
    def summary(self) -> str:
        """One-line account of what this engine did so far."""
        counts = self.journal.counts()
        parts = [
            f"jobs={self.jobs}",
            f"executed={counts[ev.FINISHED]}",
            f"cache_hits={counts[ev.CACHE_HIT]}",
            f"failed={counts[ev.FAILED] + counts[ev.TIMEOUT]}",
            f"retried={counts[ev.RETRIED]}",
        ]
        if self.cache is not None:
            parts.append(str(self.cache.stats()))
        return " ".join(parts)

    def close(self) -> None:
        """Flush and close the journal file (counters stay queryable)."""
        self.journal.close()


def _is_spec_pair(builder, factories) -> bool:
    return isinstance(builder, BuilderSpec) and all(
        isinstance(factory, SchedulerSpec) for factory in factories.values()
    )
