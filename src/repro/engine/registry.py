"""Builder/scheduler registries and picklable spec-carrying callables.

Workers rebuild every simulation from names, never from shipped
callables.  Two registries map names to constructors:

* **builders** — ``fn(seed=..., **params) -> Simulation``;
* **schedulers** — ``fn(simulation, **params) -> Scheduler``.

Names containing a colon are resolved as ``module:attribute`` dotted
paths instead, so tests and downstream code can reference their own
constructors without registering them first.

:class:`BuilderSpec` and :class:`SchedulerSpec` wrap registry entries in
frozen, picklable callables with the harness's native signatures
(``builder(seed) -> Simulation`` and ``factory(simulation) ->
Scheduler``), so the same objects drive the legacy serial paths *and*
carry enough structure for the engine to derive :class:`JobSpec`s.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.jobs import JobSpec, freeze_params, thaw_params
from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.cloudsim.simulation import Simulation

BUILDER_REGISTRY: Dict[str, Callable[..., Any]] = {}
SCHEDULER_REGISTRY: Dict[str, Callable[..., Any]] = {}


def register_builder(name: str, fn: Callable[..., Any]) -> Callable[..., Any]:
    """Register ``fn`` as a simulation builder under ``name``."""
    if name in BUILDER_REGISTRY:
        raise ConfigurationError(f"builder {name!r} already registered")
    BUILDER_REGISTRY[name] = fn
    return fn


def register_scheduler(name: str, fn: Callable[..., Any]) -> Callable[..., Any]:
    """Register ``fn`` as a scheduler constructor under ``name``."""
    if name in SCHEDULER_REGISTRY:
        raise ConfigurationError(f"scheduler {name!r} already registered")
    SCHEDULER_REGISTRY[name] = fn
    return fn


def _resolve_dotted(name: str) -> Callable[..., Any]:
    module_name, _, attribute = name.partition(":")
    try:
        module = import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(
            f"cannot import module {module_name!r} for {name!r}: {exc}"
        ) from exc
    try:
        return getattr(module, attribute)
    except AttributeError as exc:
        raise ConfigurationError(
            f"module {module_name!r} has no attribute {attribute!r}"
        ) from exc


def resolve_builder(name: str) -> Callable[..., Any]:
    """Look up a builder by registry name or ``module:attr`` path."""
    if ":" in name:
        return _resolve_dotted(name)
    try:
        return BUILDER_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown builder {name!r}; registered: "
            f"{sorted(BUILDER_REGISTRY)} (or use a 'module:attr' path)"
        ) from None


def resolve_scheduler(name: str) -> Callable[..., Any]:
    """Look up a scheduler constructor by registry name or dotted path."""
    if ":" in name:
        return _resolve_dotted(name)
    try:
        return SCHEDULER_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; registered: "
            f"{sorted(SCHEDULER_REGISTRY)} (or use a 'module:attr' path)"
        ) from None


@dataclass(frozen=True)
class BuilderSpec:
    """Picklable ``builder(seed) -> Simulation`` backed by the registry."""

    name: str
    params: Tuple = ()

    @classmethod
    def create(cls, name: str, **params: Any) -> "BuilderSpec":
        """Build a spec callable with canonicalized parameters."""
        return cls(name=name, params=freeze_params(params))

    def __call__(self, seed: int):
        """Build a fresh simulation for ``seed``."""
        return resolve_builder(self.name)(
            seed=seed, **thaw_params(self.params)
        )


@dataclass(frozen=True)
class SchedulerSpec:
    """Picklable ``factory(simulation) -> Scheduler`` backed by the registry."""

    name: str
    params: Tuple = ()

    @classmethod
    def create(cls, name: str, **params: Any) -> "SchedulerSpec":
        """Build a spec callable with canonicalized parameters."""
        return cls(name=name, params=freeze_params(params))

    def __call__(self, simulation):
        """Construct a fresh scheduler for ``simulation``."""
        return resolve_scheduler(self.name)(
            simulation, **thaw_params(self.params)
        )


def job_spec(
    builder: BuilderSpec,
    scheduler: SchedulerSpec,
    seed: int,
    num_steps: Optional[int] = None,
    tag: str = "",
) -> JobSpec:
    """Derive the declarative :class:`JobSpec` for a (builder, factory) pair."""
    return JobSpec(
        builder=builder.name,
        scheduler=scheduler.name,
        seed=int(seed),
        num_steps=None if num_steps is None else int(num_steps),
        builder_params=builder.params,
        scheduler_params=scheduler.params,
        tag=tag or f"{scheduler.name}@seed{seed}",
    )


def execute_spec(spec: JobSpec):
    """Run one job in the current process and return its result.

    Mirrors :func:`repro.harness.runner.run_scheduler`: the simulation is
    rebuilt from the seed, reset, and run for the spec's horizon.  This
    is the single execution path shared by serial runs and workers — the
    engine's ``jobs=1`` / ``jobs=N`` equivalence rests on it.
    """
    builder = resolve_builder(spec.builder)
    # The annotation is load-bearing beyond type checking: registry
    # dispatch is dynamic, so it is what lets meghpar's call graph
    # follow execute_spec into Simulation.run and certify the whole
    # worker-executed step pipeline (MEGH014–018).
    simulation: Simulation = builder(seed=spec.seed, **spec.builder_kwargs())
    constructor = resolve_scheduler(spec.scheduler)
    scheduler = constructor(simulation, **spec.scheduler_kwargs())
    simulation.reset()
    return simulation.run(scheduler, num_steps=spec.num_steps)


# ----------------------------------------------------------------------
# Default registrations: the builders and schedulers the harness,
# benchmarks, and CLI compose their experiments from.
# ----------------------------------------------------------------------


def _build_planetlab(seed: int = 0, **params: Any):
    """Registry wrapper for :func:`build_planetlab_simulation`."""
    from repro.harness.builders import build_planetlab_simulation

    return build_planetlab_simulation(seed=seed, **params)


def _build_google(seed: int = 0, **params: Any):
    """Registry wrapper for :func:`build_google_simulation`."""
    from repro.harness.builders import build_google_simulation

    return build_google_simulation(seed=seed, **params)


def _build_churn(seed: int = 0, **params: Any):
    """Registry wrapper for :func:`build_churn_service` (service mode).

    The returned :class:`~repro.service.loop.ServiceSimulation` follows
    the builder protocol (``reset()`` / ``run(scheduler, num_steps)``),
    so specs and checkpoints can reference it by name.
    """
    from repro.service.builders import build_churn_service

    return build_churn_service(seed=seed, **params)


def _make_megh(simulation, seed: int = 0, config: Optional[Mapping[str, Any]] = None):
    """Megh agent sized to the simulation; ``config`` maps MeghConfig fields."""
    from repro.config import MeghConfig
    from repro.core.agent import MeghScheduler

    megh_config = MeghConfig(**dict(config)) if config else None
    return MeghScheduler.from_simulation(
        simulation, config=megh_config, seed=seed
    )


def _make_madvm(simulation, seed: int = 0, **kwargs: Any):
    """MadVM agent sized to the simulation."""
    from repro.baselines.madvm import MadVMScheduler

    return MadVMScheduler.from_simulation(simulation, seed=seed, **kwargs)


def _make_mmt(simulation, detector: str = "THR", **kwargs: Any):
    """MMT scheduler with the named overload detector."""
    del simulation  # MMT sizes itself from the observation, not the fleet
    from repro.baselines.mmt.scheduler import MMTScheduler

    return MMTScheduler(detector, **kwargs)


def _make_noop(simulation):
    """Never-migrate baseline."""
    del simulation
    from repro.baselines.noop import NoMigrationScheduler

    return NoMigrationScheduler()


def _make_random(simulation, seed: int = 0, migrations_per_step: int = 1):
    """Random-migration baseline."""
    del simulation
    from repro.baselines.random_policy import RandomScheduler

    return RandomScheduler(
        migrations_per_step=migrations_per_step, seed=seed
    )


register_builder("planetlab", _build_planetlab)
register_builder("google", _build_google)
register_builder("churn", _build_churn)
register_scheduler("megh", _make_megh)
register_scheduler("madvm", _make_madvm)
register_scheduler("mmt", _make_mmt)
register_scheduler("noop", _make_noop)
register_scheduler("random", _make_random)


def spec_mmt_factories(
    detectors: Sequence[str] = ("THR", "IQR", "MAD", "LR", "LRR"),
    thr_threshold: float = 0.7,
) -> Dict[str, SchedulerSpec]:
    """Spec-carrying equivalent of :func:`repro.harness.runner.mmt_factories`."""
    factories: Dict[str, SchedulerSpec] = {}
    for detector in detectors:
        if detector == "THR":
            factories["THR-MMT"] = SchedulerSpec.create(
                "mmt", detector="THR", utilization_threshold=thr_threshold
            )
        else:
            factories[f"{detector}-MMT"] = SchedulerSpec.create(
                "mmt", detector=detector
            )
    return factories


def spec_paper_factories(
    megh_config=None,
    include_madvm: bool = False,
    seed: int = 0,
) -> Dict[str, SchedulerSpec]:
    """Spec-carrying Table-2/3 line-up (five MMT variants, Megh, MadVM).

    ``megh_config`` is a :class:`repro.config.MeghConfig` (or field
    mapping); it is flattened into the Megh job's parameters so it also
    contributes to the cache key.
    """
    import dataclasses

    factories = spec_mmt_factories()
    megh_params: Dict[str, Any] = {"seed": seed}
    if megh_config is not None:
        if dataclasses.is_dataclass(megh_config):
            megh_params["config"] = dataclasses.asdict(megh_config)
        else:
            megh_params["config"] = dict(megh_config)
    factories["Megh"] = SchedulerSpec.create("megh", **megh_params)
    if include_madvm:
        factories["MadVM"] = SchedulerSpec.create("madvm", seed=seed)
    return factories
