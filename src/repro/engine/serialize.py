"""``SimulationResult`` ↔ dict/JSON round-trip.

The engine's cache and worker pipes move results as plain dicts, so the
conversion must be *exact*: every stored float survives bit-for-bit
(JSON's shortest-round-trip float repr guarantees this), every SLA
window entry is preserved, and the nested configuration dataclasses are
rebuilt field by field.  Derived quantities (totals, means, windowed
fractions) are recomputed from the restored state, never stored — a
round-tripped result therefore answers every query identically to the
original.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.cloudsim.metrics import MetricsCollector, StepMetrics
from repro.cloudsim.simulation import SimulationResult
from repro.cloudsim.sla import SlaAccountant
from repro.config import CostConfig, DatacenterConfig, SimulationConfig
from repro.errors import SerializationError

#: Payload schema version; bump on layout changes so stale cache entries
#: are rejected instead of mis-parsed.
RESULT_SCHEMA_VERSION = 1

_STEP_FIELDS = (
    "step",
    "energy_cost_usd",
    "sla_cost_usd",
    "num_migrations_started",
    "num_migrations_rejected",
    "num_active_hosts",
    "scheduler_seconds",
    "mean_host_utilization",
    "num_overloaded_hosts",
)


def _plain(value: Any) -> Any:
    """Collapse numpy scalars to builtins (exactly) for JSON encoding."""
    item = getattr(value, "item", None)
    return item() if callable(item) else value


def _step_to_dict(step: StepMetrics) -> Dict[str, Any]:
    return {name: _plain(getattr(step, name)) for name in _STEP_FIELDS}


def _step_from_dict(data: Dict[str, Any]) -> StepMetrics:
    return StepMetrics(**{name: data[name] for name in _STEP_FIELDS})


def _sla_to_dict(sla: SlaAccountant) -> Dict[str, Any]:
    return {
        "beta": sla.beta,
        "window_seconds": sla.window_seconds,
        "interval_seconds": sla.interval_seconds,
        "bandwidth_threshold": sla.bandwidth_threshold,
        "hosts": {
            str(pm_id): {
                "active_seconds": record.active_seconds,
                "overload_seconds": record.overload_seconds,
            }
            for pm_id, record in sla.hosts.items()
        },
        "vms": {
            str(vm_id): {
                "window_steps": record.window_steps,
                "requested_seconds": record.requested_seconds,
                "migration_downtime_seconds": record.migration_downtime_seconds,
                "overload_downtime_seconds": record.overload_downtime_seconds,
                "window": [list(entry) for entry in record.window_entries()],
            }
            for vm_id, record in sla.vms.items()
        },
    }


def _sla_from_dict(data: Dict[str, Any]) -> SlaAccountant:
    accountant = SlaAccountant(
        beta=data["beta"],
        window_seconds=data["window_seconds"],
        interval_seconds=data["interval_seconds"],
        bandwidth_threshold=data["bandwidth_threshold"],
    )
    for pm_id, host in data["hosts"].items():
        accountant.restore_host_record(
            int(pm_id),
            active_seconds=host["active_seconds"],
            overload_seconds=host["overload_seconds"],
        )
    for vm_id, vm in data["vms"].items():
        accountant.restore_vm_record(
            int(vm_id),
            requested_seconds=vm["requested_seconds"],
            migration_downtime_seconds=vm["migration_downtime_seconds"],
            overload_downtime_seconds=vm["overload_downtime_seconds"],
            window=[(entry[0], entry[1]) for entry in vm["window"]],
        )
    return accountant


def _config_to_dict(config: SimulationConfig) -> Dict[str, Any]:
    return {
        "interval_seconds": config.interval_seconds,
        "num_steps": config.num_steps,
        "seed": config.seed,
        "costs": vars(config.costs).copy(),
        "datacenter": vars(config.datacenter).copy(),
    }


def _config_from_dict(data: Dict[str, Any]) -> SimulationConfig:
    return SimulationConfig(
        interval_seconds=data["interval_seconds"],
        num_steps=data["num_steps"],
        seed=data["seed"],
        costs=CostConfig(**data["costs"]),
        datacenter=DatacenterConfig(**data["datacenter"]),
    )


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Flatten a :class:`SimulationResult` into a JSON-compatible dict."""
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "scheduler_name": result.scheduler_name,
        "num_pms": result.num_pms,
        "num_vms": result.num_vms,
        "steps": [_step_to_dict(step) for step in result.metrics.steps],
        "sla": _sla_to_dict(result.sla),
        "config": _config_to_dict(result.config),
    }


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_dict` output."""
    try:
        schema = data["schema"]
        if schema != RESULT_SCHEMA_VERSION:
            raise SerializationError(
                f"unsupported result schema {schema!r} "
                f"(expected {RESULT_SCHEMA_VERSION})"
            )
        metrics = MetricsCollector(
            steps=[_step_from_dict(step) for step in data["steps"]]
        )
        return SimulationResult(
            scheduler_name=data["scheduler_name"],
            metrics=metrics,
            sla=_sla_from_dict(data["sla"]),
            config=_config_from_dict(data["config"]),
            num_pms=data["num_pms"],
            num_vms=data["num_vms"],
        )
    except (KeyError, TypeError, IndexError) as exc:
        raise SerializationError(
            f"malformed result payload: {exc!r}"
        ) from exc


def result_to_json(result: SimulationResult) -> str:
    """Serialize a result to a JSON string (floats round-trip exactly)."""
    try:
        return json.dumps(result_to_dict(result), separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            f"result is not JSON-serializable: {exc}"
        ) from exc


def result_from_json(text: str) -> SimulationResult:
    """Deserialize a result from :func:`result_to_json` output."""
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise SerializationError(f"invalid result JSON: {exc}") from exc
    return result_from_dict(data)
