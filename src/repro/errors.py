"""Exception hierarchy for the Megh reproduction library.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid parameters."""


class CapacityError(ReproError):
    """A placement or migration would exceed a physical machine's capacity."""


class PlacementError(ReproError):
    """A virtual machine could not be placed on any physical machine."""


class UnknownEntityError(ReproError):
    """A VM or PM identifier does not exist in the data center."""


class MigrationError(ReproError):
    """A live migration request was invalid (e.g. VM already migrating)."""


class TraceError(ReproError):
    """A workload trace is malformed, empty, or exhausted."""


class SchedulerError(ReproError):
    """A scheduler produced an invalid decision."""


class EngineError(ReproError):
    """The execution engine could not complete one or more jobs."""


class SerializationError(ReproError):
    """A result payload could not be serialized or deserialized."""
