"""Experiment harness: fleet builders, runners, and table/figure reproduction."""

from repro.harness.builders import (
    build_google_simulation,
    build_planetlab_simulation,
    build_simulation,
    make_planetlab_fleet,
    make_uniform_fleet,
)
from repro.harness.runner import run_comparison, run_scheduler
from repro.harness.tables import comparison_table, format_table
from repro.harness.figures import FigureSeries, figure_series
from repro.harness.multiseed import (
    MetricSummary,
    SeedAggregate,
    aggregate_seed_results,
    cheapest_algorithm,
    render_aggregates,
    run_multi_seed,
)
from repro.harness.report import comparison_report, save_report
from repro.harness.regret import regret_curve, regret_is_sublinear, total_regret
from repro.harness.analysis import ComparativeClaims, claims_report, compare
from repro.harness.sweeps import SweepCell, best_cell, render_sweep, sweep_megh

__all__ = [
    "build_simulation",
    "build_planetlab_simulation",
    "build_google_simulation",
    "make_planetlab_fleet",
    "make_uniform_fleet",
    "run_scheduler",
    "run_comparison",
    "comparison_table",
    "format_table",
    "FigureSeries",
    "figure_series",
    "MetricSummary",
    "SeedAggregate",
    "aggregate_seed_results",
    "cheapest_algorithm",
    "run_multi_seed",
    "render_aggregates",
    "comparison_report",
    "save_report",
    "regret_curve",
    "total_regret",
    "regret_is_sublinear",
    "ComparativeClaims",
    "compare",
    "claims_report",
    "SweepCell",
    "sweep_megh",
    "best_cell",
    "render_sweep",
]
