"""Paper-style claim extraction from comparison runs.

Section 6.3 states its findings as relative claims — "Megh reduces the
expenditure by 14.25 %", "the total number of VM migrations for THR-MMT
is almost 140 times more", "Megh speeds up the decision making by 1.41
times".  This module computes exactly those quantities from a
comparison's results, so a reproduction (or a new experiment) can state
its findings in the paper's own vocabulary — with the numbers coming
from data, not prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cloudsim.simulation import SimulationResult
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ComparativeClaims:
    """The paper's §6.3 quantities for one (subject, reference) pair."""

    subject: str
    reference: str
    cost_reduction_percent: float
    migration_ratio: float
    speedup: float
    active_host_ratio: float
    subject_convergence_step: int
    reference_convergence_step: int

    def sentences(self) -> List[str]:
        """The claims phrased the way the paper phrases them."""
        lines = []
        if self.cost_reduction_percent >= 0:
            lines.append(
                f"{self.subject} reduces the expenditure by "
                f"{self.cost_reduction_percent:.2f}% with respect to "
                f"{self.reference}."
            )
        else:
            lines.append(
                f"{self.subject} increases the expenditure by "
                f"{-self.cost_reduction_percent:.2f}% with respect to "
                f"{self.reference}."
            )
        lines.append(
            f"The total number of VM migrations for {self.reference} is "
            f"{self.migration_ratio:.1f} times that of {self.subject}."
        )
        if self.speedup >= 1.0:
            lines.append(
                f"{self.subject} speeds up the decision making by "
                f"{self.speedup:.2f} times with respect to "
                f"{self.reference}."
            )
        else:
            lines.append(
                f"{self.subject}'s decision making is "
                f"{1.0 / self.speedup:.2f} times slower than "
                f"{self.reference}'s."
            )
        lines.append(
            f"{self.subject} keeps {self.active_host_ratio:.2f}x the "
            f"active hosts of {self.reference}."
        )
        lines.append(
            f"{self.subject} converges in ~{self.subject_convergence_step} "
            f"steps; {self.reference} in "
            f"~{self.reference_convergence_step}."
        )
        return lines


def compare(
    results: Dict[str, SimulationResult],
    subject: str = "Megh",
    reference: str = "THR-MMT",
) -> ComparativeClaims:
    """Compute the §6.3 claims for ``subject`` vs ``reference``."""
    if subject not in results or reference not in results:
        raise ConfigurationError(
            f"need results for both {subject!r} and {reference!r}"
        )
    subject_result = results[subject]
    reference_result = results[reference]
    ref_cost = reference_result.total_cost_usd
    cost_reduction = (
        100.0 * (ref_cost - subject_result.total_cost_usd) / ref_cost
        if ref_cost > 0
        else 0.0
    )
    migration_ratio = reference_result.total_migrations / max(
        subject_result.total_migrations, 1
    )
    speedup = reference_result.mean_scheduler_ms / max(
        subject_result.mean_scheduler_ms, 1e-9
    )
    host_ratio = subject_result.mean_active_hosts / max(
        reference_result.mean_active_hosts, 1e-9
    )
    return ComparativeClaims(
        subject=subject,
        reference=reference,
        cost_reduction_percent=cost_reduction,
        migration_ratio=migration_ratio,
        speedup=speedup,
        active_host_ratio=host_ratio,
        subject_convergence_step=subject_result.metrics.convergence_step(),
        reference_convergence_step=(
            reference_result.metrics.convergence_step()
        ),
    )


def claims_report(
    results: Dict[str, SimulationResult], subject: str = "Megh"
) -> str:
    """§6.3-style prose for ``subject`` against every other algorithm."""
    if subject not in results:
        raise ConfigurationError(f"no results for {subject!r}")
    blocks: List[str] = []
    for reference in results:
        if reference == subject:
            continue
        claims = compare(results, subject=subject, reference=reference)
        blocks.append("\n".join(claims.sentences()))
    return "\n\n".join(blocks)
