"""Terminal plotting: sparklines and multi-series line charts.

The benches and CLI print figure *series*; these helpers make them
readable at a glance without any plotting dependency — Unicode
sparklines for one-liners, a character-grid line chart for the
figure panels.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigurationError

#: Eight-level block characters, lowest to highest.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 0) -> str:
    """Render a series as a Unicode sparkline.

    ``width`` > 0 downsamples to that many characters; 0 keeps every
    point.  A constant series renders at the lowest level.
    """
    data = [float(v) for v in values]
    if not data:
        return ""
    if width and len(data) > width:
        step = (len(data) - 1) / (width - 1) if width > 1 else 0
        data = [data[round(i * step)] for i in range(width)]
    low, high = min(data), max(data)
    span = high - low
    if span <= 0.0:
        return SPARK_LEVELS[0] * len(data)
    chars = []
    for value in data:
        index = int((value - low) / span * (len(SPARK_LEVELS) - 1))
        chars.append(SPARK_LEVELS[index])
    return "".join(chars)


def line_chart(
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 10,
    title: str = "",
) -> str:
    """Render one or more series as a character-grid line chart.

    Each series gets a marker (``*``, ``+``, ``o``, ...); axes carry the
    min/max labels.  All series share the y-scale.
    """
    if width < 10 or height < 3:
        raise ConfigurationError("chart needs width >= 10 and height >= 3")
    if not series or all(len(v) == 0 for v in series.values()):
        return title or "(no data)"
    markers = "*+ox#@%&"
    all_values = [
        float(v) for values in series.values() for v in values
    ]
    low, high = min(all_values), max(all_values)
    span = high - low or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        data = [float(v) for v in values]
        if not data:
            continue
        if len(data) > width:
            step = (len(data) - 1) / (width - 1)
            data = [data[round(i * step)] for i in range(width)]
        for x, value in enumerate(data):
            y = int((value - low) / span * (height - 1))
            row = height - 1 - y
            grid[row][x] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{high:10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{low:10.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def labelled_sparklines(
    series: Dict[str, Sequence[float]], width: int = 40
) -> str:
    """One sparkline row per series, labels aligned."""
    if not series:
        return ""
    label_width = max(len(name) for name in series)
    lines = []
    for name, values in series.items():
        data = [float(v) for v in values]
        suffix = ""
        if data:
            suffix = f"  [{min(data):.3g}, {max(data):.3g}]"
        lines.append(
            f"{name.ljust(label_width)} {sparkline(data, width)}{suffix}"
        )
    return "\n".join(lines)
