"""``repro bench --check`` — perf-regression smoke gate.

Compares fresh ``--fast`` numbers from ``benchmarks/bench_core_lstd.py``,
``benchmarks/bench_core_decide.py``, ``benchmarks/bench_sim_step.py``
and ``benchmarks/bench_service_churn.py`` against the committed records
(``BENCH_core.json`` / ``BENCH_sim.json`` / ``BENCH_service.json``) and
fails when a throughput metric falls below its noise floor.  The two
core scripts merge into the same fresh document (``lstd`` and
``decide`` sections of the core record).

Fast mode runs a much smaller problem than the committed records, so
the two are *not* directly comparable — batched kernels lose their
amortization at tiny scale (the batched Q-evaluation legitimately runs
at ~5% of its paper-scale throughput) while the simulator step runs
~3.6× *faster* on the small fleet.  Each metric therefore carries its
own calibrated floor: the minimum acceptable ``fresh / committed``
ratio, set with ≳3× headroom below the ratio measured on the reference
container.  The gate catches collapses (an accidental O(n²) hot path,
a dropped cache), not percent-level jitter.  ``--band`` scales every
floor at once (e.g. ``--band 0.5`` halves them for noisy CI runners).

Two checks are exact rather than statistical: the fresh sim benchmark's
``identical_results_soa_vs_reference`` must be ``True``, and the fresh
decide benchmark (run with ``--check-oracle``) must report
``oracle_match`` ``True`` — a perf gate that tolerates a bit-identity
break would be certifying the wrong thing.

Exit codes mirror ``repro lint``: 0 ok, 1 regression, 2 on crashes and
usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["METRIC_FLOORS", "check_benchmarks", "run"]

#: (committed file key, dotted metric path, minimum fresh/committed
#: ratio).  Floors are calibrated against fast-mode runs on the
#: reference container; see the module docstring.  The committed
#: ``rank_one_update_ops_per_s`` is a compiled-kernel number
#: (fast-mode fresh/committed ratio ~1.05 with the C backend); on a
#: machine with no C compiler the NumPy backend runs fast mode at a
#: ratio of ~0.08 — use ``--band`` there rather than loosening the
#: floor for everyone.
METRIC_FLOORS: Tuple[Tuple[str, str, float], ...] = (
    ("core", "lstd.rank_one_update_ops_per_s", 0.25),
    ("core", "lstd.q_value_cold_ops_per_s", 0.15),
    ("core", "lstd.q_value_warm_ops_per_s", 0.15),
    ("core", "lstd.q_values_batched_ops_per_s", 0.01),
    ("core", "lstd.warm_over_cold_speedup", 0.20),
    ("core", "decide.decide_ops_per_s", 0.75),
    ("sim", "sim_step.after.steps_per_s_non_scheduler", 1.00),
    ("sim", "sim_step.speedup_non_scheduler", 0.08),
    ("service", "service_churn.steps_per_s", 0.50),
    ("service", "service_churn.events_per_s", 0.30),
    ("service", "service_churn.retirements_per_s", 0.25),
)


@dataclass(frozen=True)
class GateFinding:
    """One metric's verdict."""

    metric: str
    fresh: float
    committed: float
    floor: float
    ok: bool

    def format(self) -> str:
        status = "ok" if self.ok else "REGRESSION"
        ratio = (
            self.fresh / self.committed if self.committed else float("inf")
        )
        return (
            f"bench-gate: {status} {self.metric} "
            f"fresh={self.fresh:.6g} committed={self.committed:.6g} "
            f"ratio={ratio:.3f} floor={self.floor:.3f}"
        )


def _dig(document: Dict[str, Any], dotted: str) -> Any:
    value: Any = document
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            raise KeyError(
                f"metric {dotted!r} missing at {part!r} "
                "(benchmark schema drift?)"
            )
        value = value[part]
    return value


def check_benchmarks(
    fresh: Dict[str, Dict[str, Any]],
    committed: Dict[str, Dict[str, Any]],
    band: float = 1.0,
) -> Tuple[List[GateFinding], List[str]]:
    """Compare fresh fast-mode documents against committed records.

    ``fresh``/``committed`` map the file key (``core``/``sim``) to its
    parsed JSON document.  Returns per-metric findings plus hard-check
    failure messages (schema drift, bit-identity break).
    """
    findings: List[GateFinding] = []
    hard_failures: List[str] = []
    for key, dotted, base_floor in METRIC_FLOORS:
        try:
            fresh_value = float(_dig(fresh[key], dotted))
            committed_value = float(_dig(committed[key], dotted))
        except KeyError as error:
            hard_failures.append(f"bench-gate: {key}: {error.args[0]}")
            continue
        floor = base_floor * band
        ok = fresh_value >= committed_value * floor
        findings.append(
            GateFinding(
                metric=f"{key}:{dotted}",
                fresh=fresh_value,
                committed=committed_value,
                floor=floor,
                ok=ok,
            )
        )
    try:
        identical = _dig(
            fresh["sim"], "sim_step.identical_results_soa_vs_reference"
        )
        if identical is not True:
            hard_failures.append(
                "bench-gate: fresh sim run reports "
                "identical_results_soa_vs_reference="
                f"{identical!r} — the SoA backend diverged from the "
                "scalar reference; fix bit-identity before perf"
            )
    except KeyError as error:
        hard_failures.append(f"bench-gate: sim: {error.args[0]}")
    try:
        oracle = _dig(fresh["core"], "decide.oracle_match")
        if oracle is not True:
            hard_failures.append(
                "bench-gate: fresh decide run reports "
                f"oracle_match={oracle!r} — the vectorized candidate "
                "pipeline diverged from the scalar generator; fix "
                "bit-identity before perf"
            )
    except KeyError as error:
        hard_failures.append(f"bench-gate: core: {error.args[0]}")
    return findings, hard_failures


def _run_fast_benchmark(
    script: Path,
    out: Path,
    seed: int,
    extra: Sequence[str] = (),
) -> None:
    """Run one benchmark script in fast mode writing JSON to ``out``."""
    environment = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (
        src_root if not existing else f"{src_root}{os.pathsep}{existing}"
    )
    subprocess.run(
        [
            sys.executable,
            str(script),
            "--fast",
            "--seed",
            str(seed),
            "--out",
            str(out),
            *extra,
        ],
        check=True,
        env=environment,
    )


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro bench``."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "perf-regression smoke gate: fresh --fast benchmark runs "
            "vs the committed BENCH_core.json / BENCH_sim.json"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the gate (required; reserved for future subcommands)",
    )
    parser.add_argument(
        "--band",
        type=float,
        default=1.0,
        help=(
            "scale every noise floor by this factor "
            "(default 1.0; lower tolerates more regression)"
        ),
    )
    parser.add_argument(
        "--bench-dir",
        default="benchmarks",
        metavar="DIR",
        help="directory holding the benchmark scripts",
    )
    parser.add_argument(
        "--committed-core",
        default="BENCH_core.json",
        metavar="FILE",
        help="committed core-benchmark record",
    )
    parser.add_argument(
        "--committed-sim",
        default="BENCH_sim.json",
        metavar="FILE",
        help="committed simulator-benchmark record",
    )
    parser.add_argument(
        "--committed-service",
        default="BENCH_service.json",
        metavar="FILE",
        help="committed service-benchmark record",
    )
    parser.add_argument(
        "--fresh-core",
        default=None,
        metavar="FILE",
        help=(
            "use this JSON instead of running bench_core_lstd.py and "
            "bench_core_decide.py (must hold both sections)"
        ),
    )
    parser.add_argument(
        "--fresh-sim",
        default=None,
        metavar="FILE",
        help="use this JSON instead of running bench_sim_step.py",
    )
    parser.add_argument(
        "--fresh-service",
        default=None,
        metavar="FILE",
        help="use this JSON instead of running bench_service_churn.py",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed forwarded to the benchmark scripts (default 0)",
    )
    return parser


def _load_json(path: Path) -> Dict[str, Any]:
    document = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(document, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return document


def run(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro bench``; returns a process exit code."""
    args = build_parser().parse_args(list(argv) if argv is not None else [])
    if not args.check:
        print("repro bench: error: nothing to do (did you mean --check?)")
        return 2
    try:
        committed = {
            "core": _load_json(Path(args.committed_core)),
            "sim": _load_json(Path(args.committed_sim)),
            "service": _load_json(Path(args.committed_service)),
        }
        with tempfile.TemporaryDirectory(prefix="benchgate-") as scratch:
            scratch_dir = Path(scratch)
            if args.fresh_core is not None:
                fresh_core = Path(args.fresh_core)
            else:
                fresh_core = scratch_dir / "fresh_core.json"
                _run_fast_benchmark(
                    Path(args.bench_dir) / "bench_core_lstd.py",
                    fresh_core,
                    args.seed,
                )
                # Merges into the same core document ("decide" section);
                # --check-oracle makes a candidate-pipeline divergence a
                # non-zero exit here, before the floors are even read.
                _run_fast_benchmark(
                    Path(args.bench_dir) / "bench_core_decide.py",
                    fresh_core,
                    args.seed,
                    extra=("--check-oracle",),
                )
            if args.fresh_sim is not None:
                fresh_sim = Path(args.fresh_sim)
            else:
                fresh_sim = scratch_dir / "fresh_sim.json"
                _run_fast_benchmark(
                    Path(args.bench_dir) / "bench_sim_step.py",
                    fresh_sim,
                    args.seed,
                )
            if args.fresh_service is not None:
                fresh_service = Path(args.fresh_service)
            else:
                fresh_service = scratch_dir / "fresh_service.json"
                _run_fast_benchmark(
                    Path(args.bench_dir) / "bench_service_churn.py",
                    fresh_service,
                    args.seed,
                )
            fresh = {
                "core": _load_json(fresh_core),
                "sim": _load_json(fresh_sim),
                "service": _load_json(fresh_service),
            }
    except (OSError, ValueError, subprocess.CalledProcessError) as error:
        print(f"repro bench: error: {error}")
        return 2
    findings, hard_failures = check_benchmarks(
        fresh, committed, band=args.band
    )
    for finding in findings:
        print(finding.format())
    for failure in hard_failures:
        print(failure)
    regressions = [finding for finding in findings if not finding.ok]
    if regressions or hard_failures:
        print(
            f"bench-gate: FAIL — {len(regressions)} metric(s) below the "
            f"noise floor, {len(hard_failures)} hard failure(s)"
        )
        return 1
    print(f"bench-gate: ok — {len(findings)} metric(s) within band")
    return 0


if __name__ == "__main__":
    raise SystemExit(run(sys.argv[1:]))
