"""Fleet and simulation builders matching the paper's experimental setup.

The PlanetLab fleet (Section 6.2): half HP ProLiant ML110 G4 hosts
(2 x 1860 MIPS, the CloudSim convention) and half G5 (2 x 2660 MIPS), each
with 4 GB RAM and 1 Gbps network.  VMs get a single vCPU of 500–2500 MIPS,
0.5–2.5 GB RAM and 100 Mbps, drawn uniformly per VM from a seeded RNG.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cloudsim.allocation import PLACEMENT_POLICIES
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.pm import PhysicalMachine
from repro.cloudsim.power import HP_PROLIANT_G4, HP_PROLIANT_G5, PowerModel
from repro.cloudsim.simulation import Simulation
from repro.cloudsim.vm import VirtualMachine
from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.workloads.base import Workload
from repro.workloads.google import generate_google_workload
from repro.workloads.planetlab import generate_planetlab_workload

#: CloudSim's MIPS ratings for the two PlanetLab server generations.
G4_MIPS = 2 * 1860.0
G5_MIPS = 2 * 2660.0
PM_RAM_MB = 4096.0
PM_BANDWIDTH_MBPS = 1000.0

#: CloudSim's four PlanetLab VM types span 500-2500 MIPS and 613-1740 MB.
VM_MIPS_RANGE = (500.0, 2500.0)
VM_RAM_RANGE_MB = (613.0, 1740.0)
VM_BANDWIDTH_MBPS = 100.0


#: Google tasks run in much smaller footprints than PlanetLab slices —
#: the paper packs 4 VMs per PM (2000 VMs on 500 machines).
GOOGLE_VM_RAM_RANGE_MB = (256.0, 1024.0)
GOOGLE_VM_MIPS_RANGE = (500.0, 1500.0)


def make_planetlab_fleet(
    num_pms: int,
    num_vms: int,
    seed: int = 0,
    vm_ram_range_mb: Tuple[float, float] = VM_RAM_RANGE_MB,
    vm_mips_range: Tuple[float, float] = VM_MIPS_RANGE,
) -> Tuple[List[PhysicalMachine], List[VirtualMachine]]:
    """Build the paper's heterogeneous 50:50 G4/G5 fleet."""
    if num_pms < 1 or num_vms < 1:
        raise ConfigurationError("need at least one PM and one VM")
    rng = np.random.default_rng(seed)
    pms = []
    for pm_id in range(num_pms):
        if pm_id % 2 == 0:
            mips, model = G4_MIPS, HP_PROLIANT_G4
        else:
            mips, model = G5_MIPS, HP_PROLIANT_G5
        pms.append(
            PhysicalMachine(
                pm_id=pm_id,
                mips=mips,
                ram_mb=PM_RAM_MB,
                bandwidth_mbps=PM_BANDWIDTH_MBPS,
                power_model=model,
            )
        )
    vms = []
    for vm_id in range(num_vms):
        vms.append(
            VirtualMachine(
                vm_id=vm_id,
                mips=float(rng.uniform(*vm_mips_range)),
                ram_mb=float(rng.uniform(*vm_ram_range_mb)),
                bandwidth_mbps=VM_BANDWIDTH_MBPS,
            )
        )
    return pms, vms


def make_uniform_fleet(
    num_pms: int,
    num_vms: int,
    pm_mips: float = G5_MIPS,
    pm_ram_mb: float = PM_RAM_MB,
    vm_mips: float = 1000.0,
    vm_ram_mb: float = 1024.0,
    power_model: Optional[PowerModel] = None,
) -> Tuple[List[PhysicalMachine], List[VirtualMachine]]:
    """Homogeneous fleet — the Section-4 idealization, handy for tests."""
    model = power_model or HP_PROLIANT_G5
    pms = [
        PhysicalMachine(
            pm_id=pm_id,
            mips=pm_mips,
            ram_mb=pm_ram_mb,
            bandwidth_mbps=PM_BANDWIDTH_MBPS,
            power_model=model,
        )
        for pm_id in range(num_pms)
    ]
    vms = [
        VirtualMachine(
            vm_id=vm_id,
            mips=vm_mips,
            ram_mb=vm_ram_mb,
            bandwidth_mbps=VM_BANDWIDTH_MBPS,
        )
        for vm_id in range(num_vms)
    ]
    return pms, vms


def build_simulation(
    workload: Workload,
    num_pms: int,
    num_vms: Optional[int] = None,
    config: Optional[SimulationConfig] = None,
    placement: str = "first-fit",
    fleet_seed: int = 0,
    heterogeneous: bool = True,
    fleet_style: str = "planetlab",
) -> Simulation:
    """Assemble a :class:`Simulation` from a workload and fleet parameters.

    ``num_vms`` defaults to the workload's VM count.  ``placement`` names
    an initial-allocation policy (``first-fit``, ``round-robin``,
    ``random``, ``balanced``).  ``fleet_style`` selects the VM sizing:
    ``planetlab`` (big slices) or ``google`` (small task footprints).
    """
    vms_needed = num_vms if num_vms is not None else workload.num_vms
    if placement not in PLACEMENT_POLICIES:
        raise ConfigurationError(
            f"unknown placement {placement!r}; "
            f"choose from {sorted(PLACEMENT_POLICIES)}"
        )
    if fleet_style not in ("planetlab", "google"):
        raise ConfigurationError(
            f"unknown fleet style {fleet_style!r}"
        )
    if heterogeneous:
        if fleet_style == "google":
            pms, vms = make_planetlab_fleet(
                num_pms,
                vms_needed,
                seed=fleet_seed,
                vm_ram_range_mb=GOOGLE_VM_RAM_RANGE_MB,
                vm_mips_range=GOOGLE_VM_MIPS_RANGE,
            )
        else:
            pms, vms = make_planetlab_fleet(
                num_pms, vms_needed, seed=fleet_seed
            )
    else:
        pms, vms = make_uniform_fleet(num_pms, vms_needed)
    datacenter = Datacenter(pms, vms)
    policy = PLACEMENT_POLICIES[placement]
    if placement == "random":
        policy(datacenter, seed=fleet_seed)
    else:
        policy(datacenter)
    sim_config = config or SimulationConfig(
        num_steps=min(workload.num_steps, SimulationConfig().num_steps)
    )
    return Simulation(datacenter, workload, sim_config)


def build_planetlab_simulation(
    num_pms: int = 20,
    num_vms: int = 30,
    num_steps: int = 288,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
    placement: str = "first-fit",
) -> Simulation:
    """PlanetLab-style experiment in one call (synthetic trace)."""
    workload = generate_planetlab_workload(
        num_vms=num_vms, num_steps=num_steps, seed=seed
    )
    sim_config = config or SimulationConfig(num_steps=num_steps, seed=seed)
    return build_simulation(
        workload,
        num_pms=num_pms,
        num_vms=num_vms,
        config=sim_config,
        placement=placement,
        fleet_seed=seed,
    )


def build_google_simulation(
    num_pms: int = 20,
    num_vms: int = 60,
    num_steps: int = 288,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
    placement: str = "first-fit",
) -> Simulation:
    """Google-Cluster-style experiment in one call (synthetic trace).

    Defaults to the paper's denser VM:PM ratio (500 PMs hosting 2000
    task-VMs) with small task footprints.
    """
    workload = generate_google_workload(
        num_vms=num_vms, num_steps=num_steps, seed=seed
    )
    sim_config = config or SimulationConfig(num_steps=num_steps, seed=seed)
    return build_simulation(
        workload,
        num_pms=num_pms,
        num_vms=num_vms,
        config=sim_config,
        placement=placement,
        fleet_seed=seed,
        fleet_style="google",
    )
