"""Experiment presets: one entry per table/figure of the paper's Section 6.

Each preset captures the workload, fleet, schedulers, and horizon of one
experiment at *bench scale* — reduced from the paper's 800-PM/7-day runs
so a bench finishes in seconds while preserving the qualitative shape
(who wins, by roughly what factor, where crossovers fall).  Full-scale
parameters are kept alongside for reference and for users with time to
burn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloudsim.simulation import Simulation, SimulationResult
from repro.config import MeghConfig, SimulationConfig
from repro.core.agent import MeghScheduler
from repro.harness.builders import (
    build_google_simulation,
    build_planetlab_simulation,
)
from repro.harness.runner import (
    SchedulerFactory,
    madvm_factory,
    megh_factory,
    mmt_factories,
    run_comparison,
)


@dataclass(frozen=True)
class ExperimentPreset:
    """Scale parameters of one reproduced experiment."""

    experiment_id: str
    description: str
    workload: str  # "planetlab" | "google"
    num_pms: int
    num_vms: int
    num_steps: int
    seed: int = 0
    placement: str = "first-fit"
    paper_scale: str = ""

    def build(self, config: Optional[SimulationConfig] = None) -> Simulation:
        """Build the simulation for this preset."""
        builder = (
            build_planetlab_simulation
            if self.workload == "planetlab"
            else build_google_simulation
        )
        return builder(
            num_pms=self.num_pms,
            num_vms=self.num_vms,
            num_steps=self.num_steps,
            seed=self.seed,
            placement=self.placement,
            config=config,
        )


#: Bench-scale presets, keyed by experiment id.
PRESETS: Dict[str, ExperimentPreset] = {
    "table2": ExperimentPreset(
        experiment_id="table2",
        description="PlanetLab: MMT family vs Megh (total cost, "
        "migrations, active hosts, exec time)",
        workload="planetlab",
        num_pms=40,
        num_vms=52,
        num_steps=600,
        paper_scale="800 PMs / 1052 VMs / 2016 steps (7 days)",
    ),
    "table3": ExperimentPreset(
        experiment_id="table3",
        description="Google Cluster: MMT family vs Megh",
        workload="google",
        num_pms=25,
        num_vms=100,
        num_steps=600,
        paper_scale="500 PMs / 2000 VMs / 2016 steps",
    ),
    "fig2": ExperimentPreset(
        experiment_id="fig2",
        description="PlanetLab: Megh vs THR-MMT per-step series",
        workload="planetlab",
        num_pms=40,
        num_vms=52,
        num_steps=600,
        paper_scale="as Table 2",
    ),
    "fig3": ExperimentPreset(
        experiment_id="fig3",
        description="Google: Megh vs THR-MMT per-step series",
        workload="google",
        num_pms=25,
        num_vms=100,
        num_steps=600,
        paper_scale="as Table 3",
    ),
    "fig4": ExperimentPreset(
        experiment_id="fig4",
        description="PlanetLab subset: Megh vs MadVM",
        workload="planetlab",
        num_pms=20,
        num_vms=30,
        num_steps=864,
        placement="random",
        paper_scale="100 PMs / 150 VMs / 3 days, uniform random placement",
    ),
    "fig5": ExperimentPreset(
        experiment_id="fig5",
        description="Google subset: Megh vs MadVM",
        workload="google",
        num_pms=20,
        num_vms=40,
        num_steps=864,
        placement="random",
        paper_scale="100 PMs / 150 VMs / 3 days, uniform random placement",
    ),
}


def preset_builder_spec(preset: ExperimentPreset):
    """Engine :class:`~repro.engine.registry.BuilderSpec` for a preset.

    The preset's workload name maps directly onto the engine registry's
    ``planetlab``/``google`` builders, so every preset experiment can be
    executed (and cached) as declarative jobs.
    """
    from repro.engine.registry import BuilderSpec

    return BuilderSpec.create(
        preset.workload,
        num_pms=preset.num_pms,
        num_vms=preset.num_vms,
        num_steps=preset.num_steps,
        placement=preset.placement,
    )


def run_table_experiment(
    preset: ExperimentPreset,
    include_madvm: bool = False,
    num_steps: Optional[int] = None,
    seed: Optional[int] = None,
    engine=None,
) -> Dict[str, SimulationResult]:
    """Run the Table-2/3 line-up on a preset.

    ``engine`` (an :class:`repro.engine.ExecutionEngine`) executes the
    line-up as declarative jobs — parallel across schedulers, cached,
    and journaled — with results identical to the serial path for all
    simulated metrics.
    """
    effective_seed = preset.seed if seed is None else seed
    if engine is not None:
        from repro.engine.registry import spec_paper_factories

        return engine.run_comparison(
            preset_builder_spec(preset),
            spec_paper_factories(
                include_madvm=include_madvm, seed=effective_seed
            ),
            seed=effective_seed,
            num_steps=num_steps,
        )
    simulation = ExperimentPreset(
        **{
            **preset.__dict__,
            "seed": effective_seed,
        }
    ).build()
    factories: Dict[str, SchedulerFactory] = dict(mmt_factories())
    factories["Megh"] = megh_factory(seed=effective_seed)
    if include_madvm:
        factories["MadVM"] = madvm_factory(seed=effective_seed)
    return run_comparison(simulation, factories, num_steps=num_steps)


def run_megh_vs_thr(
    preset: ExperimentPreset, seed: Optional[int] = None, engine=None
) -> Dict[str, SimulationResult]:
    """Run the Figure-2/3 pair (Megh and THR-MMT) on a preset."""
    effective_seed = preset.seed if seed is None else seed
    if engine is not None:
        from repro.engine.registry import SchedulerSpec, spec_mmt_factories

        return engine.run_comparison(
            preset_builder_spec(preset),
            {
                "THR-MMT": spec_mmt_factories(detectors=("THR",))["THR-MMT"],
                "Megh": SchedulerSpec.create("megh", seed=effective_seed),
            },
            seed=effective_seed,
        )
    simulation = ExperimentPreset(
        **{**preset.__dict__, "seed": effective_seed}
    ).build()
    factories = {
        "THR-MMT": mmt_factories(detectors=("THR",))["THR-MMT"],
        "Megh": megh_factory(seed=effective_seed),
    }
    return run_comparison(simulation, factories)


def run_megh_vs_madvm(
    preset: ExperimentPreset, seed: Optional[int] = None, engine=None
) -> Dict[str, SimulationResult]:
    """Run the Figure-4/5 pair (Megh and MadVM) on a preset."""
    effective_seed = preset.seed if seed is None else seed
    if engine is not None:
        from repro.engine.registry import SchedulerSpec

        return engine.run_comparison(
            preset_builder_spec(preset),
            {
                "Megh": SchedulerSpec.create("megh", seed=effective_seed),
                "MadVM": SchedulerSpec.create("madvm", seed=effective_seed),
            },
            seed=effective_seed,
        )
    simulation = ExperimentPreset(
        **{**preset.__dict__, "seed": effective_seed}
    ).build()
    factories = {
        "Megh": megh_factory(seed=effective_seed),
        "MadVM": madvm_factory(seed=effective_seed),
    }
    return run_comparison(simulation, factories)


# ----------------------------------------------------------------------
# Figure 6: scalability grid
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScalabilityPoint:
    """Per-step execution time at one (m, n) fleet size."""

    num_pms: int
    num_vms: int
    algorithm: str
    mean_step_ms: float


def run_scalability_grid(
    sizes: Sequence[Tuple[int, int]] = ((10, 13), (20, 26), (40, 52), (80, 104)),
    num_steps: int = 100,
    seed: int = 0,
    algorithms: Sequence[str] = ("THR-MMT", "Megh"),
) -> List[ScalabilityPoint]:
    """Measure per-step decision time across fleet sizes (Figure 6).

    The paper's grid is m, n in {100..800}; the bench grid is scaled down
    but spans the same 8x range so the growth *shape* (THR-MMT superlinear,
    Megh sublinear, crossover) is visible.
    """
    points: List[ScalabilityPoint] = []
    for num_pms, num_vms in sizes:
        simulation = build_planetlab_simulation(
            num_pms=num_pms,
            num_vms=num_vms,
            num_steps=num_steps,
            seed=seed,
        )
        factories: Dict[str, SchedulerFactory] = {}
        if "THR-MMT" in algorithms:
            factories["THR-MMT"] = mmt_factories(detectors=("THR",))[
                "THR-MMT"
            ]
        if "Megh" in algorithms:
            factories["Megh"] = megh_factory(seed=seed)
        results = run_comparison(simulation, factories)
        for name, result in results.items():
            points.append(
                ScalabilityPoint(
                    num_pms=num_pms,
                    num_vms=num_vms,
                    algorithm=name,
                    mean_step_ms=result.mean_scheduler_ms,
                )
            )
    return points


# ----------------------------------------------------------------------
# Figure 7: Q-table growth
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QTableGrowth:
    """Q-table non-zero series for one fleet size (N = M)."""

    num_pms: int
    steps: Tuple[int, ...]
    nonzeros: Tuple[int, ...]
    slope: float
    intercept: float


def run_qtable_growth(
    pm_counts: Sequence[int] = (10, 20, 40),
    num_steps: int = 300,
    seed: int = 0,
) -> List[QTableGrowth]:
    """Track Q-table non-zeros over time for several fleet sizes (Fig 7).

    The paper sets N = M and observes linear growth in time with a
    vertical shift roughly linear in the number of PMs.
    """
    growths: List[QTableGrowth] = []
    for num_pms in pm_counts:
        simulation = build_planetlab_simulation(
            num_pms=num_pms,
            num_vms=num_pms,
            num_steps=num_steps,
            seed=seed,
        )
        scheduler = MeghScheduler.from_simulation(simulation, seed=seed)
        simulation.run(scheduler)
        tracker = scheduler.qtable
        growths.append(
            QTableGrowth(
                num_pms=num_pms,
                steps=tuple(tracker.steps),
                nonzeros=tuple(tracker.nonzeros),
                slope=tracker.growth_rate(),
                intercept=tracker.intercept(),
            )
        )
    return growths


# ----------------------------------------------------------------------
# Figure 8: parameter sensitivity
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SensitivityPoint:
    """Per-step cost distribution for one parameter value."""

    parameter: str
    value: float
    median_cost: float
    p10_cost: float
    p90_cost: float
    repeats: int


def _per_step_costs(result: SimulationResult) -> List[float]:
    return result.metrics.per_step_cost_series()


def run_temperature_sensitivity(
    temperatures: Sequence[float] = (0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0),
    epsilon: float = 0.001,
    repeats: int = 3,
    num_pms: int = 16,
    num_vms: int = 21,
    num_steps: int = 300,
) -> List[SensitivityPoint]:
    """Sweep Temp0 (Figure 8(a)); the paper's sweep is 0.5..10 step 0.5
    with 25 repeats and epsilon fixed at 0.001."""
    return _sweep(
        "Temp0",
        temperatures,
        lambda value: MeghConfig(
            initial_temperature=value, temperature_decay=epsilon
        ),
        repeats,
        num_pms,
        num_vms,
        num_steps,
    )


def run_epsilon_sensitivity(
    epsilons: Sequence[float] = (0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0),
    temperature: float = 1.0,
    repeats: int = 3,
    num_pms: int = 16,
    num_vms: int = 21,
    num_steps: int = 300,
) -> List[SensitivityPoint]:
    """Sweep epsilon (Figure 8(b)); the paper uses 30 log-spaced values in
    [1e-3, 1] with Temp0 fixed at 1."""
    return _sweep(
        "epsilon",
        epsilons,
        lambda value: MeghConfig(
            initial_temperature=temperature, temperature_decay=value
        ),
        repeats,
        num_pms,
        num_vms,
        num_steps,
    )


def _sweep(
    parameter: str,
    values: Sequence[float],
    config_for,
    repeats: int,
    num_pms: int,
    num_vms: int,
    num_steps: int,
) -> List[SensitivityPoint]:
    points: List[SensitivityPoint] = []
    for value in values:
        costs: List[float] = []
        for repeat in range(repeats):
            simulation = build_planetlab_simulation(
                num_pms=num_pms,
                num_vms=num_vms,
                num_steps=num_steps,
                seed=repeat,
            )
            scheduler = MeghScheduler.from_simulation(
                simulation, config=config_for(value), seed=repeat
            )
            result = simulation.run(scheduler)
            costs.extend(_per_step_costs(result))
        data = np.asarray(costs)
        points.append(
            SensitivityPoint(
                parameter=parameter,
                value=float(value),
                median_cost=float(np.median(data)),
                p10_cost=float(np.quantile(data, 0.10)),
                p90_cost=float(np.quantile(data, 0.90)),
                repeats=repeats,
            )
        )
    return points
