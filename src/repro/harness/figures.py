"""Figure-series extraction (Figures 2–5 panels a–d, and helpers for 6–8).

The paper's comparison figures all share the same four panels per
workload: (a) per-step operation cost, (b) cumulative migrations,
(c) active hosts, (d) per-step execution time.  :func:`figure_series`
extracts all four from a :class:`SimulationResult`; the benches print
them as aligned text series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cloudsim.simulation import SimulationResult


@dataclass(frozen=True)
class FigureSeries:
    """The four panel series for one algorithm."""

    algorithm: str
    per_step_cost_usd: Sequence[float]
    cumulative_migrations: Sequence[int]
    active_hosts: Sequence[int]
    exec_time_ms: Sequence[float]
    convergence_step: int

    @property
    def num_steps(self) -> int:
        return len(self.per_step_cost_usd)


def figure_series(result: SimulationResult) -> FigureSeries:
    """Extract the four panel series from a run."""
    metrics = result.metrics
    return FigureSeries(
        algorithm=result.scheduler_name,
        per_step_cost_usd=metrics.per_step_cost_series(),
        cumulative_migrations=metrics.cumulative_migration_series(),
        active_hosts=metrics.active_host_series(),
        exec_time_ms=metrics.scheduler_time_series_ms(),
        convergence_step=metrics.convergence_step(),
    )


def downsample(values: Sequence[float], points: int = 12) -> List[float]:
    """Pick ``points`` evenly spaced samples for compact text output."""
    if points <= 0 or not values:
        return []
    if len(values) <= points:
        return list(values)
    step = (len(values) - 1) / (points - 1)
    return [values[round(i * step)] for i in range(points)]


def render_panel(
    label: str,
    series_by_algorithm: Dict[str, Sequence[float]],
    points: int = 12,
    fmt: str = "{:.3f}",
) -> str:
    """Render one figure panel as aligned text rows."""
    lines = [f"-- {label} --"]
    width = max(len(name) for name in series_by_algorithm)
    for name, series in series_by_algorithm.items():
        samples = downsample(list(series), points)
        rendered = " ".join(fmt.format(v) for v in samples)
        lines.append(f"{name.ljust(width)} : {rendered}")
    return "\n".join(lines)


def render_figure(
    series: Sequence[FigureSeries], title: str, points: int = 12
) -> str:
    """Render all four panels (a)–(d) for a set of algorithms."""
    blocks = [title]
    blocks.append(
        render_panel(
            "(a) per-step cost (USD)",
            {s.algorithm: s.per_step_cost_usd for s in series},
            points,
        )
    )
    blocks.append(
        render_panel(
            "(b) cumulative migrations",
            {s.algorithm: s.cumulative_migrations for s in series},
            points,
            fmt="{:.0f}",
        )
    )
    blocks.append(
        render_panel(
            "(c) active hosts",
            {s.algorithm: s.active_hosts for s in series},
            points,
            fmt="{:.0f}",
        )
    )
    blocks.append(
        render_panel(
            "(d) execution time (ms)",
            {s.algorithm: s.exec_time_ms for s in series},
            points,
        )
    )
    blocks.append(
        "convergence steps: "
        + ", ".join(f"{s.algorithm}={s.convergence_step}" for s in series)
    )
    return "\n\n".join(blocks)
