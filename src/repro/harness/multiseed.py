"""Multi-seed experiment aggregation.

The paper repeats its scalability and sensitivity experiments 25 times
over random PM/VM subsets.  :func:`run_multi_seed` provides that rigor
for any comparison: it rebuilds the simulation per seed, runs every
scheduler factory on it, and aggregates each metric into mean ± std plus
the per-seed values, together with win counts (how often each algorithm
had the lowest total cost).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.cloudsim.simulation import Simulation, SimulationResult
from repro.errors import ConfigurationError
from repro.harness.runner import SchedulerFactory, run_comparison

#: Builds a fresh simulation for a given seed.
SimulationBuilder = Callable[[int], Simulation]


@dataclass(frozen=True)
class MetricSummary:
    """Mean/std/extremes of one metric across seeds."""

    values: tuple

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f}"


@dataclass
class SeedAggregate:
    """All metric summaries for one algorithm across seeds."""

    algorithm: str
    total_cost_usd: MetricSummary
    total_migrations: MetricSummary
    mean_active_hosts: MetricSummary
    mean_scheduler_ms: MetricSummary
    wins: int = 0
    results: List[SimulationResult] = field(default_factory=list)


def cheapest_algorithm(results: Dict[str, SimulationResult]) -> str:
    """The per-seed winner: lowest total cost, ties broken by name.

    The explicit ``(cost, name)`` key makes the win count independent of
    dict insertion order — two algorithms with exactly equal cost always
    resolve to the lexicographically smaller name.
    """
    return min(
        results.items(), key=lambda kv: (kv[1].total_cost_usd, kv[0])
    )[0]


def aggregate_seed_results(
    results_by_seed: Sequence[Dict[str, SimulationResult]],
) -> Dict[str, SeedAggregate]:
    """Fold per-seed comparison results into :class:`SeedAggregate`s.

    Shared by the serial loop and the execution engine's parallel path;
    given the same per-seed results it is bit-identical either way.
    """
    if not results_by_seed:
        raise ConfigurationError("need results for at least one seed")
    names = list(results_by_seed[0])
    per_algorithm: Dict[str, List[SimulationResult]] = {
        name: [] for name in names
    }
    wins: Dict[str, int] = {name: 0 for name in names}
    for results in results_by_seed:
        wins[cheapest_algorithm(results)] += 1
        for name, result in results.items():
            per_algorithm[name].append(result)
    aggregates: Dict[str, SeedAggregate] = {}
    for name, results in per_algorithm.items():
        aggregates[name] = SeedAggregate(
            algorithm=name,
            total_cost_usd=MetricSummary(
                tuple(r.total_cost_usd for r in results)
            ),
            total_migrations=MetricSummary(
                tuple(float(r.total_migrations) for r in results)
            ),
            mean_active_hosts=MetricSummary(
                tuple(r.mean_active_hosts for r in results)
            ),
            mean_scheduler_ms=MetricSummary(
                tuple(r.mean_scheduler_ms for r in results)
            ),
            wins=wins[name],
            results=results,
        )
    return aggregates


def run_multi_seed(
    builder: SimulationBuilder,
    factories: Dict[str, SchedulerFactory],
    seeds: Sequence[int],
    engine=None,
) -> Dict[str, SeedAggregate]:
    """Run every factory on a fresh simulation per seed and aggregate.

    ``engine`` (an :class:`repro.engine.ExecutionEngine`) routes the
    seed × factory grid through the execution subsystem — parallel
    workers, result caching, and fault journaling — instead of the
    in-process loop.  Parallel/cached execution requires spec-carrying
    callables (``BuilderSpec``/``SchedulerSpec`` from
    :mod:`repro.engine.registry`); the aggregates are identical to the
    serial path's for all simulated metrics.
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    if not factories:
        raise ConfigurationError("need at least one scheduler factory")
    if engine is not None:
        results_by_seed = engine.run_matrix(builder, factories, seeds)
    else:
        results_by_seed = [
            run_comparison(builder(seed), factories) for seed in seeds
        ]
    return aggregate_seed_results(results_by_seed)


def render_aggregates(
    aggregates: Dict[str, SeedAggregate], title: str = ""
) -> str:
    """Plain-text table of mean ± std per metric, plus win counts."""
    lines = [title] if title else []
    header = (
        f"{'Algorithm':14s} {'total cost (USD)':>22s} "
        f"{'#migrations':>18s} {'active hosts':>16s} {'wins':>5s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, aggregate in aggregates.items():
        lines.append(
            f"{name:14s} "
            f"{aggregate.total_cost_usd.mean:10.2f} ± {aggregate.total_cost_usd.std:7.2f} "
            f"{aggregate.total_migrations.mean:9.0f} ± {aggregate.total_migrations.std:5.0f} "
            f"{aggregate.mean_active_hosts.mean:8.1f} ± {aggregate.mean_active_hosts.std:4.1f} "
            f"{aggregate.wins:5d}"
        )
    return "\n".join(lines)
