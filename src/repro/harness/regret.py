"""Regret analysis against a reference scheduler.

The RL lens on scheduler quality: how much extra cumulative cost does an
online policy pay relative to a stronger reference (typically the
clairvoyant :class:`~repro.baselines.oracle.OracleScheduler`)?  A
learning scheduler should show *sublinear* regret — the per-step gap
shrinking as it converges — which :func:`regret_is_sublinear` tests by
comparing the gap accumulated in the first and second halves of the run.
"""

from __future__ import annotations

from typing import List

from repro.cloudsim.simulation import SimulationResult
from repro.errors import ConfigurationError


def regret_curve(
    result: SimulationResult, reference: SimulationResult
) -> List[float]:
    """Cumulative cost difference ``result - reference`` per step."""
    costs = result.metrics.per_step_cost_series()
    ref_costs = reference.metrics.per_step_cost_series()
    if len(costs) != len(ref_costs):
        raise ConfigurationError(
            "runs must cover the same number of steps "
            f"({len(costs)} vs {len(ref_costs)})"
        )
    curve: List[float] = []
    running = 0.0
    for cost, ref in zip(costs, ref_costs):
        running += cost - ref
        curve.append(running)
    return curve


def total_regret(
    result: SimulationResult, reference: SimulationResult
) -> float:
    """Final cumulative regret in USD (negative = beat the reference)."""
    curve = regret_curve(result, reference)
    return curve[-1] if curve else 0.0


def regret_is_sublinear(
    result: SimulationResult,
    reference: SimulationResult,
    tolerance: float = 1.0,
) -> bool:
    """Whether the second half accrues less regret than the first.

    ``tolerance`` scales the comparison: 1.0 demands strictly less,
    1.2 allows the second half up to 20 % more (noise headroom).
    """
    if tolerance <= 0:
        raise ConfigurationError("tolerance must be > 0")
    curve = regret_curve(result, reference)
    if len(curve) < 4:
        return True
    half = len(curve) // 2
    first_half = curve[half - 1]
    second_half = curve[-1] - curve[half - 1]
    return second_half <= tolerance * max(first_half, 0.0) or second_half <= 0.0
