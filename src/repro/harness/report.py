"""Markdown report generation for comparison runs.

Turns a ``{name: SimulationResult}`` map into a self-contained markdown
report: the Table-2-style comparison, per-algorithm convergence and
steady-state rates, and the winner summary — the artifact a user drops
into a lab notebook or CI comment.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cloudsim.simulation import SimulationResult


def _steady_state(result: SimulationResult, tail_fraction: float) -> float:
    costs = result.metrics.per_step_cost_series()
    tail = max(1, int(len(costs) * tail_fraction))
    return sum(costs[-tail:]) / tail


def markdown_table(rows: Sequence[Sequence[str]]) -> str:
    """Render rows (first row = header) as a GitHub-flavoured table."""
    if not rows:
        return ""
    header, *body = rows
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in body:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def comparison_report(
    results: Dict[str, SimulationResult],
    title: str = "Scheduler comparison",
    tail_fraction: float = 0.25,
) -> str:
    """Build the full markdown report for a comparison run."""
    if not results:
        return f"# {title}\n\n(no results)"
    any_result = next(iter(results.values()))
    lines: List[str] = [f"# {title}", ""]
    lines.append(
        f"Fleet: {any_result.num_pms} PMs / {any_result.num_vms} VMs, "
        f"{len(any_result.metrics.steps)} steps of "
        f"{any_result.config.interval_seconds:.0f} s."
    )
    lines.append("")

    rows: List[List[str]] = [
        [
            "Algorithm",
            "Total cost (USD)",
            "Energy (USD)",
            "SLA (USD)",
            "#Migrations",
            "Active hosts",
            "Exec (ms)",
            "Steady cost/step",
            "Convergence step",
        ]
    ]
    for name, result in results.items():
        metrics = result.metrics
        rows.append(
            [
                name,
                f"{result.total_cost_usd:.2f}",
                f"{metrics.total_energy_cost_usd:.2f}",
                f"{metrics.total_sla_cost_usd:.2f}",
                str(result.total_migrations),
                f"{result.mean_active_hosts:.1f}",
                f"{result.mean_scheduler_ms:.3f}",
                f"{_steady_state(result, tail_fraction):.4f}",
                str(metrics.convergence_step()),
            ]
        )
    lines.append(markdown_table(rows))
    lines.append("")

    by_total = min(results.items(), key=lambda kv: kv[1].total_cost_usd)
    by_rate = min(
        results.items(), key=lambda kv: _steady_state(kv[1], tail_fraction)
    )
    by_migrations = min(
        results.items(), key=lambda kv: kv[1].total_migrations
    )
    lines.append(f"* cheapest total: **{by_total[0]}** "
                 f"({by_total[1].total_cost_usd:.2f} USD)")
    lines.append(
        f"* cheapest converged rate: **{by_rate[0]}** "
        f"({_steady_state(by_rate[1], tail_fraction):.4f} USD/step)"
    )
    lines.append(
        f"* fewest migrations: **{by_migrations[0]}** "
        f"({by_migrations[1].total_migrations})"
    )
    lines.append("")
    return "\n".join(lines)


def save_report(
    results: Dict[str, SimulationResult],
    path: str,
    title: str = "Scheduler comparison",
) -> None:
    """Write :func:`comparison_report` to a file."""
    with open(path, "w") as handle:
        handle.write(comparison_report(results, title=title))
        handle.write("\n")
