"""Experiment runners: one scheduler, or a paper-style comparison sweep."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.cloudsim.simulation import Simulation, SimulationResult
from repro.config import MeghConfig
from repro.core.agent import MeghScheduler
from repro.baselines.madvm import MadVMScheduler
from repro.baselines.mmt.scheduler import MMTScheduler
from repro.mdp.interfaces import Scheduler

#: Factory signature: given a (reset) simulation, build a fresh scheduler.
SchedulerFactory = Callable[[Simulation], Scheduler]


def run_scheduler(
    simulation: Simulation,
    scheduler: Scheduler,
    num_steps: Optional[int] = None,
) -> SimulationResult:
    """Reset the simulation and run one scheduler on it."""
    simulation.reset()
    return simulation.run(scheduler, num_steps=num_steps)


def run_comparison(
    simulation: Simulation,
    factories: Dict[str, SchedulerFactory],
    num_steps: Optional[int] = None,
) -> Dict[str, SimulationResult]:
    """Run several schedulers on identical replays of the same workload.

    Each scheduler sees the same initial placement and the same trace, so
    differences in the results are attributable to the scheduler alone.
    """
    results: Dict[str, SimulationResult] = {}
    for name, factory in factories.items():
        simulation.reset()
        scheduler = factory(simulation)
        results[name] = simulation.run(scheduler, num_steps=num_steps)
    return results


def mmt_factories(
    detectors: Sequence[str] = ("THR", "IQR", "MAD", "LR", "LRR"),
    thr_threshold: float = 0.7,
) -> Dict[str, SchedulerFactory]:
    """Factories for the paper's five MMT contenders."""

    def make(name: str) -> SchedulerFactory:
        def factory(simulation: Simulation) -> Scheduler:
            if name == "THR":
                return MMTScheduler(
                    "THR", utilization_threshold=thr_threshold
                )
            return MMTScheduler(name)

        return factory

    return {f"{name}-MMT": make(name) for name in detectors}


def megh_factory(
    config: Optional[MeghConfig] = None, seed: int = 0
) -> SchedulerFactory:
    """Factory for a Megh agent sized to the simulation at run time."""

    def factory(simulation: Simulation) -> Scheduler:
        return MeghScheduler.from_simulation(
            simulation, config=config, seed=seed
        )

    return factory


def madvm_factory(seed: int = 0, **kwargs) -> SchedulerFactory:
    """Factory for a MadVM agent sized to the simulation at run time."""

    def factory(simulation: Simulation) -> Scheduler:
        return MadVMScheduler.from_simulation(
            simulation, seed=seed, **kwargs
        )

    return factory


def paper_factories(
    megh_config: Optional[MeghConfig] = None,
    include_madvm: bool = False,
    seed: int = 0,
) -> Dict[str, SchedulerFactory]:
    """The Table-2/3 line-up: five MMT variants plus Megh (and MadVM)."""
    factories = mmt_factories()
    factories["Megh"] = megh_factory(config=megh_config, seed=seed)
    if include_madvm:
        factories["MadVM"] = madvm_factory(seed=seed)
    return factories


def comparison_rows(
    results: Dict[str, SimulationResult]
) -> List[Dict[str, object]]:
    """Flatten results into Table-2/3 style rows."""
    rows = []
    for name, result in results.items():
        rows.append(
            {
                "algorithm": name,
                "total_cost_usd": round(result.total_cost_usd, 2),
                "num_migrations": result.total_migrations,
                "mean_active_hosts": round(result.mean_active_hosts, 1),
                "exec_time_ms": round(result.mean_scheduler_ms, 3),
            }
        )
    return rows
