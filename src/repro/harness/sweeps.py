"""Generic parameter sweeps over Megh configurations.

Figure 8 sweeps two specific knobs; research use wants arbitrary ones
("what if gamma were 0.9 and the cap 10 %?").  :func:`sweep_megh` runs a
grid over any :class:`~repro.config.MeghConfig` fields (one simulation
rebuild per cell per seed), aggregates per-step-cost distributions, and
returns typed results the sensitivity benches and notebooks can render.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.cloudsim.simulation import Simulation
from repro.config import MeghConfig
from repro.core.agent import MeghScheduler
from repro.errors import ConfigurationError

#: Builds a fresh simulation for a given seed.
SimulationBuilder = Callable[[int], Simulation]


@dataclass(frozen=True)
class SweepCell:
    """One grid point's aggregated outcome."""

    parameters: Tuple[Tuple[str, object], ...]
    median_step_cost: float
    p10_step_cost: float
    p90_step_cost: float
    mean_total_cost: float
    mean_migrations: float
    repeats: int

    def parameter_dict(self) -> Dict[str, object]:
        return dict(self.parameters)


def _cell_from_results(
    parameters: Tuple[Tuple[str, object], ...],
    results: Sequence[object],
    repeats: int,
) -> SweepCell:
    """Aggregate one grid point's per-seed results into a cell."""
    step_costs: List[float] = []
    totals: List[float] = []
    migrations: List[float] = []
    for result in results:
        step_costs.extend(result.metrics.per_step_cost_series())
        totals.append(result.total_cost_usd)
        migrations.append(float(result.total_migrations))
    data = np.asarray(step_costs)
    return SweepCell(
        parameters=parameters,
        median_step_cost=float(np.median(data)),
        p10_step_cost=float(np.quantile(data, 0.10)),
        p90_step_cost=float(np.quantile(data, 0.90)),
        mean_total_cost=float(np.mean(totals)),
        mean_migrations=float(np.mean(migrations)),
        repeats=repeats,
    )


def sweep_megh(
    builder: SimulationBuilder,
    grid: Dict[str, Sequence[object]],
    base_config: MeghConfig | None = None,
    seeds: Sequence[int] = (0,),
    engine=None,
) -> List[SweepCell]:
    """Run Megh over the Cartesian product of ``grid``'s values.

    ``grid`` maps :class:`MeghConfig` field names to the values to try;
    unknown field names raise immediately.  Each cell runs once per
    seed; per-step costs pool across seeds.

    ``engine`` (an :class:`repro.engine.ExecutionEngine`) submits the
    whole grid — every cell × seed — as one batch of jobs, so a sweep
    parallelizes across cells as well as seeds and replays unchanged
    cells from cache.  The engine path requires ``builder`` to be a
    :class:`repro.engine.registry.BuilderSpec`.
    """
    if not grid:
        raise ConfigurationError("grid must name at least one parameter")
    if not seeds:
        raise ConfigurationError("need at least one seed")
    base = base_config or MeghConfig()
    valid_fields = set(base.__dataclass_fields__)
    for name in grid:
        if name not in valid_fields:
            raise ConfigurationError(
                f"unknown MeghConfig field {name!r}; "
                f"valid fields: {sorted(valid_fields)}"
            )
    names = list(grid)
    points = list(itertools.product(*(grid[name] for name in names)))
    configs = [
        replace(base, **dict(zip(names, values))) for values in points
    ]
    if engine is not None:
        per_cell = engine.run_sweep(builder, configs, seeds)
        return [
            _cell_from_results(tuple(zip(names, values)), results, len(seeds))
            for values, results in zip(points, per_cell)
        ]
    cells: List[SweepCell] = []
    for values, config in zip(points, configs):
        results = []
        for seed in seeds:
            simulation = builder(seed)
            agent = MeghScheduler.from_simulation(
                simulation, config=config, seed=seed
            )
            results.append(simulation.run(agent))
        cells.append(
            _cell_from_results(tuple(zip(names, values)), results, len(seeds))
        )
    return cells


def best_cell(cells: Sequence[SweepCell]) -> SweepCell:
    """The grid point with the lowest mean total cost."""
    if not cells:
        raise ConfigurationError("no sweep cells to choose from")
    return min(cells, key=lambda cell: cell.mean_total_cost)


def render_sweep(cells: Sequence[SweepCell], title: str = "") -> str:
    """Plain-text table of a sweep, one row per grid point."""
    lines = [title] if title else []
    for cell in cells:
        params = ", ".join(f"{k}={v}" for k, v in cell.parameters)
        lines.append(
            f"{params}: median/step={cell.median_step_cost:.4f} "
            f"[{cell.p10_step_cost:.4f}, {cell.p90_step_cost:.4f}] "
            f"total={cell.mean_total_cost:.2f} "
            f"migrations={cell.mean_migrations:.0f}"
        )
    return "\n".join(lines)
