"""Plain-text rendering of Table 2/3-style comparisons."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cloudsim.simulation import SimulationResult

#: Table 2/3 row labels, in the paper's order.
TABLE_ROWS = (
    ("Total cost (USD)", lambda r: f"{r.total_cost_usd:.2f}"),
    ("#VM migrations", lambda r: str(r.total_migrations)),
    ("#Active hosts", lambda r: f"{r.mean_active_hosts:.1f}"),
    ("Execution time (ms)", lambda r: f"{r.mean_scheduler_ms:.3f}"),
)


def comparison_table(
    results: Dict[str, SimulationResult], title: str = ""
) -> List[List[str]]:
    """Build the Table-2/3 grid: metrics as rows, algorithms as columns."""
    names = list(results)
    grid: List[List[str]] = [["Algorithm", *names]]
    for label, extractor in TABLE_ROWS:
        grid.append([label, *(extractor(results[name]) for name in names)])
    if title:
        grid.insert(0, [title])
    return grid


def format_table(grid: Sequence[Sequence[str]]) -> str:
    """Render a grid with aligned columns."""
    body = [row for row in grid if len(row) > 1]
    titles = [row[0] for row in grid if len(row) == 1]
    if not body:
        return "\n".join(titles)
    widths = [0] * max(len(row) for row in body)
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = list(titles)
    for row_index, row in enumerate(body):
        line = "  ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(row)
        )
        lines.append(line.rstrip())
        if row_index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def render_comparison(
    results: Dict[str, SimulationResult], title: str = ""
) -> str:
    """One-call convenience: build and format a comparison table."""
    return format_table(comparison_table(results, title=title))
