"""MDP formalization of live migration (Section 4): states, actions, interfaces."""

from repro.mdp.action import ActionSpace, MigrationAction
from repro.mdp.state import DatacenterState, observe_state
from repro.mdp.interfaces import Observation, Scheduler

__all__ = [
    "ActionSpace",
    "MigrationAction",
    "DatacenterState",
    "observe_state",
    "Observation",
    "Scheduler",
]
