"""Action space of the live-migration MDP (Section 4).

An action is a pair ``(j, k)`` — migrate VM ``j`` to PM ``k``.  The action
space has exactly ``d = N x M`` members, matching the dimension of Megh's
projection space: each action maps to the basis vector with a single 1 at
index ``j * M + k``.  Moving a VM to its current host encodes "do nothing
for j", which keeps the space complete without an extra no-op symbol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, order=True)
class MigrationAction:
    """Migrate VM ``vm_id`` to PM ``dest_pm_id``."""

    vm_id: int
    dest_pm_id: int


class ActionSpace:
    """Dense indexing of all ``N x M`` migration actions.

    Args:
        num_vms: N.
        num_pms: M.
    """

    def __init__(self, num_vms: int, num_pms: int) -> None:
        if num_vms < 1 or num_pms < 1:
            raise ConfigurationError("need at least one VM and one PM")
        self.num_vms = num_vms
        self.num_pms = num_pms

    @property
    def dimension(self) -> int:
        """``d = N x M`` — also the dimension of Megh's projection space."""
        return self.num_vms * self.num_pms

    def index(self, action: MigrationAction) -> int:
        """Dense index of an action: ``j * M + k``."""
        if not 0 <= action.vm_id < self.num_vms:
            raise ConfigurationError(
                f"vm_id {action.vm_id} out of range [0, {self.num_vms})"
            )
        if not 0 <= action.dest_pm_id < self.num_pms:
            raise ConfigurationError(
                f"dest_pm_id {action.dest_pm_id} out of range [0, {self.num_pms})"
            )
        return action.vm_id * self.num_pms + action.dest_pm_id

    def action(self, index: int) -> MigrationAction:
        """Inverse of :meth:`index`."""
        if not 0 <= index < self.dimension:
            raise ConfigurationError(
                f"action index {index} out of range [0, {self.dimension})"
            )
        return MigrationAction(
            vm_id=index // self.num_pms, dest_pm_id=index % self.num_pms
        )

    def is_noop(self, action: MigrationAction, current_host: int) -> bool:
        """Whether the action leaves the VM where it is."""
        return action.dest_pm_id == current_host

    def actions_for_vm(self, vm_id: int):
        """All M actions migrating a given VM (generator)."""
        for pm_id in range(self.num_pms):
            yield MigrationAction(vm_id=vm_id, dest_pm_id=pm_id)
