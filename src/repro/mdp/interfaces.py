"""Scheduler interface shared by Megh and every baseline.

The simulation driver calls :meth:`Scheduler.decide` once per observation
interval with an :class:`Observation` (state snapshot, utilization
histories, the cost charged last step, and a live read-only view of the
data center for feasibility checks) and applies the returned migrations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, runtime_checkable

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.migration import Migration
from repro.cloudsim.monitor import UtilizationMonitor
from repro.mdp.state import DatacenterState


@dataclass(frozen=True)
class Observation:
    """Everything a scheduler may look at when deciding migrations.

    Attributes:
        step: current simulation step (0-based).
        state: immutable MDP-state snapshot.
        datacenter: live data center — schedulers must treat it as
            read-only; the driver applies their decisions.
        monitor: rolling utilization histories (the VMM feed).
        last_step_cost_usd: Eq. (6) cost charged for the previous
            interval; 0 at the first step.
        interval_seconds: length of one observation interval.
    """

    step: int
    state: DatacenterState
    datacenter: Datacenter
    monitor: UtilizationMonitor
    last_step_cost_usd: float
    interval_seconds: float


@runtime_checkable
class Scheduler(Protocol):
    """A live-migration decision maker."""

    name: str

    def decide(self, observation: Observation) -> List[Migration]:
        """Return the migrations to start this interval (possibly none)."""
        ...
