"""State of the live-migration MDP (Section 4).

A state is a configuration of VMs on PMs together with the workload vector
``W`` (per-VM demanded CPU).  :class:`DatacenterState` is an immutable
snapshot used by schedulers; :func:`observe_state` captures one from a live
:class:`~repro.cloudsim.datacenter.Datacenter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.cloudsim.datacenter import Datacenter


@dataclass(frozen=True)
class DatacenterState:
    """Immutable snapshot of the data-center configuration and workload.

    Attributes:
        step: simulation step at which the snapshot was taken.
        placement: VM id -> PM id for every placed VM.
        workloads: per-VM demanded utilization, indexed by VM id.
        host_utilization: per-PM demanded utilization (can exceed 1 when
            oversubscribed).
        active_vms: ids of VMs with a running workload.
    """

    step: int
    placement: Tuple[Tuple[int, int], ...]
    workloads: Tuple[float, ...]
    host_utilization: Tuple[float, ...]
    active_vms: Tuple[int, ...]

    def placement_map(self) -> Dict[int, int]:
        """The placement as a dict (copy)."""
        return dict(self.placement)

    def host_of(self, vm_id: int) -> int | None:
        for vm, pm in self.placement:
            if vm == vm_id:
                return pm
        return None

    @property
    def num_vms(self) -> int:
        return len(self.workloads)

    @property
    def num_pms(self) -> int:
        return len(self.host_utilization)

    def configuration_key(self) -> Tuple[Tuple[int, int], ...]:
        """Hashable key identifying the configuration component only."""
        return self.placement


def observe_state(datacenter: Datacenter, step: int) -> DatacenterState:
    """Snapshot the current configuration and workload vector."""
    arrays = getattr(datacenter, "arrays", None)
    if arrays is not None:
        # Batched snapshot off the struct-of-arrays mirror: the arrays
        # hold exactly what the per-object properties would report.
        placed_ids = np.flatnonzero(arrays.host_of >= 0)
        placement = tuple(
            zip(
                placed_ids.tolist(),
                arrays.host_of[placed_ids].tolist(),
            )
        )
        workloads = tuple(arrays.vm_demand.tolist())
        host_utilization = tuple(arrays.pm_demand_utilization().tolist())
        active = tuple(np.flatnonzero(arrays.vm_active).tolist())
    else:
        placement = tuple(sorted(datacenter.placement().items()))
        workloads = tuple(vm.demanded_utilization for vm in datacenter.vms)
        host_utilization = tuple(
            datacenter.demanded_utilization(pm.pm_id) for pm in datacenter.pms
        )
        active = tuple(vm.vm_id for vm in datacenter.vms if vm.is_active)
    return DatacenterState(
        step=step,
        placement=placement,
        workloads=workloads,
        host_utilization=host_utilization,
        active_vms=active,
    )
