"""Long-running migration service with VM churn (service mode).

A :class:`~repro.service.loop.ServiceSimulation` replaces the fixed-fleet
batch driver of :class:`~repro.cloudsim.simulation.Simulation` with an
event-driven loop: VMs arrive, resize and depart according to a seeded
:class:`~repro.service.churn.ChurnModel` (or a JSONL trace), slots in
the fixed-size projection basis are reused through a
:class:`~repro.core.basis.VmSlotPool`, and the learner forgets departed
VMs via Sherman–Morrison retirement.  Runs can be checkpointed and
resumed bit-identically (``repro serve --checkpoint-every/--resume``).
"""

from repro.service.churn import (
    ChurnConfig,
    ChurnEvent,
    ChurnModel,
    TraceChurnModel,
)
from repro.service.loop import ServiceSimulation

__all__ = [
    "ChurnConfig",
    "ChurnEvent",
    "ChurnModel",
    "TraceChurnModel",
    "ServiceSimulation",
]
