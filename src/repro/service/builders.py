"""Constructors for churn-driven service simulations.

:func:`build_churn_service` assembles a :class:`ServiceSimulation` from
scalar parameters only, which makes it registry-friendly: it is
registered as the ``"churn"`` builder, and the spec it attaches to the
service (builder name + params + seed) is what lets a checkpoint rebuild
the identical service on restore.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.pm import PhysicalMachine
from repro.cloudsim.power import HP_PROLIANT_G4, HP_PROLIANT_G5
from repro.cloudsim.vm import VirtualMachine
from repro.config import SimulationConfig
from repro.harness.builders import (
    G4_MIPS,
    G5_MIPS,
    PM_BANDWIDTH_MBPS,
    PM_RAM_MB,
)
from repro.service.churn import ChurnConfig, ChurnModel, TraceChurnModel
from repro.service.loop import ServiceSimulation

__all__ = ["build_churn_service"]


def _placeholder_fleet(num_pms: int, capacity: int) -> Datacenter:
    """A PlanetLab-style PM fleet plus ``capacity`` inactive VM slots.

    Placeholder slots carry minimal valid capacities (1 MIPS / 1 MB);
    arrivals overwrite them via ``DatacenterArrays.bind_vm_slot``.
    """
    pms = [
        PhysicalMachine(
            pm_id=pm_id,
            mips=G4_MIPS if pm_id % 2 == 0 else G5_MIPS,
            ram_mb=PM_RAM_MB,
            bandwidth_mbps=PM_BANDWIDTH_MBPS,
            power_model=(
                HP_PROLIANT_G4 if pm_id % 2 == 0 else HP_PROLIANT_G5
            ),
        )
        for pm_id in range(num_pms)
    ]
    slots = [
        VirtualMachine(
            vm_id=slot,
            mips=1.0,
            ram_mb=1.0,
            bandwidth_mbps=1.0,
            _active=False,
        )
        for slot in range(capacity)
    ]
    return Datacenter(pms, slots)


def build_churn_service(
    seed: int = 0,
    num_pms: int = 8,
    capacity: int = 12,
    num_steps: int = 96,
    arrival_rate: float = 0.6,
    mean_lifetime_steps: float = 24.0,
    initial_vms: int = 6,
    resize_probability: float = 0.15,
    decide_every: int = 1,
    scan_every: int = 1,
    trace_path: Optional[str] = None,
) -> ServiceSimulation:
    """A churn-driven service on a PlanetLab-style fleet.

    With ``trace_path`` the churn schedule is replayed from a JSONL
    lifecycle trace (the distribution parameters are then unused);
    otherwise it is generated from ``seed``.  The returned service
    carries a registry spec, so its checkpoints are self-describing.
    """
    datacenter = _placeholder_fleet(num_pms, capacity)
    config = SimulationConfig(num_steps=num_steps, seed=seed)
    if trace_path is not None:
        churn: Any = TraceChurnModel.from_jsonl(
            trace_path, num_steps=num_steps
        )
    else:
        churn = ChurnModel(
            ChurnConfig(
                arrival_rate=arrival_rate,
                mean_lifetime_steps=mean_lifetime_steps,
                initial_vms=initial_vms,
                resize_probability=resize_probability,
            ),
            num_steps=num_steps,
            seed=seed,
        )
    params: Dict[str, Any] = {
        "num_pms": num_pms,
        "capacity": capacity,
        "num_steps": num_steps,
        "arrival_rate": arrival_rate,
        "mean_lifetime_steps": mean_lifetime_steps,
        "initial_vms": initial_vms,
        "resize_probability": resize_probability,
        "decide_every": decide_every,
        "scan_every": scan_every,
    }
    if trace_path is not None:
        params["trace_path"] = trace_path
    return ServiceSimulation(
        datacenter,
        churn,
        config,
        decide_every=decide_every,
        scan_every=scan_every,
        spec={"builder": "churn", "seed": seed, "params": params},
    )
