"""VM churn: seeded lifecycle-event generation and trace replay.

A churn model turns a seed (or a JSONL trace) into a deterministic,
totally-ordered schedule of typed VM lifecycle events — create, resize,
delete — that the :class:`~repro.service.loop.ServiceSimulation` drains
step by step.  The schedule is generated *eagerly* from a dedicated RNG,
so checkpointing needs to store only a cursor into it, never RNG state.

Within a step events apply in ``delete < resize < create`` order (ties
broken by generation sequence): departures free slots and RAM that
same-step arrivals may then claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cloudsim.events import Event, EventKind
from repro.errors import ConfigurationError

__all__ = ["ChurnConfig", "ChurnEvent", "ChurnModel", "TraceChurnModel"]

#: Kind names used by :class:`ChurnEvent` and the JSONL trace format.
CREATE = "create"
RESIZE = "resize"
DELETE = "delete"

#: Within-step application order: departures first, arrivals last.
_KIND_PRIORITY: Dict[str, int] = {DELETE: 0, RESIZE: 1, CREATE: 2}

#: JSONL trace event kinds (the :class:`EventKind` lifecycle taxonomy)
#: mapped onto churn kinds, so a saved service event log replays as a
#: trace.
_TRACE_KINDS: Dict[str, str] = {
    EventKind.VM_CREATED.value: CREATE,
    EventKind.VM_RESIZED.value: RESIZE,
    EventKind.VM_DELETED.value: DELETE,
}


@dataclass(frozen=True)
class ChurnConfig:
    """Arrival/holding-time distributions for generated churn.

    Attributes:
        arrival_rate: mean Poisson arrivals per observation interval.
        mean_lifetime_steps: mean geometric holding time, in intervals.
        initial_vms: arrivals injected at step 0 (the starting fleet).
        vm_mips_range: uniform range for a new VM's CPU capacity.
        vm_ram_range_mb: uniform range for a new VM's RAM.
        vm_bandwidth_mbps: network allocation of every VM.
        resize_probability: chance a VM schedules one mid-life CPU
            resize (RAM is never resized — migration cost stays fixed).
        resize_factor_range: uniform multiplier applied to the VM's
            MIPS by a resize event.
    """

    arrival_rate: float = 1.0
    mean_lifetime_steps: float = 48.0
    initial_vms: int = 8
    vm_mips_range: Tuple[float, float] = (500.0, 2500.0)
    vm_ram_range_mb: Tuple[float, float] = (613.0, 1740.0)
    vm_bandwidth_mbps: float = 100.0
    resize_probability: float = 0.15
    resize_factor_range: Tuple[float, float] = (0.6, 1.5)

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ConfigurationError("arrival_rate must be >= 0")
        if self.mean_lifetime_steps < 1:
            raise ConfigurationError("mean_lifetime_steps must be >= 1")
        if self.initial_vms < 0:
            raise ConfigurationError("initial_vms must be >= 0")
        if not 0 <= self.resize_probability <= 1:
            raise ConfigurationError("resize_probability must be in [0, 1]")
        for low, high in (
            self.vm_mips_range,
            self.vm_ram_range_mb,
            self.resize_factor_range,
        ):
            if not 0 < low <= high:
                raise ConfigurationError(
                    f"range ({low}, {high}) must satisfy 0 < low <= high"
                )
        if self.vm_bandwidth_mbps <= 0:
            raise ConfigurationError("vm_bandwidth_mbps must be > 0")


@dataclass(frozen=True)
class ChurnEvent:
    """One lifecycle event against VM ``uid``.

    ``mips``/``ram_mb``/``bandwidth_mbps`` carry the new VM's capacities
    for a create; a resize uses only ``mips`` (the new CPU capacity);
    a delete carries no capacities.
    """

    step: int
    kind: str
    uid: int
    mips: float = 0.0
    ram_mb: float = 0.0
    bandwidth_mbps: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KIND_PRIORITY:
            raise ConfigurationError(f"unknown churn kind {self.kind!r}")
        if self.step < 0:
            raise ConfigurationError("step must be >= 0")


def _ordered(
    tagged: List[Tuple[int, int, int, ChurnEvent]]
) -> List[ChurnEvent]:
    """Sort ``(step, priority, seq, event)`` tuples into schedule order."""
    tagged.sort(key=lambda item: item[:3])
    return [event for _, _, _, event in tagged]


class ChurnModel:
    """Seeded generator: Poisson arrivals, geometric holding times.

    The full schedule for ``num_steps`` intervals is drawn up front from
    ``np.random.default_rng(seed)`` in a fixed draw order, so two models
    with the same ``(config, num_steps, seed)`` produce identical
    schedules and a resumed run can rejoin the schedule by cursor alone.

    VM uids are assigned in arrival order starting at 0 and never
    reused; the service loop maps them onto basis slots.
    """

    def __init__(
        self, config: ChurnConfig, num_steps: int, seed: int = 0
    ) -> None:
        if num_steps < 1:
            raise ConfigurationError("num_steps must be >= 1")
        self.config = config
        self.num_steps = num_steps
        self.seed = seed
        rng = np.random.default_rng(seed)
        tagged: List[Tuple[int, int, int, ChurnEvent]] = []
        seq = 0
        uid = 0
        for step in range(num_steps):
            if step == 0:
                arrivals = config.initial_vms
            else:
                arrivals = int(rng.poisson(config.arrival_rate))
            for _ in range(arrivals):
                mips = float(rng.uniform(*config.vm_mips_range))
                ram_mb = float(rng.uniform(*config.vm_ram_range_mb))
                lifetime = int(
                    rng.geometric(1.0 / config.mean_lifetime_steps)
                )
                tagged.append(
                    (
                        step,
                        _KIND_PRIORITY[CREATE],
                        seq,
                        ChurnEvent(
                            step=step,
                            kind=CREATE,
                            uid=uid,
                            mips=mips,
                            ram_mb=ram_mb,
                            bandwidth_mbps=config.vm_bandwidth_mbps,
                        ),
                    )
                )
                seq += 1
                if (
                    lifetime >= 2
                    and rng.random() < config.resize_probability
                ):
                    offset = int(rng.integers(1, lifetime))
                    factor = float(
                        rng.uniform(*config.resize_factor_range)
                    )
                    resize_step = step + offset
                    if resize_step < num_steps:
                        tagged.append(
                            (
                                resize_step,
                                _KIND_PRIORITY[RESIZE],
                                seq,
                                ChurnEvent(
                                    step=resize_step,
                                    kind=RESIZE,
                                    uid=uid,
                                    mips=mips * factor,
                                ),
                            )
                        )
                        seq += 1
                delete_step = step + lifetime
                if delete_step < num_steps:
                    tagged.append(
                        (
                            delete_step,
                            _KIND_PRIORITY[DELETE],
                            seq,
                            ChurnEvent(
                                step=delete_step, kind=DELETE, uid=uid
                            ),
                        )
                    )
                    seq += 1
                uid += 1
        self.events: List[ChurnEvent] = _ordered(tagged)

    def __len__(self) -> int:
        return len(self.events)


class TraceChurnModel:
    """Churn replayed from recorded lifecycle events.

    Accepts the JSONL format written by
    :meth:`~repro.cloudsim.events.EventLog.save_jsonl` — lines whose
    ``kind`` is ``vm_created``/``vm_resized``/``vm_deleted`` become the
    schedule (anything else is ignored), so a previous service run's
    event log replays directly.  Every lifecycle line must carry
    ``uid``; creates must carry ``mips``/``ram_mb``/``bandwidth_mbps``
    and resizes ``mips``.
    """

    def __init__(self, events: Sequence[ChurnEvent], num_steps: int) -> None:
        if num_steps < 1:
            raise ConfigurationError("num_steps must be >= 1")
        self.num_steps = num_steps
        tagged = [
            (event.step, _KIND_PRIORITY[event.kind], seq, event)
            for seq, event in enumerate(events)
        ]
        self.events: List[ChurnEvent] = _ordered(tagged)
        for event in self.events:
            if event.step >= num_steps:
                raise ConfigurationError(
                    f"trace event at step {event.step} is beyond the "
                    f"{num_steps}-step horizon"
                )

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def from_jsonl(cls, path: str, num_steps: int) -> "TraceChurnModel":
        """Parse a lifecycle trace written as JSON Lines."""
        churn_events: List[ChurnEvent] = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                event = Event.from_json(line)
                kind = _TRACE_KINDS.get(event.kind.value)
                if kind is None:
                    continue
                churn_events.append(_from_trace_event(event, kind))
        return cls(churn_events, num_steps=num_steps)


def _from_trace_event(event: Event, kind: str) -> ChurnEvent:
    payload = event.payload
    if "uid" not in payload:
        raise ConfigurationError(
            f"lifecycle event at step {event.step} lacks a uid"
        )
    uid = int(payload["uid"])  # type: ignore[arg-type]
    if kind == CREATE:
        try:
            return ChurnEvent(
                step=event.step,
                kind=kind,
                uid=uid,
                mips=float(payload["mips"]),  # type: ignore[arg-type]
                ram_mb=float(payload["ram_mb"]),  # type: ignore[arg-type]
                bandwidth_mbps=float(
                    payload["bandwidth_mbps"]  # type: ignore[arg-type]
                ),
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"vm_created for uid {uid} lacks {exc.args[0]}"
            ) from exc
    if kind == RESIZE:
        if "mips" not in payload:
            raise ConfigurationError(
                f"vm_resized for uid {uid} lacks mips"
            )
        return ChurnEvent(
            step=event.step,
            kind=kind,
            uid=uid,
            mips=float(payload["mips"]),  # type: ignore[arg-type]
        )
    return ChurnEvent(step=event.step, kind=kind, uid=uid)
