"""``repro serve`` — run the churn-driven migration service.

Examples::

    repro serve --steps 96 --pms 8 --capacity 12 --seed 0
    repro serve --steps 96 --checkpoint svc.npz --checkpoint-every 24
    repro serve --steps 96 --checkpoint svc.npz --stop-after-step 47
    repro serve --resume svc.npz
    repro serve --steps 96 --trace events.jsonl --events replay.jsonl

A run interrupted with ``--stop-after-step`` (or killed after a
``--checkpoint-every`` boundary) resumes with ``--resume`` and finishes
with results byte-identical to the uninterrupted run.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.cloudsim.events import EventLog
from repro.errors import ReproError

__all__ = ["build_parser", "run"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "long-running migration service: VM churn, event-driven "
            "stepping, checkpointed learn-as-you-go"
        ),
    )
    parser.add_argument("--steps", type=int, default=96)
    parser.add_argument("--pms", type=int, default=8)
    parser.add_argument(
        "--capacity",
        type=int,
        default=12,
        help="VM slots (the fixed basis size arrivals map onto)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--arrival-rate",
        type=float,
        default=0.6,
        help="mean Poisson VM arrivals per interval",
    )
    parser.add_argument(
        "--mean-lifetime",
        type=float,
        default=24.0,
        help="mean geometric VM holding time, in intervals",
    )
    parser.add_argument("--initial-vms", type=int, default=6)
    parser.add_argument(
        "--resize-probability", type=float, default=0.15
    )
    parser.add_argument(
        "--decide-every",
        type=int,
        default=1,
        help="scheduler decision cadence, in steps",
    )
    parser.add_argument(
        "--scan-every",
        type=int,
        default=1,
        help="utilization-scan cadence, in steps",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="JSONL",
        help="replay churn from a lifecycle trace instead of generating",
    )
    parser.add_argument(
        "--events",
        default=None,
        metavar="JSONL",
        help="write the structured event log here",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="NPZ",
        help="checkpoint file to write",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint every N completed steps (needs --checkpoint)",
    )
    parser.add_argument(
        "--stop-after-step",
        type=int,
        default=None,
        metavar="K",
        help="finish step K, checkpoint, and exit (needs --checkpoint)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="NPZ",
        help="resume a run from this service checkpoint",
    )
    return parser


def run(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro serve``; returns a process exit code."""
    args = build_parser().parse_args(
        list(argv) if argv is not None else []
    )
    try:
        if args.resume is not None:
            from repro.core.checkpoint import load_service

            service, agent = load_service(args.resume)
            checkpoint_path = args.checkpoint or args.resume
        else:
            from repro.core.agent import MeghScheduler
            from repro.service.builders import build_churn_service

            service = build_churn_service(
                seed=args.seed,
                num_pms=args.pms,
                capacity=args.capacity,
                num_steps=args.steps,
                arrival_rate=args.arrival_rate,
                mean_lifetime_steps=args.mean_lifetime,
                initial_vms=args.initial_vms,
                resize_probability=args.resize_probability,
                decide_every=args.decide_every,
                scan_every=args.scan_every,
                trace_path=args.trace,
            )
            agent = MeghScheduler.from_simulation(service, seed=args.seed)
            checkpoint_path = args.checkpoint
        event_log = EventLog() if args.events is not None else None
        result = service.run(
            agent,
            event_log=event_log,
            checkpoint_every=args.checkpoint_every,
            checkpoint_path=checkpoint_path,
            stop_after_step=args.stop_after_step,
        )
    except ReproError as error:
        print(f"repro serve: error: {error}")
        return 2
    if event_log is not None:
        event_log.save_jsonl(args.events)
        print(f"wrote {len(event_log)} events to {args.events}")
    lines: List[str] = []
    if result is None:
        lines.append(
            f"serve: stopped after step {args.stop_after_step}; "
            f"checkpoint written to {checkpoint_path} "
            f"(resume with --resume {checkpoint_path})"
        )
    else:
        lines.append(result.summary())
        lines.append(
            f"churn events      : {service.churn_events_applied} applied, "
            f"{service.num_live_vms} VMs live at end"
        )
        lines.append(
            f"slot retirements  : {agent.lstd.retirements_applied} applied, "
            f"{agent.lstd.retirements_skipped} skipped"
        )
    print("\n".join(lines))
    return 0
