"""Event-driven service loop: churn, stepping, checkpointed learning.

:class:`ServiceSimulation` is the long-running counterpart of the batch
:class:`~repro.cloudsim.simulation.Simulation`.  Instead of replaying a
fixed-fleet workload, each observation interval drains a deterministic
event queue:

1. **lifecycle events** from the churn schedule with ``step <= t`` —
   departures cancel in-flight migrations, clear the slot, retire the
   learner's block and return the slot to the
   :class:`~repro.core.basis.VmSlotPool`; arrivals claim the lowest free
   slot and join the placement queue; resizes rescale a VM's CPU;
2. **placement** of queued arrivals, first-fit in host-id order;
3. **demand**: every live VM's utilization for this step, from a
   per-VM trace that is a pure function of ``(workload_seed, uid)`` —
   regenerable bit-identically after a checkpoint restore;
4. **utilization scans** (``monitor.observe``) on scan ticks;
5. **scheduler decisions** on decide ticks, fed the cost accumulated
   since the previous tick;
6. the exact batch-driver mechanics: CPU sharing, migration advance,
   SLA accounting, step cost, host sleep, metrics — with
   ``scheduler_seconds`` pinned to 0.0 so results are wall-clock-free;
7. **checkpointing** on the configured cadence.

Bit-identity contract
---------------------
A run interrupted at step *k* and resumed from its checkpoint produces a
``SimulationResult.to_dict()`` byte-identical to the uninterrupted run.
Everything order- or state-bearing is captured: the churn cursor (the
schedule itself is regenerated from the seed), live-VM insertion order,
the migration engine's in-flight *insertion order* (it determines the
SLA accountant's first-seen record order), monitor rings, SLA windows,
per-step metrics and cost-model totals.  Demand traces and the churn
schedule are deliberately *not* stored — they are pure functions of the
seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.events import Event, EventKind, EventLog
from repro.cloudsim.metrics import MetricsCollector, StepMetrics
from repro.cloudsim.migration import MigrationEngine, MigrationOutcome
from repro.cloudsim.monitor import UtilizationMonitor
from repro.cloudsim.simulation import Simulation, SimulationResult
from repro.cloudsim.sla import SlaAccountant
from repro.config import SimulationConfig
from repro.core.basis import VmSlotPool
from repro.costs.model import OperationCostModel
from repro.errors import ConfigurationError, SchedulerError
from repro.mdp.interfaces import Observation, Scheduler
from repro.mdp.state import observe_state
from repro.service.churn import (
    CREATE,
    DELETE,
    RESIZE,
    ChurnEvent,
    ChurnModel,
    TraceChurnModel,
)

__all__ = ["ServiceSimulation"]

#: Demand-trace shape: an AR(1)-style random walk in utilization space.
_TRACE_BASE_RANGE = (0.15, 0.75)
_TRACE_SIGMA = 0.08
_TRACE_LO = 0.02
_TRACE_HI = 1.0

_EMPTY_OUTCOME = MigrationOutcome(
    started=(), rejected=(), completed=(), downtime_seconds={}
)


@dataclass
class _LiveVm:
    """Bookkeeping for one live VM: identity, slot, capacities, demand."""

    uid: int
    slot: int
    created_step: int
    mips: float
    ram_mb: float
    bandwidth_mbps: float
    trace: np.ndarray


class _Runtime:
    """Mutable per-run state; rebuilt fresh or from a checkpoint."""

    def __init__(
        self,
        steps: int,
        engine: MigrationEngine,
        accountant: SlaAccountant,
        cost_model: OperationCostModel,
        collector: MetricsCollector,
        monitor: UtilizationMonitor,
        pool: VmSlotPool,
    ) -> None:
        self.steps = steps
        self.engine = engine
        self.accountant = accountant
        self.cost_model = cost_model
        self.collector = collector
        self.monitor = monitor
        self.pool = pool
        self.live: Dict[int, _LiveVm] = {}
        self.pending: List[int] = []
        self.cursor = 0
        self.cost_since_decide = 0.0
        self.start_step = 0


class ServiceSimulation:
    """Binds a churn schedule to a datacenter of reusable VM slots.

    Args:
        datacenter: a struct-of-arrays :class:`Datacenter` whose VM
            population is ``capacity`` *placeholder* slots (inactive,
            unplaced); arrivals bind them and departures clear them.
        churn: a :class:`ChurnModel` or :class:`TraceChurnModel` whose
            horizon covers the run.
        config: simulation parameters (interval, costs, thresholds).
        decide_every: scheduler decision cadence, in steps.
        scan_every: utilization-scan (monitor) cadence, in steps.
        workload_seed: seed of the per-VM demand traces (default:
            ``config.seed``).
        monitor_history: samples kept per entity by the monitor.
        spec: registry rebuild info (``{"builder", "seed", "params"}``)
            — attached by the builder so a checkpoint can reconstruct
            the service; ``None`` for hand-built instances.
    """

    def __init__(
        self,
        datacenter: Datacenter,
        churn: Union[ChurnModel, TraceChurnModel],
        config: Optional[SimulationConfig] = None,
        decide_every: int = 1,
        scan_every: int = 1,
        workload_seed: Optional[int] = None,
        monitor_history: int = 12,
        spec: Optional[Dict[str, Any]] = None,
    ) -> None:
        if getattr(datacenter, "arrays", None) is None:
            raise ConfigurationError(
                "service mode requires the struct-of-arrays Datacenter"
            )
        if decide_every < 1 or scan_every < 1:
            raise ConfigurationError(
                "decide_every and scan_every must be >= 1"
            )
        self.datacenter = datacenter
        self.churn = churn
        self.config = config or SimulationConfig()
        if churn.num_steps < self.config.num_steps:
            raise ConfigurationError(
                f"churn horizon covers {churn.num_steps} steps but the "
                f"run needs {self.config.num_steps}"
            )
        self.decide_every = decide_every
        self.scan_every = scan_every
        self.workload_seed = (
            self.config.seed if workload_seed is None else workload_seed
        )
        self.monitor_history = monitor_history
        self.spec = spec
        #: Marks service mode for ``MeghScheduler.from_simulation`` —
        #: the learner enables operator tracking so slots can retire.
        self.dynamic_slots = True
        self.capacity = datacenter.num_vms
        self._runtime: Optional[_Runtime] = None
        self._resume_state: Optional[Dict[str, Any]] = None
        self._resume_rings: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return every slot to the pristine placeholder state."""
        datacenter = self.datacenter
        for vm in datacenter.vms:
            if datacenter.is_placed(vm.vm_id):
                datacenter.remove(vm.vm_id)
        for pm in datacenter.pms:
            pm.wake()
        for slot in range(self.capacity):
            vm = datacenter.vm(slot)
            vm.set_active(False)
            vm.mips = 1.0
            vm.ram_mb = 1.0
            vm.bandwidth_mbps = 1.0
            datacenter.arrays.clear_vm_slot(slot)
        self._runtime = None

    def _install_resume(
        self, state: Dict[str, Any], rings: Dict[str, np.ndarray]
    ) -> None:
        """Arm the next :meth:`run` to continue from checkpoint state."""
        self._resume_state = state
        self._resume_rings = dict(rings)

    # ------------------------------------------------------------------
    # Demand traces
    # ------------------------------------------------------------------
    def _demand_trace(
        self, uid: int, created_step: int, total_steps: int
    ) -> np.ndarray:
        """The VM's utilization trace, a pure function of its identity.

        Seeding with ``(workload_seed, uid)`` makes the trace
        independent of creation order and regenerable bit-identically
        after a checkpoint restore.
        """
        rng = np.random.default_rng((self.workload_seed, uid))  # meghlint: ignore[MEGH005] -- seeded by the constructor-plumbed workload_seed; (seed, uid) keying is the restore bit-identity contract
        length = max(1, total_steps - created_step)
        level = float(rng.uniform(*_TRACE_BASE_RANGE))
        deltas = rng.normal(0.0, _TRACE_SIGMA, size=length)
        trace = np.empty(length, dtype=np.float64)
        for index in range(length):
            level = min(_TRACE_HI, max(_TRACE_LO, level + deltas[index]))
            trace[index] = level
        return trace

    # ------------------------------------------------------------------
    # Runtime construction
    # ------------------------------------------------------------------
    def _build_engine(self) -> MigrationEngine:
        dc_config = self.config.datacenter
        return MigrationEngine(
            self.datacenter,
            overhead_fraction=dc_config.migration_overhead_fraction,
            alpha=dc_config.migration_cpu_threshold,
        )

    def _bandwidth_threshold(self) -> Optional[float]:
        dc_config = self.config.datacenter
        if dc_config.bandwidth_aware:
            return dc_config.bandwidth_overload_threshold
        return None

    def _fresh_runtime(self, steps: int) -> _Runtime:
        accountant = SlaAccountant(
            beta=self.config.datacenter.overload_threshold,
            window_seconds=self.config.costs.sla_billing_window_seconds,
            interval_seconds=self.config.interval_seconds,
            bandwidth_threshold=self._bandwidth_threshold(),
        )
        return _Runtime(
            steps=steps,
            engine=self._build_engine(),
            accountant=accountant,
            cost_model=OperationCostModel(self.config.costs),
            collector=MetricsCollector(),
            monitor=UtilizationMonitor(history_length=self.monitor_history),
            pool=VmSlotPool(self.capacity),
        )

    def _restored_runtime(
        self,
        state: Dict[str, Any],
        rings: Dict[str, np.ndarray],
        steps: int,
        event_log: Optional[EventLog],
    ) -> _Runtime:
        from repro.engine.serialize import _sla_from_dict, _step_from_dict

        if int(state["total_steps"]) != steps:
            raise ConfigurationError(
                f"checkpoint was taken on a {state['total_steps']}-step "
                f"run; cannot resume it for {steps} steps"
            )
        datacenter = self.datacenter
        arrays = datacenter.arrays
        runtime = self._fresh_runtime(steps)

        # Live VMs, in their original insertion order; traces regenerate
        # from (workload_seed, uid).
        slot_of: Dict[int, int] = {}
        placements: List[tuple[int, int]] = []
        for entry in state["live"]:
            uid, slot, created_step = (
                int(entry[0]),
                int(entry[1]),
                int(entry[2]),
            )
            mips, ram_mb, bandwidth = (
                float(entry[3]),
                float(entry[4]),
                float(entry[5]),
            )
            host = int(entry[6])
            slot_of[uid] = slot
            vm = datacenter.vm(slot)
            vm.mips = mips
            vm.ram_mb = ram_mb
            vm.bandwidth_mbps = bandwidth
            arrays.bind_vm_slot(slot, mips, ram_mb, bandwidth)
            runtime.live[uid] = _LiveVm(
                uid=uid,
                slot=slot,
                created_step=created_step,
                mips=mips,
                ram_mb=ram_mb,
                bandwidth_mbps=bandwidth,
                trace=self._demand_trace(uid, created_step, steps),
            )
            if host >= 0:
                placements.append((slot, host))
        runtime.pool = VmSlotPool.restore(self.capacity, slot_of)
        for slot, host in placements:
            datacenter.place(slot, host)
        runtime.pending = [int(uid) for uid in state["pending"]]

        # In-flight transfers must be re-registered in insertion order:
        # the engine's iteration order feeds the SLA accountant's
        # first-seen record order.
        for flight in state["in_flight"]:
            runtime.engine.restore_flight(
                vm_id=int(flight[0]),
                source_pm_id=int(flight[1]),
                dest_pm_id=int(flight[2]),
                remaining_seconds=float(flight[3]),
                total_seconds=float(flight[4]),
                final_downtime_seconds=float(flight[5]),
            )
        runtime.engine.total_migrations = int(
            state["engine"]["total_migrations"]
        )
        runtime.engine.total_gb_hops = float(
            state["engine"]["total_gb_hops"]
        )

        runtime.accountant = _sla_from_dict(state["sla"])
        collector = MetricsCollector()
        for step_data in state["metrics"]:
            collector.record(_step_from_dict(step_data))
        runtime.collector = collector

        monitor_state = state["monitor"]
        monitor = UtilizationMonitor(
            history_length=int(monitor_state["length"])
        )
        if monitor_state["has_rings"]:
            monitor._vm_ring = rings["service_vm_ring"].copy()
            monitor._host_ring = rings["service_host_ring"].copy()
            monitor._ring_pos = int(monitor_state["pos"])
            monitor._ring_filled = int(monitor_state["filled"])
        monitor._steps_observed = int(monitor_state["steps_observed"])
        runtime.monitor = monitor

        energy = state["energy"]
        runtime.cost_model.energy._total_joules = float(energy["joules"])
        runtime.cost_model.energy._total_usd = float(energy["usd"])
        runtime.cost_model.sla._total_usd = float(state["sla_cost_usd"])

        for pm_id in state["pm_asleep"]:
            datacenter.pm(int(pm_id)).sleep()

        if event_log is not None and state.get("events"):
            for line in state["events"]:
                event_log._events.append(Event.from_json(line))

        runtime.cursor = int(state["churn_cursor"])
        runtime.cost_since_decide = float(state["cost_since_decide"])
        runtime.start_step = int(state["next_step"])
        return runtime

    # ------------------------------------------------------------------
    # Checkpoint snapshot
    # ------------------------------------------------------------------
    def snapshot(
        self, next_step: int, event_log: Optional[EventLog] = None
    ) -> tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """The run's full restart state as ``(json_state, arrays)``."""
        from repro.engine.serialize import _sla_to_dict, _step_to_dict

        runtime = self._runtime
        if runtime is None:
            raise ConfigurationError("no run in progress to snapshot")
        arrays = self.datacenter.arrays
        monitor = runtime.monitor
        has_rings = monitor._vm_ring is not None
        state: Dict[str, Any] = {
            "format": 1,
            "spec": self.spec,
            "next_step": next_step,
            "total_steps": runtime.steps,
            "decide_every": self.decide_every,
            "scan_every": self.scan_every,
            "workload_seed": self.workload_seed,
            "churn_cursor": runtime.cursor,
            "live": [
                [
                    record.uid,
                    record.slot,
                    record.created_step,
                    record.mips,
                    record.ram_mb,
                    record.bandwidth_mbps,
                    int(arrays.host_of[record.slot]),
                ]
                for record in runtime.live.values()
            ],
            "pending": list(runtime.pending),
            "pm_asleep": [
                int(pm_id) for pm_id in np.flatnonzero(arrays.pm_asleep)
            ],
            "in_flight": [
                [
                    flight.vm_id,
                    flight.source_pm_id,
                    flight.dest_pm_id,
                    flight.remaining_seconds,
                    flight.total_seconds,
                    flight.final_downtime_seconds,
                ]
                for flight in runtime.engine._in_flight.values()
            ],
            "engine": {
                "total_migrations": runtime.engine.total_migrations,
                "total_gb_hops": runtime.engine.total_gb_hops,
            },
            "monitor": {
                "length": monitor.history_length,
                "pos": int(monitor._ring_pos),
                "filled": int(monitor._ring_filled),
                "steps_observed": int(monitor._steps_observed),
                "has_rings": has_rings,
            },
            "sla": _sla_to_dict(runtime.accountant),
            "metrics": [
                _step_to_dict(step) for step in runtime.collector.steps
            ],
            "cost_since_decide": runtime.cost_since_decide,
            "energy": {
                "joules": runtime.cost_model.energy._total_joules,
                "usd": runtime.cost_model.energy._total_usd,
            },
            "sla_cost_usd": runtime.cost_model.sla._total_usd,
            "events": (
                [event.to_json() for event in event_log]
                if event_log is not None
                else None
            ),
        }
        ring_arrays: Dict[str, np.ndarray] = {}
        if has_rings:
            ring_arrays["service_vm_ring"] = monitor._vm_ring
            ring_arrays["service_host_ring"] = monitor._host_ring
        return state, ring_arrays

    # ------------------------------------------------------------------
    # Per-step stages
    # ------------------------------------------------------------------
    def _apply_churn(
        self,
        runtime: _Runtime,
        step: int,
        scheduler: Scheduler,
        event_log: Optional[EventLog],
    ) -> None:
        """Stage 1: drain lifecycle events due at or before ``step``."""
        events = self.churn.events
        while (
            runtime.cursor < len(events)
            and events[runtime.cursor].step <= step
        ):
            event = events[runtime.cursor]
            runtime.cursor += 1
            if event.kind == DELETE:
                self._apply_delete(runtime, step, event, scheduler, event_log)
            elif event.kind == RESIZE:
                self._apply_resize(runtime, step, event, event_log)
            elif event.kind == CREATE:
                self._apply_create(runtime, step, event, event_log)

    def _apply_create(
        self,
        runtime: _Runtime,
        step: int,
        event: ChurnEvent,
        event_log: Optional[EventLog],
    ) -> None:
        slot = runtime.pool.allocate(event.uid)
        if slot is None:
            if event_log is not None:
                event_log.emit(
                    step,
                    EventKind.CUSTOM,
                    reason="vm_rejected_pool_full",
                    uid=event.uid,
                )
            return
        vm = self.datacenter.vm(slot)
        vm.mips = event.mips
        vm.ram_mb = event.ram_mb
        vm.bandwidth_mbps = event.bandwidth_mbps
        self.datacenter.arrays.bind_vm_slot(
            slot, event.mips, event.ram_mb, event.bandwidth_mbps
        )
        runtime.live[event.uid] = _LiveVm(
            uid=event.uid,
            slot=slot,
            created_step=step,
            mips=event.mips,
            ram_mb=event.ram_mb,
            bandwidth_mbps=event.bandwidth_mbps,
            trace=self._demand_trace(event.uid, step, runtime.steps),
        )
        runtime.pending.append(event.uid)
        if event_log is not None:
            event_log.emit(
                step,
                EventKind.VM_CREATED,
                uid=event.uid,
                vm_id=slot,
                mips=event.mips,
                ram_mb=event.ram_mb,
                bandwidth_mbps=event.bandwidth_mbps,
            )

    def _apply_resize(
        self,
        runtime: _Runtime,
        step: int,
        event: ChurnEvent,
        event_log: Optional[EventLog],
    ) -> None:
        record = runtime.live.get(event.uid)
        if record is None:
            return
        record.mips = event.mips
        vm = self.datacenter.vm(record.slot)
        vm.mips = event.mips
        arrays = self.datacenter.arrays
        arrays.vm_mips[record.slot] = event.mips
        arrays.mark_demand_dirty()
        arrays.mark_delivered_dirty()
        if event_log is not None:
            event_log.emit(
                step,
                EventKind.VM_RESIZED,
                uid=event.uid,
                vm_id=record.slot,
                mips=event.mips,
            )

    def _apply_delete(
        self,
        runtime: _Runtime,
        step: int,
        event: ChurnEvent,
        scheduler: Scheduler,
        event_log: Optional[EventLog],
    ) -> None:
        record = runtime.live.pop(event.uid, None)
        if record is None:
            return
        slot = record.slot
        datacenter = self.datacenter
        runtime.engine.cancel(slot)
        if datacenter.is_placed(slot):
            datacenter.remove(slot)
        vm = datacenter.vm(slot)
        vm.set_active(False)
        vm.mips = 1.0
        vm.ram_mb = 1.0
        vm.bandwidth_mbps = 1.0
        datacenter.arrays.clear_vm_slot(slot)
        # The departed occupant's billing window must not keep charging
        # against the (now empty, later reused) slot.
        runtime.accountant.reset_vm_window(slot)
        retire = getattr(scheduler, "retire_vm", None)
        if retire is not None:
            retire(slot)
        runtime.pool.release(event.uid)
        if event.uid in runtime.pending:
            runtime.pending.remove(event.uid)
        if event_log is not None:
            event_log.emit(
                step, EventKind.VM_DELETED, uid=event.uid, vm_id=slot
            )

    def _place_pending(self, runtime: _Runtime) -> None:
        """Stage 2: first-fit queued arrivals, FIFO, host-id order."""
        arrays = self.datacenter.arrays
        still_pending: List[int] = []
        for uid in runtime.pending:
            slot = runtime.live[uid].slot
            # Cached derived vector: recomputed only when a placement in
            # this loop actually dirtied the RAM aggregate.
            ram_free = arrays.pm_ram_free_mb()
            candidates = np.flatnonzero(
                self.datacenter.vm(slot).ram_mb <= ram_free
            )
            if candidates.size == 0:
                still_pending.append(uid)
                continue
            self.datacenter.place(slot, int(candidates[0]))
        runtime.pending = still_pending

    def _apply_demand(self, runtime: _Runtime, step: int) -> None:
        """Stage 3: every live VM's demand for this interval."""
        arrays = self.datacenter.arrays
        for uid in runtime.pool.live_uids():
            record = runtime.live[uid]
            arrays.vm_demand[record.slot] = record.trace[
                step - record.created_step
            ]
        arrays.mark_demand_dirty()

    def _mean_active_host_utilization(self) -> float:
        arrays = self.datacenter.arrays
        active_ids = np.flatnonzero(arrays.active_pm_mask())
        if active_ids.size == 0:
            return 0.0
        capped = np.minimum(1.0, arrays.pm_demand_utilization()[active_ids])
        # Left-to-right total in host-id order (the batch driver's
        # accumulation, bit for bit).
        return float(np.cumsum(capped)[-1]) / active_ids.size

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(
        self,
        scheduler: Scheduler,
        num_steps: Optional[int] = None,
        event_log: Optional[EventLog] = None,
        validate_every_step: Optional[bool] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        stop_after_step: Optional[int] = None,
    ) -> Optional[SimulationResult]:
        """Run (or resume) the service for ``num_steps`` intervals.

        ``checkpoint_every``/``checkpoint_path`` write a restartable
        checkpoint every N completed steps; ``stop_after_step=k``
        finishes step *k*, writes a final checkpoint and returns
        ``None`` (the interrupted-run half of the bit-identity
        contract).  Checkpointing requires a learner-bearing scheduler
        (one exposing ``lstd``, i.e. :class:`MeghScheduler`).

        A resumed run (armed by
        :func:`repro.core.checkpoint.load_service`) continues from the
        stored step; pass the same horizon (or none) and, to keep
        accumulating the event log, a fresh ``event_log`` — the stored
        lines are replayed into it first.
        """
        if validate_every_step is None:
            from repro.core.contracts import contracts_enabled

            validate_every_step = contracts_enabled()
        wants_checkpoints = (
            checkpoint_every is not None or stop_after_step is not None
        )
        if wants_checkpoints:
            if checkpoint_path is None:
                raise ConfigurationError(
                    "checkpoint_every/stop_after_step require "
                    "checkpoint_path"
                )
            if not hasattr(scheduler, "lstd"):
                raise ConfigurationError(
                    "checkpointing requires a learner-bearing scheduler"
                )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")

        resume_state = self._resume_state
        resume_rings = self._resume_rings
        self._resume_state = None
        self._resume_rings = {}

        if resume_state is not None:
            steps = (
                int(resume_state["total_steps"])
                if num_steps is None
                else num_steps
            )
        else:
            steps = (
                self.config.num_steps if num_steps is None else num_steps
            )
        if steps > self.churn.num_steps:
            raise ConfigurationError(
                f"requested {steps} steps but the churn schedule covers "
                f"only {self.churn.num_steps}"
            )

        dc_config = self.config.datacenter
        interval = self.config.interval_seconds
        self.datacenter.migration_overhead_fraction = (
            dc_config.migration_overhead_fraction
        )
        bandwidth_threshold = self._bandwidth_threshold()

        self.reset()
        if resume_state is not None:
            runtime = self._restored_runtime(
                resume_state, resume_rings, steps, event_log
            )
        else:
            runtime = self._fresh_runtime(steps)
        self._runtime = runtime

        for step in range(runtime.start_step, steps):
            self._apply_churn(runtime, step, scheduler, event_log)
            self._place_pending(runtime)
            self._apply_demand(runtime, step)
            if step % self.scan_every == 0:
                runtime.monitor.observe(self.datacenter)
            if step % self.decide_every == 0:
                observation = Observation(
                    step=step,
                    state=observe_state(self.datacenter, step),
                    datacenter=self.datacenter,
                    monitor=runtime.monitor,
                    last_step_cost_usd=runtime.cost_since_decide,
                    interval_seconds=interval,
                )
                migrations = scheduler.decide(observation)
                if migrations is None:
                    raise SchedulerError(
                        f"{scheduler.name} returned None instead of a list"
                    )
                runtime.cost_since_decide = 0.0
                outcome = runtime.engine.start(migrations)
            else:
                outcome = _EMPTY_OUTCOME
            self.datacenter.share_cpu()
            advance = runtime.engine.advance(interval)
            runtime.accountant.observe_step(
                self.datacenter, interval, advance.downtime_seconds
            )
            step_cost = runtime.cost_model.step_cost(
                self.datacenter, runtime.accountant, interval
            )
            active_hosts = self.datacenter.num_active_hosts()
            slept = (
                self.datacenter.sleep_idle_hosts()
                if dc_config.sleep_idle_hosts
                else []
            )
            overloaded_ids = self.datacenter.overloaded_pm_ids(
                dc_config.overload_threshold, bandwidth_threshold
            )
            if event_log is not None:
                Simulation._emit_events(
                    event_log, step, outcome, advance, overloaded_ids, slept
                )
            if validate_every_step:
                from repro.cloudsim.validation import check_invariants

                check_invariants(self.datacenter)
            runtime.collector.record(
                StepMetrics(
                    step=step,
                    energy_cost_usd=step_cost.energy_usd,
                    sla_cost_usd=step_cost.sla_usd,
                    num_migrations_started=len(outcome.started),
                    num_migrations_rejected=len(outcome.rejected),
                    num_active_hosts=active_hosts,
                    # Wall-clock-free by design: service results must be
                    # byte-comparable across runs and resumes.
                    scheduler_seconds=0.0,
                    mean_host_utilization=(
                        self._mean_active_host_utilization()
                    ),
                    num_overloaded_hosts=len(overloaded_ids),
                )
            )
            runtime.cost_since_decide += step_cost.total_usd

            at_boundary = (
                checkpoint_every is not None
                and (step + 1) % checkpoint_every == 0
            )
            stopping = stop_after_step is not None and step >= stop_after_step
            if (at_boundary and step + 1 < steps) or stopping:
                self._write_checkpoint(
                    checkpoint_path, scheduler, step + 1, event_log
                )
            if stopping:
                return None

        return SimulationResult(
            scheduler_name=scheduler.name,
            metrics=runtime.collector,
            sla=runtime.accountant,
            config=self.config,
            num_pms=self.datacenter.num_pms,
            num_vms=self.datacenter.num_vms,
        )

    def _write_checkpoint(
        self,
        path: Optional[str],
        scheduler: Scheduler,
        next_step: int,
        event_log: Optional[EventLog],
    ) -> None:
        from repro.core.checkpoint import save_service

        assert path is not None  # guarded at run() entry
        state, rings = self.snapshot(next_step, event_log)
        save_service(scheduler, path, state, rings)

    # ------------------------------------------------------------------
    # Introspection (post-run, for the CLI and tests)
    # ------------------------------------------------------------------
    @property
    def num_live_vms(self) -> int:
        if self._runtime is None:
            return 0
        return self._runtime.pool.num_live

    @property
    def churn_events_applied(self) -> int:
        if self._runtime is None:
            return 0
        return self._runtime.cursor
