"""Workload traces: synthetic PlanetLab / Google Cluster generators and loaders."""

from repro.workloads.base import (
    ArrayWorkload,
    Workload,
    concat_steps,
    stack_vms,
)
from repro.workloads.planetlab import (
    PlanetLabWorkloadConfig,
    generate_planetlab_workload,
    load_planetlab_directory,
)
from repro.workloads.google_trace import (
    GoogleTraceInterval,
    load_google_task_events,
    parse_task_events,
)
from repro.workloads.google import (
    GoogleClusterWorkloadConfig,
    GoogleTask,
    generate_google_workload,
)
from repro.workloads.synthetic import (
    constant_workload,
    periodic_workload,
    random_walk_workload,
    spike_workload,
)
from repro.workloads.bandwidth import (
    BandwidthWorkload,
    derive_bandwidth_workload,
)
from repro.workloads.queueing import (
    QueueingWorkloadConfig,
    expected_busy_fraction,
    generate_queueing_workload,
)
from repro.workloads.traces import (
    export_task_events,
    load_task_events,
    load_workload_csv,
    load_workload_npz,
    read_task_events,
    save_workload_csv,
    save_workload_npz,
)
from repro.workloads.statistics import (
    WorkloadStatistics,
    cullen_frey_coordinates,
    duration_histogram,
    summarize_workload,
)

__all__ = [
    "Workload",
    "ArrayWorkload",
    "concat_steps",
    "stack_vms",
    "PlanetLabWorkloadConfig",
    "generate_planetlab_workload",
    "load_planetlab_directory",
    "GoogleClusterWorkloadConfig",
    "GoogleTraceInterval",
    "load_google_task_events",
    "parse_task_events",
    "GoogleTask",
    "generate_google_workload",
    "constant_workload",
    "periodic_workload",
    "random_walk_workload",
    "spike_workload",
    "BandwidthWorkload",
    "derive_bandwidth_workload",
    "QueueingWorkloadConfig",
    "generate_queueing_workload",
    "expected_busy_fraction",
    "save_workload_npz",
    "load_workload_npz",
    "save_workload_csv",
    "load_workload_csv",
    "export_task_events",
    "read_task_events",
    "load_task_events",
    "WorkloadStatistics",
    "summarize_workload",
    "cullen_frey_coordinates",
    "duration_histogram",
]
