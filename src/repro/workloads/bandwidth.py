"""Bandwidth-dimension workloads (multi-resource extension).

Section 3.1 acknowledges bandwidth as a first-class resource and claims
cost models for it "can be added as additional modules ... without
modifying Megh algorithmically"; Section 7 repeats that network sharing
fits seamlessly.  This module adds the data side of that claim: a
workload wrapper that carries a per-VM *network* utilization stream next
to the CPU one.  The simulator (see ``DatacenterConfig.bandwidth_aware``)
then treats network saturation on a host as overload, and every
scheduler sees the consequences through the ordinary cost signal.

``derive_bandwidth_workload`` synthesizes the network stream as a noisy
affine function of the CPU stream — the empirical pattern for
request-serving workloads (traffic moves with compute).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.workloads.base import ArrayWorkload, Workload


class BandwidthWorkload:
    """A CPU workload paired with a bandwidth-utilization matrix.

    Delegates the :class:`~repro.workloads.base.Workload` protocol to the
    CPU trace and adds :meth:`bandwidth_utilization`, which the
    simulation driver feeds into the data center when bandwidth
    awareness is on.
    """

    def __init__(
        self, cpu: ArrayWorkload, bandwidth: np.ndarray, name: str | None = None
    ) -> None:
        matrix = np.asarray(bandwidth, dtype=float)
        if matrix.shape != (cpu.num_vms, cpu.num_steps):
            raise TraceError(
                "bandwidth matrix must match the CPU workload's shape"
            )
        if np.any(matrix < 0.0) or np.any(matrix > 1.0):
            raise TraceError("bandwidth utilizations must lie in [0, 1]")
        self._cpu = cpu
        self._bandwidth = matrix
        self.name = name or f"{cpu.name}+bandwidth"

    @property
    def num_vms(self) -> int:
        return self._cpu.num_vms

    @property
    def num_steps(self) -> int:
        return self._cpu.num_steps

    @property
    def cpu(self) -> ArrayWorkload:
        return self._cpu

    @property
    def bandwidth_matrix(self) -> np.ndarray:
        view = self._bandwidth.view()
        view.flags.writeable = False
        return view

    def utilization(self, vm_id: int, step: int) -> float:
        return self._cpu.utilization(vm_id, step)

    def is_active(self, vm_id: int, step: int) -> bool:
        return self._cpu.is_active(vm_id, step)

    def bandwidth_utilization(self, vm_id: int, step: int) -> float:
        """Demanded fraction of the VM's bandwidth allocation."""
        if not self._cpu.is_active(vm_id, step):
            return 0.0
        return float(self._bandwidth[vm_id, step])

    def step_slice(
        self, step: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Batched per-step view with the bandwidth column attached."""
        active, utilization, _ = self._cpu.step_slice(step)
        bandwidth = self._bandwidth[:, step].view()
        bandwidth.flags.writeable = False
        return active, utilization, bandwidth


def derive_bandwidth_workload(
    cpu: Workload,
    correlation: float = 0.7,
    base_level: float = 0.05,
    noise_std: float = 0.05,
    seed: int = 0,
) -> BandwidthWorkload:
    """Synthesize a bandwidth stream correlated with the CPU stream.

    ``bw = clip(base + correlation * cpu + noise, 0, 1)`` — request-bound
    services move traffic with compute; ``correlation = 0`` gives
    CPU-independent traffic.
    """
    if not 0.0 <= correlation <= 1.0:
        raise ConfigurationError("correlation must be in [0, 1]")
    if not 0.0 <= base_level <= 1.0:
        raise ConfigurationError("base level must be in [0, 1]")
    if noise_std < 0.0:
        raise ConfigurationError("noise std must be >= 0")
    if not isinstance(cpu, ArrayWorkload):
        matrix = np.array(
            [
                [cpu.utilization(v, s) for s in range(cpu.num_steps)]
                for v in range(cpu.num_vms)
            ]
        )
        active = np.array(
            [
                [cpu.is_active(v, s) for s in range(cpu.num_steps)]
                for v in range(cpu.num_vms)
            ]
        )
        cpu = ArrayWorkload(matrix, active, name="adapted")
    rng = np.random.default_rng(seed)
    cpu_matrix = np.asarray(cpu.matrix)
    noise = rng.normal(0.0, noise_std, size=cpu_matrix.shape)
    bandwidth = np.clip(
        base_level + correlation * cpu_matrix + noise, 0.0, 1.0
    )
    bandwidth = np.where(np.asarray(cpu.activity), bandwidth, 0.0)
    return BandwidthWorkload(cpu, bandwidth)
