"""Workload-trace interfaces.

A workload is a matrix of demanded CPU-utilization fractions indexed by
``(vm_id, step)`` plus an activity mask (Google-style traces have VMs that
sit idle between tasks).  Both the simulator and the workload-statistics
helpers consume this interface only, so synthetic generators and real-trace
loaders are interchangeable.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import TraceError


@runtime_checkable
class Workload(Protocol):
    """Read-only view of a CPU-utilization trace for a fleet of VMs.

    Implementations may additionally provide
    ``step_slice(step) -> (active, utilization, bandwidth)`` returning
    whole per-step columns (see :meth:`ArrayWorkload.step_slice`); the
    simulation driver uses it for batched workload application and falls
    back to the per-VM calls when absent.
    """

    @property
    def num_vms(self) -> int:
        ...

    @property
    def num_steps(self) -> int:
        ...

    def utilization(self, vm_id: int, step: int) -> float:
        """Demanded CPU fraction of VM ``vm_id`` at step ``step``."""
        ...

    def is_active(self, vm_id: int, step: int) -> bool:
        """Whether the VM has a running workload at the step."""
        ...


class ArrayWorkload:
    """Workload backed by a dense ``(num_vms, num_steps)`` array.

    Args:
        utilizations: demanded utilization fractions in ``[0, 1]``.
        active: optional boolean activity mask of the same shape; defaults
            to always-active.
        name: label used in reports.
    """

    def __init__(
        self,
        utilizations: np.ndarray,
        active: np.ndarray | None = None,
        name: str = "workload",
    ) -> None:
        matrix = np.asarray(utilizations, dtype=float)
        if matrix.ndim != 2:
            raise TraceError("utilizations must be a 2-D (vms, steps) array")
        if matrix.size == 0:
            raise TraceError("workload must contain at least one sample")
        if np.any(matrix < 0.0) or np.any(matrix > 1.0):
            raise TraceError("utilizations must lie in [0, 1]")
        self._matrix = matrix
        if active is None:
            self._active = np.ones(matrix.shape, dtype=bool)
        else:
            mask = np.asarray(active, dtype=bool)
            if mask.shape != matrix.shape:
                raise TraceError("activity mask must match utilizations shape")
            self._active = mask
        self.name = name

    @property
    def num_vms(self) -> int:
        return self._matrix.shape[0]

    @property
    def num_steps(self) -> int:
        return self._matrix.shape[1]

    @property
    def matrix(self) -> np.ndarray:
        """The underlying (read-only) utilization matrix."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    @property
    def activity(self) -> np.ndarray:
        """The underlying (read-only) activity mask."""
        view = self._active.view()
        view.flags.writeable = False
        return view

    def _check(self, vm_id: int, step: int) -> None:
        if not 0 <= vm_id < self.num_vms:
            raise TraceError(f"vm_id {vm_id} out of range [0, {self.num_vms})")
        if not 0 <= step < self.num_steps:
            raise TraceError(f"step {step} out of range [0, {self.num_steps})")

    def utilization(self, vm_id: int, step: int) -> float:
        self._check(vm_id, step)
        if not self._active[vm_id, step]:
            return 0.0
        return float(self._matrix[vm_id, step])

    def is_active(self, vm_id: int, step: int) -> bool:
        self._check(vm_id, step)
        return bool(self._active[vm_id, step])

    def step_slice(
        self, step: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Batched per-step view: ``(active, utilization, bandwidth)``.

        ``active`` and ``utilization`` are read-only length-``num_vms``
        columns (the same values the per-VM ``is_active``/``utilization``
        calls return, except that ``utilization`` is not zero-masked —
        consumers apply the activity mask); ``bandwidth`` is ``None`` for
        CPU-only workloads.  The simulation driver uses this to apply a
        whole interval's workload in one vector pass.
        """
        if not 0 <= step < self.num_steps:
            raise TraceError(f"step {step} out of range [0, {self.num_steps})")
        active = self._active[:, step].view()
        active.flags.writeable = False
        utilization = self._matrix[:, step].view()
        utilization.flags.writeable = False
        return active, utilization, None

    def slice_vms(self, vm_ids: Sequence[int]) -> "ArrayWorkload":
        """Restrict the workload to a subset of VMs (re-indexed densely)."""
        ids = list(vm_ids)
        if not ids:
            raise TraceError("cannot slice to zero VMs")
        return ArrayWorkload(
            self._matrix[ids, :],
            self._active[ids, :],
            name=f"{self.name}[{len(ids)} vms]",
        )

    def slice_steps(self, start: int, stop: int) -> "ArrayWorkload":
        """Restrict the workload to steps ``[start, stop)``."""
        if not 0 <= start < stop <= self.num_steps:
            raise TraceError("invalid step slice")
        return ArrayWorkload(
            self._matrix[:, start:stop],
            self._active[:, start:stop],
            name=f"{self.name}[{start}:{stop}]",
        )

    def repeat(self, times: int) -> "ArrayWorkload":
        """Tile the trace ``times`` times along the step axis."""
        if times < 1:
            raise TraceError("times must be >= 1")
        return ArrayWorkload(
            np.tile(self._matrix, (1, times)),
            np.tile(self._active, (1, times)),
            name=f"{self.name}x{times}",
        )


def concat_steps(workloads: Sequence["ArrayWorkload"]) -> "ArrayWorkload":
    """Chain workloads in time (same VM set, consecutive phases)."""
    if not workloads:
        raise TraceError("need at least one workload to concatenate")
    vms = workloads[0].num_vms
    for workload in workloads:
        if workload.num_vms != vms:
            raise TraceError("all workloads must cover the same VMs")
    return ArrayWorkload(
        np.concatenate([np.asarray(w.matrix) for w in workloads], axis=1),
        np.concatenate([np.asarray(w.activity) for w in workloads], axis=1),
        name="+".join(w.name for w in workloads),
    )


def stack_vms(workloads: Sequence["ArrayWorkload"]) -> "ArrayWorkload":
    """Merge workloads into one fleet (disjoint VM sets, same steps)."""
    if not workloads:
        raise TraceError("need at least one workload to stack")
    steps = workloads[0].num_steps
    for workload in workloads:
        if workload.num_steps != steps:
            raise TraceError("all workloads must cover the same steps")
    return ArrayWorkload(
        np.concatenate([np.asarray(w.matrix) for w in workloads], axis=0),
        np.concatenate([np.asarray(w.activity) for w in workloads], axis=0),
        name="|".join(w.name for w in workloads),
    )
