"""Google-Cluster-style workload: task-based synthetic generator.

The paper samples the Google cluster trace into 2000 VMs, each running one
task to completion and then switching to the next.  Figure 1(b) shows the
defining property: task durations span 10^1 to 10^6 seconds and follow no
standard parametric distribution.  Average load is much lower and more
intermittent than PlanetLab.

The generator draws task durations log-uniformly over that range (with a
mild mixture bump at short durations, mimicking the figure's mass near
10^2–10^3 s), staggers task arrivals, assigns each task a utilization level
drawn from a low-mean beta distribution, and leaves VMs inactive between
tasks.  This reproduces exactly the characteristics the paper's analysis
relies on: heavy-tailed non-parametric durations, low mean load, and
per-VM on/off activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.base import ArrayWorkload


@dataclass(frozen=True)
class GoogleTask:
    """One task scheduled on a VM: a half-open step interval and a load."""

    vm_id: int
    start_step: int
    duration_steps: int
    utilization: float

    @property
    def end_step(self) -> int:
        return self.start_step + self.duration_steps


@dataclass(frozen=True)
class GoogleClusterWorkloadConfig:
    """Knobs of the synthetic Google-Cluster generator.

    Attributes:
        num_vms: number of VM streams.
        num_steps: trace length in 5-minute steps.
        interval_seconds: seconds per step (durations are drawn in seconds
            then quantized to steps).
        min_duration_seconds / max_duration_seconds: support of the
            log-uniform duration draw (paper: 10^1 to 10^6 s).
        short_task_fraction: extra probability mass given to short tasks,
            matching the bump at the left of Figure 1(b).
        utilization_alpha / utilization_beta: Beta-distribution parameters
            of per-task CPU levels (defaults give a low-load fleet).
        gap_mean_steps: mean idle gap between consecutive tasks on a VM.
        seed: RNG seed.
    """

    num_vms: int = 64
    num_steps: int = 7 * 288
    interval_seconds: float = 300.0
    min_duration_seconds: float = 10.0
    max_duration_seconds: float = 1e6
    short_task_fraction: float = 0.35
    utilization_alpha: float = 1.6
    utilization_beta: float = 7.0
    gap_mean_steps: float = 3.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_vms < 1 or self.num_steps < 1:
            raise ConfigurationError("need at least one VM and one step")
        if not 0 < self.min_duration_seconds < self.max_duration_seconds:
            raise ConfigurationError("need 0 < min duration < max duration")
        if not 0 <= self.short_task_fraction <= 1:
            raise ConfigurationError("short_task_fraction must be in [0, 1]")
        if self.interval_seconds <= 0:
            raise ConfigurationError("interval must be > 0")
        if self.gap_mean_steps < 0:
            raise ConfigurationError("gap mean must be >= 0")


def sample_task_durations_seconds(
    rng: np.random.Generator, count: int, config: GoogleClusterWorkloadConfig
) -> np.ndarray:
    """Draw task durations (seconds) from the heavy-tailed mixture."""
    log_min = np.log10(config.min_duration_seconds)
    log_max = np.log10(config.max_duration_seconds)
    uniform = 10.0 ** rng.uniform(log_min, log_max, size=count)
    # Short-task bump: log-normal centred near 10^2.3 s (~200 s).
    short = 10.0 ** rng.normal(2.3, 0.4, size=count)
    short = np.clip(short, config.min_duration_seconds, config.max_duration_seconds)
    pick_short = rng.random(count) < config.short_task_fraction
    return np.where(pick_short, short, uniform)


def generate_google_workload(
    config: GoogleClusterWorkloadConfig | None = None,
    return_tasks: bool = False,
    **overrides,
):
    """Generate a synthetic Google-Cluster-style workload.

    Returns an :class:`ArrayWorkload`, or ``(workload, tasks)`` when
    ``return_tasks`` is true (the task list backs Figure 1(b)).
    """
    if config is None:
        config = GoogleClusterWorkloadConfig(**overrides)
    elif overrides:
        raise ConfigurationError("pass either a config or overrides, not both")
    rng = np.random.default_rng(config.seed)
    n, t = config.num_vms, config.num_steps
    matrix = np.zeros((n, t), dtype=float)
    active = np.zeros((n, t), dtype=bool)
    tasks: List[GoogleTask] = []

    for vm_id in range(n):
        # Stagger the first arrival so tasks do not all start at step 0.
        step = int(rng.integers(0, max(1, int(config.gap_mean_steps * 2) + 1)))
        while step < t:
            duration_seconds = float(
                sample_task_durations_seconds(rng, 1, config)[0]
            )
            duration_steps = max(
                1, int(round(duration_seconds / config.interval_seconds))
            )
            duration_steps = min(duration_steps, t - step)
            level = float(rng.beta(config.utilization_alpha, config.utilization_beta))
            level = min(1.0, max(0.01, level))
            tasks.append(
                GoogleTask(
                    vm_id=vm_id,
                    start_step=step,
                    duration_steps=duration_steps,
                    utilization=level,
                )
            )
            noise = rng.normal(0.0, 0.02, size=duration_steps)
            segment = np.clip(level + noise, 0.0, 1.0)
            matrix[vm_id, step : step + duration_steps] = segment
            active[vm_id, step : step + duration_steps] = True
            step += duration_steps
            if config.gap_mean_steps > 0:
                step += int(rng.exponential(config.gap_mean_steps))
            else:
                step += 0

    workload = ArrayWorkload(
        matrix, active, name=f"google-synthetic(seed={config.seed})"
    )
    if return_tasks:
        return workload, tasks
    return workload
