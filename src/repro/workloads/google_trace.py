"""Loader for the real Google cluster-usage trace format.

The 2011 Google cluster trace (paper reference [15]; Reiss, Wilkes &
Hellerstein's format+schema white paper) ships ``task_events`` as
headerless CSVs whose first columns are::

    timestamp, missing-info, job-id, task-index, machine-id,
    event-type, user, scheduling-class, priority, cpu-request,
    memory-request, disk-request, different-machine

Event types: 0 SUBMIT, 1 SCHEDULE, 2 EVICT, 3 FAIL, 4 FINISH, 5 KILL,
6 LOST, 7 UPDATE_PENDING, 8 UPDATE_RUNNING.  Timestamps are in
microseconds from trace start.

This loader reconstructs per-task (SCHEDULE .. terminal-event) intervals,
maps each distinct (job-id, task-index) pair to a VM — mirroring the
paper's "2000 virtual machines with each running an individual task" —
and converts CPU requests into utilization levels.  The output is an
ordinary :class:`~repro.workloads.base.ArrayWorkload` that any simulation
can replay.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import TraceError
from repro.workloads.base import ArrayWorkload

#: task_events column indices (format+schema white paper).
COL_TIMESTAMP = 0
COL_JOB_ID = 2
COL_TASK_INDEX = 3
COL_EVENT_TYPE = 5
COL_CPU_REQUEST = 9

EVENT_SCHEDULE = 1
#: Terminal events ending a running interval.
TERMINAL_EVENTS = {2, 3, 4, 5, 6}

MICROSECONDS_PER_SECOND = 1_000_000.0


@dataclass(frozen=True)
class GoogleTraceInterval:
    """One reconstructed running interval of a task."""

    job_id: int
    task_index: int
    start_seconds: float
    end_seconds: Optional[float]  # None = still running at trace end
    cpu_request: float


def parse_task_events(path: str) -> List[GoogleTraceInterval]:
    """Parse one ``task_events`` CSV into running intervals.

    SCHEDULE events open an interval; the next terminal event for the
    same task closes it.  Unmatched terminal events (task scheduled
    before the file's window) are skipped; intervals still open at the
    end are returned with ``end_seconds=None``.
    """
    if not os.path.exists(path):
        raise TraceError(f"no such trace file: {path}")
    open_intervals: Dict[Tuple[int, int], Tuple[float, float]] = {}
    intervals: List[GoogleTraceInterval] = []
    with open(path, newline="") as handle:
        for line_number, row in enumerate(csv.reader(handle), start=1):
            if not row:
                continue
            if len(row) <= COL_CPU_REQUEST:
                raise TraceError(
                    f"{path}:{line_number}: expected >= "
                    f"{COL_CPU_REQUEST + 1} columns, got {len(row)}"
                )
            try:
                timestamp = int(row[COL_TIMESTAMP]) / MICROSECONDS_PER_SECOND
                job_id = int(row[COL_JOB_ID])
                task_index = int(row[COL_TASK_INDEX])
                event_type = int(row[COL_EVENT_TYPE])
            except ValueError as exc:
                raise TraceError(
                    f"{path}:{line_number}: malformed event: {exc}"
                ) from exc
            key = (job_id, task_index)
            if event_type == EVENT_SCHEDULE:
                cpu = _parse_cpu(row[COL_CPU_REQUEST])
                open_intervals[key] = (timestamp, cpu)
            elif event_type in TERMINAL_EVENTS and key in open_intervals:
                start, cpu = open_intervals.pop(key)
                intervals.append(
                    GoogleTraceInterval(
                        job_id=job_id,
                        task_index=task_index,
                        start_seconds=start,
                        end_seconds=timestamp,
                        cpu_request=cpu,
                    )
                )
    for (job_id, task_index), (start, cpu) in open_intervals.items():
        intervals.append(
            GoogleTraceInterval(
                job_id=job_id,
                task_index=task_index,
                start_seconds=start,
                end_seconds=None,
                cpu_request=cpu,
            )
        )
    intervals.sort(key=lambda i: (i.start_seconds, i.job_id, i.task_index))
    return intervals


def _parse_cpu(cell: str) -> float:
    """CPU request: a fraction of machine capacity; blank = unknown."""
    cell = cell.strip()
    if not cell:
        return 0.0
    try:
        value = float(cell)
    except ValueError as exc:
        raise TraceError(f"bad cpu-request value {cell!r}") from exc
    return min(1.0, max(0.0, value))


def load_google_task_events(
    path: str,
    interval_seconds: float = 300.0,
    num_steps: Optional[int] = None,
    max_vms: Optional[int] = None,
    default_utilization: float = 0.25,
    cpu_scale: float = 2.0,
) -> ArrayWorkload:
    """Build a workload from a real ``task_events`` CSV.

    Each distinct task becomes one VM (the paper's sampling); its running
    intervals set the VM active at a level derived from the trace's CPU
    request (``cpu_request * cpu_scale``, clipped to [0, 1];
    ``default_utilization`` when the request column is blank).

    Args:
        path: the task_events CSV.
        interval_seconds: simulation step size.
        num_steps: trace length (default: covers the last event).
        max_vms: keep only the first N tasks by schedule time.
        default_utilization: level for blank CPU requests.
        cpu_scale: trace CPU requests are machine fractions of large
            servers; this rescales them into VM-utilization terms.
    """
    if interval_seconds <= 0:
        raise TraceError("interval must be > 0")
    intervals = parse_task_events(path)
    if not intervals:
        raise TraceError(f"{path} contains no reconstructable intervals")
    task_order: List[Tuple[int, int]] = []
    seen = set()
    for interval in intervals:
        key = (interval.job_id, interval.task_index)
        if key not in seen:
            seen.add(key)
            task_order.append(key)
    if max_vms is not None:
        task_order = task_order[:max_vms]
    vm_of = {key: index for index, key in enumerate(task_order)}

    last_end = max(
        (i.end_seconds for i in intervals if i.end_seconds is not None),
        default=0.0,
    )
    last_start = max(i.start_seconds for i in intervals)
    horizon = max(last_end, last_start + interval_seconds)
    steps = (
        num_steps
        if num_steps is not None
        else max(1, int(np.ceil(horizon / interval_seconds)))
    )

    matrix = np.zeros((len(task_order), steps))
    active = np.zeros((len(task_order), steps), dtype=bool)
    for interval in intervals:
        key = (interval.job_id, interval.task_index)
        if key not in vm_of:
            continue
        vm_id = vm_of[key]
        first = int(interval.start_seconds // interval_seconds)
        end_seconds = (
            interval.end_seconds
            if interval.end_seconds is not None
            else steps * interval_seconds
        )
        last = int(np.ceil(end_seconds / interval_seconds))
        first = max(0, min(first, steps))
        last = max(first + 1, min(last, steps)) if first < steps else first
        if first >= steps:
            continue
        level = interval.cpu_request * cpu_scale
        if level <= 0.0:
            level = default_utilization
        level = min(1.0, max(0.01, level))
        matrix[vm_id, first:last] = level
        active[vm_id, first:last] = True
    return ArrayWorkload(
        matrix, active, name=f"google-trace({os.path.basename(path)})"
    )
