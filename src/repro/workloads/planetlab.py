"""PlanetLab-style workload: synthetic generator plus real-trace loader.

The paper's PlanetLab slice of the CoMoN dataset has per-VM CPU utilization
sampled every 5 minutes for 7 days, with the published fleet statistics:
average per-VM load about 12 %, standard deviation about 34 % across the
fleet, per-step extremes ranging from roughly 5 % to 90 %, and workloads
that run continuously with bursty, strongly autocorrelated dynamics.

The synthetic generator produces a heterogeneous mix calibrated to those
numbers: most VMs idle at a low base load with an AR(1) jitter, a minority
carry sustained heavy load, and every VM occasionally bursts.  Because
Megh and the baselines only ever see the utilization stream, matching the
first/second-order statistics and temporal correlation preserves the
decision problem the paper evaluates.

``load_planetlab_directory`` reads the original CoMoN file format (one file
per VM, one integer utilization percentage per line) when a real trace is
available locally.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.workloads.base import ArrayWorkload

#: Samples per day at the 5-minute CoMoN cadence.
STEPS_PER_DAY = 288


@dataclass(frozen=True)
class PlanetLabWorkloadConfig:
    """Knobs of the synthetic PlanetLab generator.

    Attributes:
        num_vms: number of VM utilization streams.
        num_steps: trace length (paper: 7 days = 2016 steps).
        heavy_fraction: share of VMs that carry sustained heavy load.
        base_mean: mean base load of a light VM.
        heavy_mean: mean base load of a heavy VM.
        ar_coefficient: AR(1) persistence of the jitter (0 = white noise).
        jitter_std: standard deviation of the AR(1) innovation.
        burst_probability: per-step probability a VM starts a burst.
        burst_magnitude: mean extra load during a burst.
        burst_duration_steps: mean burst length (geometric).
        seed: RNG seed.
    """

    num_vms: int = 64
    num_steps: int = 7 * STEPS_PER_DAY
    heavy_fraction: float = 0.12
    base_mean: float = 0.06
    heavy_mean: float = 0.55
    ar_coefficient: float = 0.85
    jitter_std: float = 0.04
    burst_probability: float = 0.02
    burst_magnitude: float = 0.45
    burst_duration_steps: float = 6.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_vms < 1 or self.num_steps < 1:
            raise ConfigurationError("need at least one VM and one step")
        if not 0 <= self.heavy_fraction <= 1:
            raise ConfigurationError("heavy_fraction must be in [0, 1]")
        if not 0 <= self.ar_coefficient < 1:
            raise ConfigurationError("ar_coefficient must be in [0, 1)")
        for name in ("base_mean", "heavy_mean", "burst_magnitude"):
            if not 0 <= getattr(self, name) <= 1:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.burst_duration_steps < 1:
            raise ConfigurationError("burst_duration_steps must be >= 1")


def generate_planetlab_workload(
    config: PlanetLabWorkloadConfig | None = None,
    **overrides,
) -> ArrayWorkload:
    """Generate a synthetic PlanetLab-style workload.

    Accepts either a full config or keyword overrides of the defaults::

        workload = generate_planetlab_workload(num_vms=150, seed=7)
    """
    if config is None:
        config = PlanetLabWorkloadConfig(**overrides)
    elif overrides:
        raise ConfigurationError("pass either a config or overrides, not both")
    rng = np.random.default_rng(config.seed)
    n, t = config.num_vms, config.num_steps
    matrix = np.zeros((n, t), dtype=float)

    # Deterministic heavy count (rounded) keeps small fleets close to the
    # configured mix; which VMs are heavy is still random.
    num_heavy = int(round(config.heavy_fraction * n))
    heavy = np.zeros(n, dtype=bool)
    if num_heavy:
        heavy[rng.choice(n, size=num_heavy, replace=False)] = True
    base = np.where(
        heavy,
        rng.normal(config.heavy_mean, 0.12, size=n),
        rng.normal(config.base_mean, 0.03, size=n),
    )
    base = np.clip(base, 0.01, 0.95)

    # AR(1) jitter per VM, vectorized over VMs, iterated over time.
    jitter = rng.normal(0.0, config.jitter_std, size=n)
    burst_remaining = np.zeros(n, dtype=int)
    burst_level = np.zeros(n, dtype=float)
    stop_probability = 1.0 / config.burst_duration_steps

    for step in range(t):
        innovations = rng.normal(0.0, config.jitter_std, size=n)
        jitter = config.ar_coefficient * jitter + innovations
        starting = (burst_remaining == 0) & (
            rng.random(n) < config.burst_probability
        )
        if np.any(starting):
            burst_remaining[starting] = 1 + rng.geometric(
                stop_probability, size=int(np.count_nonzero(starting))
            )
            burst_level[starting] = np.abs(
                rng.normal(config.burst_magnitude, 0.15,
                           size=int(np.count_nonzero(starting)))
            )
        in_burst = burst_remaining > 0
        load = base + jitter + np.where(in_burst, burst_level, 0.0)
        matrix[:, step] = np.clip(load, 0.0, 1.0)
        burst_remaining[in_burst] -= 1

    return ArrayWorkload(matrix, name=f"planetlab-synthetic(seed={config.seed})")


def load_planetlab_directory(
    path: str, num_steps: int | None = None
) -> ArrayWorkload:
    """Load a real PlanetLab/CoMoN trace directory.

    Each file holds one VM's trace: one integer CPU percentage per line.
    VMs are ordered by sorted filename.  Traces shorter than ``num_steps``
    raise; longer ones are truncated.
    """
    if not os.path.isdir(path):
        raise TraceError(f"not a directory: {path}")
    files = sorted(
        os.path.join(path, name)
        for name in os.listdir(path)
        if os.path.isfile(os.path.join(path, name))
    )
    if not files:
        raise TraceError(f"no trace files in {path}")
    rows = []
    for file_path in files:
        with open(file_path) as handle:
            values = [float(line.strip()) / 100.0 for line in handle if line.strip()]
        if not values:
            raise TraceError(f"empty trace file: {file_path}")
        rows.append(values)
    length = num_steps if num_steps is not None else min(len(r) for r in rows)
    for file_path, row in zip(files, rows):
        if len(row) < length:
            raise TraceError(
                f"trace {file_path} has {len(row)} samples, need {length}"
            )
    matrix = np.array([row[:length] for row in rows], dtype=float)
    matrix = np.clip(matrix, 0.0, 1.0)
    return ArrayWorkload(matrix, name=f"planetlab({os.path.basename(path)})")
