"""Queueing-model workload: Poisson arrivals of exponential jobs.

Section 3.1 discusses (and Section 7 plans to exploit) the line of work
that models incoming VM workload as a queueing system — jobs arriving as
a Poisson process and holding resources for exponentially distributed
service times ([30]-[33] in the paper).  This generator realises that
model: each VM is a server fed by its own M/M/1-style stream; jobs
arriving while one is running queue up, and the VM's CPU demand while
busy is the job's draw.  Megh remains model-free — the queueing trace is
just another workload — which is exactly the paper's point about
generality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.base import ArrayWorkload


@dataclass(frozen=True)
class QueueingWorkloadConfig:
    """Knobs of the Poisson-arrival workload generator.

    Attributes:
        num_vms: number of VM streams.
        num_steps: trace length in intervals.
        arrival_rate: expected job arrivals per interval per VM
            (the Poisson intensity ``lambda``).
        mean_service_steps: mean job duration in intervals (exponential,
            ``1/mu``).
        utilization_low / utilization_high: per-job CPU demand drawn
            uniformly from this range.
        seed: RNG seed.

    With ``rho = arrival_rate * mean_service_steps < 1`` each stream is a
    stable M/M/1 queue; ``rho >= 1`` produces a saturating stream.
    """

    num_vms: int = 32
    num_steps: int = 288
    arrival_rate: float = 0.10
    mean_service_steps: float = 6.0
    utilization_low: float = 0.20
    utilization_high: float = 0.80
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_vms < 1 or self.num_steps < 1:
            raise ConfigurationError("need at least one VM and one step")
        if self.arrival_rate < 0:
            raise ConfigurationError("arrival rate must be >= 0")
        if self.mean_service_steps <= 0:
            raise ConfigurationError("mean service time must be > 0")
        if not 0 <= self.utilization_low <= self.utilization_high <= 1:
            raise ConfigurationError(
                "need 0 <= utilization_low <= utilization_high <= 1"
            )

    @property
    def offered_load(self) -> float:
        """``rho = lambda / mu`` of each stream."""
        return self.arrival_rate * self.mean_service_steps


def generate_queueing_workload(
    config: QueueingWorkloadConfig | None = None,
    **overrides,
) -> ArrayWorkload:
    """Generate a Poisson-arrival / exponential-service workload."""
    if config is None:
        config = QueueingWorkloadConfig(**overrides)
    elif overrides:
        raise ConfigurationError("pass either a config or overrides, not both")
    rng = np.random.default_rng(config.seed)
    n, t = config.num_vms, config.num_steps
    matrix = np.zeros((n, t))
    active = np.zeros((n, t), dtype=bool)

    for vm_id in range(n):
        queue: list[tuple[int, float]] = []  # (remaining steps, demand)
        for step in range(t):
            arrivals = rng.poisson(config.arrival_rate)
            for _ in range(arrivals):
                duration = max(
                    1, int(round(rng.exponential(config.mean_service_steps)))
                )
                demand = float(
                    rng.uniform(
                        config.utilization_low, config.utilization_high
                    )
                )
                queue.append((duration, demand))
            if queue:
                remaining, demand = queue[0]
                matrix[vm_id, step] = demand
                active[vm_id, step] = True
                remaining -= 1
                if remaining <= 0:
                    queue.pop(0)
                else:
                    queue[0] = (remaining, demand)
    return ArrayWorkload(
        matrix,
        active,
        name=(
            f"queueing(lambda={config.arrival_rate}, "
            f"rho={config.offered_load:.2f}, seed={config.seed})"
        ),
    )


def expected_busy_fraction(config: QueueingWorkloadConfig) -> float:
    """Long-run probability a stream is busy: ``min(1, rho)``.

    For an M/M/1 queue the server's busy fraction equals the offered
    load while the queue is stable; saturated streams are always busy.
    """
    return min(1.0, config.offered_load)
