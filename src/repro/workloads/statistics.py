"""Workload statistics backing Figure 1 and the dataset characterisation.

Provides the fleet summary used for Figure 1(a) (per-step mean / max / min
utilization, fleet mean and standard deviation), the task-duration
histogram of Figure 1(b), and Cullen–Frey coordinates (skewness²,
kurtosis) used by the paper to argue the traces match no standard
parametric family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import TraceError
from repro.workloads.base import Workload


@dataclass(frozen=True)
class WorkloadStatistics:
    """Fleet-level summary of a workload trace (Figure 1(a) quantities)."""

    num_vms: int
    num_steps: int
    mean_utilization: float
    std_utilization: float
    per_step_mean: Tuple[float, ...]
    per_step_max: Tuple[float, ...]
    per_step_min: Tuple[float, ...]
    activity_fraction: float

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.num_vms} VMs x {self.num_steps} steps | "
            f"mean={self.mean_utilization:.1%} std={self.std_utilization:.1%} "
            f"active={self.activity_fraction:.1%} "
            f"step-max up to {max(self.per_step_max):.1%}"
        )


def _as_matrix(workload: Workload) -> Tuple[np.ndarray, np.ndarray]:
    matrix = np.empty((workload.num_vms, workload.num_steps))
    active = np.empty((workload.num_vms, workload.num_steps), dtype=bool)
    for vm_id in range(workload.num_vms):
        for step in range(workload.num_steps):
            matrix[vm_id, step] = workload.utilization(vm_id, step)
            active[vm_id, step] = workload.is_active(vm_id, step)
    return matrix, active


def summarize_workload(workload: Workload) -> WorkloadStatistics:
    """Compute the Figure-1(a) fleet statistics for a workload."""
    if hasattr(workload, "matrix") and hasattr(workload, "activity"):
        matrix = np.asarray(workload.matrix)
        active = np.asarray(workload.activity)
    else:
        matrix, active = _as_matrix(workload)
    masked = np.where(active, matrix, 0.0)
    samples = masked[active] if active.any() else np.zeros(1)
    return WorkloadStatistics(
        num_vms=workload.num_vms,
        num_steps=workload.num_steps,
        mean_utilization=float(samples.mean()),
        std_utilization=float(samples.std()),
        per_step_mean=tuple(float(v) for v in masked.mean(axis=0)),
        per_step_max=tuple(float(v) for v in masked.max(axis=0)),
        per_step_min=tuple(float(v) for v in masked.min(axis=0)),
        activity_fraction=float(active.mean()),
    )


def duration_histogram(
    durations_seconds: Sequence[float], bins_per_decade: int = 4
) -> List[Tuple[float, float, int]]:
    """Log-spaced histogram of task durations (Figure 1(b)).

    Returns ``(bin_low, bin_high, count)`` triples covering the data range.
    """
    durations = np.asarray([d for d in durations_seconds if d > 0], dtype=float)
    if durations.size == 0:
        raise TraceError("no positive durations to histogram")
    low = np.floor(np.log10(durations.min()))
    high = np.ceil(np.log10(durations.max()))
    if high <= low:
        high = low + 1
    num_bins = int((high - low) * bins_per_decade)
    edges = np.logspace(low, high, num_bins + 1)
    counts, _ = np.histogram(durations, bins=edges)
    return [
        (float(edges[i]), float(edges[i + 1]), int(counts[i]))
        for i in range(num_bins)
    ]


def cullen_frey_coordinates(samples: Sequence[float]) -> Tuple[float, float]:
    """(squared skewness, kurtosis) — the axes of a Cullen–Frey graph.

    Kurtosis is the non-excess (Pearson) kurtosis, so the normal
    distribution sits at (0, 3), the uniform at (0, 1.8), and the
    exponential at (4, 9).
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size < 4:
        raise TraceError("need at least 4 samples for Cullen-Frey coordinates")
    centered = data - data.mean()
    variance = float(np.mean(centered**2))
    if variance <= 0.0:
        return (0.0, 0.0)
    skewness = float(np.mean(centered**3)) / variance**1.5
    kurtosis = float(np.mean(centered**4)) / variance**2
    return (skewness**2, kurtosis)


def nearest_standard_distribution(samples: Sequence[float]) -> str:
    """Name the standard distribution closest on the Cullen–Frey plane.

    Used to reproduce the paper's observation that neither trace matches a
    standard family: the returned label is 'none (non-standard)' when the
    distance to every reference point exceeds a tolerance.
    """
    references = {
        "normal": (0.0, 3.0),
        "uniform": (0.0, 1.8),
        "exponential": (4.0, 9.0),
        "logistic": (0.0, 4.2),
    }
    point = cullen_frey_coordinates(samples)
    best_name, best_distance = "", float("inf")
    for name, ref in references.items():
        distance = ((point[0] - ref[0]) ** 2 + (point[1] - ref[1]) ** 2) ** 0.5
        if distance < best_distance:
            best_name, best_distance = name, distance
    if best_distance > 1.0:
        return "none (non-standard)"
    return best_name
