"""Simple synthetic workload shapes for tests, examples, and ablations."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.base import ArrayWorkload


def constant_workload(
    num_vms: int, num_steps: int, level: float = 0.5
) -> ArrayWorkload:
    """Every VM demands ``level`` at every step."""
    if not 0.0 <= level <= 1.0:
        raise ConfigurationError("level must be in [0, 1]")
    matrix = np.full((num_vms, num_steps), level, dtype=float)
    return ArrayWorkload(matrix, name=f"constant({level})")


def periodic_workload(
    num_vms: int,
    num_steps: int,
    low: float = 0.1,
    high: float = 0.8,
    period: int = 48,
    phase_shift: bool = True,
) -> ArrayWorkload:
    """Sinusoidal diurnal pattern between ``low`` and ``high``.

    With ``phase_shift`` each VM gets a different phase, producing the
    staggered peaks a real fleet shows.
    """
    if not 0.0 <= low <= high <= 1.0:
        raise ConfigurationError("need 0 <= low <= high <= 1")
    if period < 2:
        raise ConfigurationError("period must be >= 2")
    steps = np.arange(num_steps)
    matrix = np.zeros((num_vms, num_steps), dtype=float)
    for vm_id in range(num_vms):
        phase = (2 * np.pi * vm_id / num_vms) if phase_shift else 0.0
        wave = 0.5 * (1 + np.sin(2 * np.pi * steps / period + phase))
        matrix[vm_id] = low + (high - low) * wave
    return ArrayWorkload(matrix, name="periodic")


def random_walk_workload(
    num_vms: int,
    num_steps: int,
    start: float = 0.3,
    step_std: float = 0.05,
    seed: int = 0,
) -> ArrayWorkload:
    """Reflected Gaussian random walk per VM — maximal uncertainty."""
    if not 0.0 <= start <= 1.0:
        raise ConfigurationError("start must be in [0, 1]")
    rng = np.random.default_rng(seed)
    matrix = np.zeros((num_vms, num_steps), dtype=float)
    level = np.full(num_vms, start, dtype=float)
    for step in range(num_steps):
        level = level + rng.normal(0.0, step_std, size=num_vms)
        # Reflect at the [0, 1] boundaries.
        level = np.abs(level)
        level = 1.0 - np.abs(1.0 - level)
        level = np.clip(level, 0.0, 1.0)
        matrix[:, step] = level
    return ArrayWorkload(matrix, name="random-walk")


def spike_workload(
    num_vms: int,
    num_steps: int,
    base: float = 0.1,
    spike: float = 0.9,
    spike_probability: float = 0.05,
    seed: int = 0,
) -> ArrayWorkload:
    """Low base load with random one-step spikes — stresses overload logic."""
    if not 0.0 <= base <= 1.0 or not 0.0 <= spike <= 1.0:
        raise ConfigurationError("base and spike must be in [0, 1]")
    if not 0.0 <= spike_probability <= 1.0:
        raise ConfigurationError("spike probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    matrix = np.full((num_vms, num_steps), base, dtype=float)
    spikes = rng.random((num_vms, num_steps)) < spike_probability
    matrix[spikes] = spike
    return ArrayWorkload(matrix, name="spiky")
