"""Trace persistence and interchange.

Round-trips :class:`~repro.workloads.base.ArrayWorkload` through NPZ
(compact, lossless) and CSV (interoperable), and imports Google-cluster
style task-event CSVs (``vm_id,start_step,duration_steps,utilization``)
into workloads — the format ``export_task_events`` writes.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, List

import numpy as np

from repro.errors import TraceError
from repro.workloads.base import ArrayWorkload
from repro.workloads.google import GoogleTask


def save_workload_npz(workload: ArrayWorkload, path: str) -> None:
    """Save a workload (matrix + activity mask + name) to ``.npz``."""
    np.savez_compressed(
        path,
        matrix=np.asarray(workload.matrix),
        activity=np.asarray(workload.activity),
        name=np.array(workload.name),
    )


def load_workload_npz(path: str) -> ArrayWorkload:
    """Load a workload previously saved by :func:`save_workload_npz`."""
    if not os.path.exists(path):
        raise TraceError(f"no such trace file: {path}")
    try:
        data = np.load(path, allow_pickle=False)
    except Exception as exc:  # zipfile/format errors
        raise TraceError(f"cannot read NPZ trace {path}: {exc}") from exc
    if "matrix" not in data:
        raise TraceError(f"{path} is not a workload NPZ (no 'matrix')")
    matrix = data["matrix"]
    activity = data["activity"] if "activity" in data else None
    name = str(data["name"]) if "name" in data else os.path.basename(path)
    return ArrayWorkload(matrix, activity, name=name)


def save_workload_csv(workload: ArrayWorkload, path: str) -> None:
    """Save a workload as CSV: one row per VM, one column per step.

    Inactive samples are written as empty cells so activity round-trips.
    """
    matrix = np.asarray(workload.matrix)
    activity = np.asarray(workload.activity)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["vm_id", *[f"step_{s}" for s in range(workload.num_steps)]]
        )
        for vm_id in range(workload.num_vms):
            row: List[str] = [str(vm_id)]
            for step in range(workload.num_steps):
                if activity[vm_id, step]:
                    row.append(f"{matrix[vm_id, step]:.6f}")
                else:
                    row.append("")
            writer.writerow(row)


def load_workload_csv(path: str, name: str | None = None) -> ArrayWorkload:
    """Load a workload written by :func:`save_workload_csv`."""
    if not os.path.exists(path):
        raise TraceError(f"no such trace file: {path}")
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceError(f"{path} is empty") from None
        if not header or header[0] != "vm_id":
            raise TraceError(f"{path} lacks the workload CSV header")
        num_steps = len(header) - 1
        rows: List[List[str]] = [row for row in reader if row]
    if not rows:
        raise TraceError(f"{path} contains no VM rows")
    matrix = np.zeros((len(rows), num_steps))
    activity = np.zeros((len(rows), num_steps), dtype=bool)
    for index, row in enumerate(rows):
        if len(row) != num_steps + 1:
            raise TraceError(
                f"{path}: row {index} has {len(row) - 1} samples, "
                f"expected {num_steps}"
            )
        for step, cell in enumerate(row[1:]):
            if cell == "":
                continue
            try:
                value = float(cell)
            except ValueError:
                raise TraceError(
                    f"{path}: row {index} step {step}: not a number: {cell!r}"
                ) from None
            matrix[index, step] = value
            activity[index, step] = True
    return ArrayWorkload(
        matrix, activity, name=name or os.path.basename(path)
    )


def export_task_events(tasks: Iterable[GoogleTask], path: str) -> None:
    """Write tasks as a Google-cluster-style event CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["vm_id", "start_step", "duration_steps", "utilization"]
        )
        for task in tasks:
            writer.writerow(
                [
                    task.vm_id,
                    task.start_step,
                    task.duration_steps,
                    f"{task.utilization:.6f}",
                ]
            )


def load_task_events(
    path: str, num_vms: int | None = None, num_steps: int | None = None
) -> ArrayWorkload:
    """Build a workload from a task-event CSV.

    ``num_vms`` / ``num_steps`` default to the smallest matrix that fits
    every event; pass them explicitly to pad or validate.
    """
    tasks = read_task_events(path)
    if not tasks:
        raise TraceError(f"{path} contains no task events")
    max_vm = max(task.vm_id for task in tasks)
    max_step = max(task.end_step for task in tasks)
    vms = num_vms if num_vms is not None else max_vm + 1
    steps = num_steps if num_steps is not None else max_step
    if max_vm >= vms:
        raise TraceError(
            f"{path} references vm {max_vm} but num_vms={vms}"
        )
    if max_step > steps:
        raise TraceError(
            f"{path} has events ending at step {max_step} but "
            f"num_steps={steps}"
        )
    matrix = np.zeros((vms, steps))
    activity = np.zeros((vms, steps), dtype=bool)
    for task in tasks:
        matrix[task.vm_id, task.start_step : task.end_step] = task.utilization
        activity[task.vm_id, task.start_step : task.end_step] = True
    return ArrayWorkload(matrix, activity, name=os.path.basename(path))


def read_task_events(path: str) -> List[GoogleTask]:
    """Parse a task-event CSV into :class:`GoogleTask` records."""
    if not os.path.exists(path):
        raise TraceError(f"no such trace file: {path}")
    tasks: List[GoogleTask] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"vm_id", "start_step", "duration_steps", "utilization"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise TraceError(
                f"{path} lacks task-event columns {sorted(required)}"
            )
        for line, row in enumerate(reader, start=2):
            try:
                task = GoogleTask(
                    vm_id=int(row["vm_id"]),
                    start_step=int(row["start_step"]),
                    duration_steps=int(row["duration_steps"]),
                    utilization=float(row["utilization"]),
                )
            except (TypeError, ValueError) as exc:
                raise TraceError(f"{path}:{line}: bad task event: {exc}") from exc
            if task.duration_steps < 1 or task.start_step < 0:
                raise TraceError(f"{path}:{line}: non-positive task extent")
            if not 0.0 <= task.utilization <= 1.0:
                raise TraceError(f"{path}:{line}: utilization out of [0, 1]")
            tasks.append(task)
    return tasks
