"""Repaired twin: every staging mutation reaches a guaranteed bump.

``retire`` discharges through ``_reset`` (a helper whose top-level walk
always reaches ``self.mutations += 1``), ``grow`` bumps directly after
a fall-through branch, and ``settle`` layers two helpers — the closure
must admit ``_retire_and_log`` transitively through ``_reset``.
"""


class PendingUpdates:
    def __init__(self):
        self.mutations = 0
        self._n = 0
        self._pend_rows_n = 0
        self._dirty_count = 0

    def _reset(self):
        self._n = 0
        self._pend_rows_n = 0
        self.mutations += 1

    def _retire_and_log(self):
        self._dirty_count = 0
        self._reset()

    def retire(self):
        self._dirty_count = 0
        self._reset()

    def grow(self, count):
        if count > self._pend_rows_n:
            self._pend_rows_n = count
        self.mutations += 1

    def settle(self):
        self._n = 0
        self._retire_and_log()
