"""Seeded-in defect: counter discharge through a *conditional* helper.

``shrink`` mutates staging state and delegates the bump to a helper
that can return before bumping — the counter closure must refuse to
admit ``_maybe_bump``, so the obligation survives to function exit.
``retire`` is the sound twin: ``_reset`` always bumps.
"""


class PendingUpdates:
    def __init__(self):
        self.mutations = 0
        self._n = 0
        self._pend_rows_n = 0
        self._dirty_count = 0

    def _reset(self):
        self._n = 0
        self._pend_rows_n = 0
        self.mutations += 1

    def _maybe_bump(self):
        if self._n:
            return
        self.mutations += 1

    def retire(self):
        self._dirty_count = 0
        self._reset()

    def shrink(self):
        self._pend_rows_n = 0
        self._maybe_bump()
