"""Repaired variants: every path invalidates before exit."""


def apply_demand(arrays, vm_id, demand, noisy):
    arrays.vm_demand[vm_id] = demand
    if noisy:
        arrays.mark_demand_dirty()
    else:
        arrays.mark_activity_dirty()


def zero_on_branch(arrays, vm_id, idle):
    if idle:
        arrays.vm_delivered[vm_id] = 0.0
        arrays.mark_delivered_dirty()
    return arrays
