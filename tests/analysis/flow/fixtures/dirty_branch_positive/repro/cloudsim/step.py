"""Seeded-in defects: mutations whose invalidation misses a path."""


def apply_demand(arrays, vm_id, demand, noisy):
    arrays.vm_demand[vm_id] = demand
    if noisy:
        arrays.mark_demand_dirty()


def zero_on_branch(arrays, vm_id, idle):
    if idle:
        arrays.vm_delivered[vm_id] = 0.0
    return arrays
