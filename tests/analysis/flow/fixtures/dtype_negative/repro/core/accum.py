"""Repaired variants: canonical dtypes, aligned axes, numpy reductions."""

import numpy as np


def make_counts(num_vms):
    return np.zeros(num_vms, dtype=np.int64)


def demanded_mips(arrays):
    return arrays.vm_demand * arrays.vm_mips


def numpy_total(num_pms):
    data = np.zeros(num_pms, dtype=np.float64)
    return float(np.sum(data))
