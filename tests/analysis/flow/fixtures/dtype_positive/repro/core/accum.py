"""Seeded-in defects: dtype and axis slips in a hot module."""

import numpy as np


def make_counts(num_vms):
    return np.zeros(num_vms, dtype=np.int32)


def mixed_axes(arrays):
    return arrays.vm_demand * arrays.pm_mips


def python_total(num_pms):
    data = np.zeros(num_pms, dtype=np.float64)
    return sum(data)
