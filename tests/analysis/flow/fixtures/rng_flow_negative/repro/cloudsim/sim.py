"""Target-package sink: any RNG reaching ``step`` must be seeded."""


def step(rng, n):
    return int(rng.integers(0, n))
