"""Repaired variant: the generator is seeded at the harness boundary."""

import numpy as np

from repro.cloudsim.sim import step


def make_rng(seed):
    return np.random.default_rng(seed)


def forward(rng, n):
    return step(rng, n)


def main(n, seed):
    rng = make_rng(seed)
    return forward(rng, n)
