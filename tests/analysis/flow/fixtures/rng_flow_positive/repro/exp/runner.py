"""Seeded-in defect: an unseeded Generator crosses two call hops."""

import numpy as np

from repro.cloudsim.sim import step


def make_rng():
    return np.random.default_rng()


def forward(rng, n):
    return step(rng, n)


def main(n):
    rng = make_rng()
    return forward(rng, n)
