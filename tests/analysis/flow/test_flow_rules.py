"""Fixture-driven tests for the meghflow rules (MEGH010–MEGH012).

Each fixture under ``fixtures/<case>/`` is a miniature project — a
``repro`` package tree that is *parsed, never imported* — holding a
seeded-in defect (positive case) or its repaired twin (negative case).
The tests lint each case directory whole, so every finding here proves
a genuinely interprocedural property: the RNG defect crosses two call
hops and two modules, the dirty-flag defect hides on one branch of a
conditional, and the dtype defects live in declared hot packages.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import LintConfig, lint_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _findings(case: str, rule: str):
    config = LintConfig(select=[rule])
    result = lint_paths([FIXTURES / case], config)
    assert not any(d.rule_id == "MEGH000" for d in result.diagnostics), (
        "fixture must parse"
    )
    return [d for d in result.diagnostics if d.rule_id == rule]


class TestRngProvenance:
    def test_unseeded_generator_crossing_two_hops_is_reported(self):
        findings = _findings("rng_flow_positive", "MEGH010")
        assert len(findings) == 1
        finding = findings[0]
        # Anchored at the creation site, where the fix belongs.
        assert finding.path.endswith("runner.py")
        assert "without a seed" in finding.message
        # The witness names the simulation-package sink.
        assert "repro.cloudsim" in finding.message

    def test_seeded_generator_is_silent(self):
        assert _findings("rng_flow_negative", "MEGH010") == []


class TestDirtyFlags:
    def test_mark_missing_on_one_path_is_reported(self):
        findings = _findings("dirty_branch_positive", "MEGH011")
        messages = [f.message for f in findings]
        assert len(findings) == 2
        assert any("vm_demand" in message for message in messages)
        assert any("vm_delivered" in message for message in messages)
        for finding in findings:
            assert "every path" in finding.message

    def test_marks_on_every_path_are_silent(self):
        assert _findings("dirty_branch_negative", "MEGH011") == []


class TestCounterClosure:
    """Counter obligations discharged through helper methods.

    ``PendingUpdates`` (repro/core/kern.py) retires its staged window
    via ``_reset``, which owns the ``mutations`` bump — the closure
    must admit helpers that *always* bump and refuse ones that can
    return first.
    """

    def test_conditional_helper_does_not_discharge(self):
        findings = _findings("counter_closure_positive", "MEGH011")
        assert len(findings) == 1
        finding = findings[0]
        assert "_pend_rows_n" in finding.message
        assert "bump self.mutations" in finding.message

    def test_unconditional_helpers_discharge_transitively(self):
        assert _findings("counter_closure_negative", "MEGH011") == []


class TestDtypeDiscipline:
    def test_bad_dtype_axis_mix_and_python_sum_are_reported(self):
        findings = _findings("dtype_positive", "MEGH012")
        messages = [f.message for f in findings]
        assert any("int32" in message for message in messages)
        assert any(
            "per-VM (N) and a per-PM (M)" in message for message in messages
        )
        assert any("built-in sum()" in message for message in messages)
        assert len(findings) == 3

    def test_repaired_module_is_silent(self):
        assert _findings("dtype_negative", "MEGH012") == []


class TestFlowToggles:
    def test_no_flow_config_skips_flow_rules(self):
        config = LintConfig(select=["MEGH010"], flow=False)
        result = lint_paths([FIXTURES / "rng_flow_positive"], config)
        assert result.diagnostics == []

    def test_flow_findings_honour_line_suppressions(self, tmp_path):
        package = tmp_path / "repro" / "cloudsim"
        package.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (package / "__init__.py").write_text("")
        (package / "mod.py").write_text(
            "def touch(arrays, i):\n"
            "    arrays.vm_demand[i] = 1.0"
            "  # meghlint: ignore[MEGH011] -- test fixture\n"
        )
        config = LintConfig(select=["MEGH011"])
        result = lint_paths([tmp_path], config)
        assert result.diagnostics == []
        assert result.suppressed == 1
        assert result.unused_suppressions == []
