"""Repaired twin: reductions run over pinned-order sequences."""

import math


def total_power(loads):
    watts = {load * 0.5 for load in loads}
    return math.fsum(sorted(watts))


def accumulate_energy(samples):
    ordered = sorted({s for s in samples})
    total = 0.0
    for sample in ordered:
        total += sample * 0.25
    return total
