"""Seeded defect: float reductions over unordered iterables."""


def total_power(loads):
    watts = {load * 0.5 for load in loads}
    # Defect: float addition is not associative, and set order is
    # arbitrary — the total differs in the last bits across runs.
    return sum(watts)


def accumulate_energy(samples):
    total = 0.0
    for sample in {s for s in samples}:
        # Defect: incremental += over an unordered source.
        total += sample * 0.25
    return total
