"""Repaired twin: ambient reads happen in the parent, not the worker."""

import os

from repro.engine.registry import register_builder


def build_probe(seed=0, region="us-east"):
    return [seed, region]


def parent_region():
    # Legitimate: runs in the submitting process only (never
    # registered, unreachable from any worker entry point).
    return os.environ.get("REPRO_REGION", "us-east")


register_builder("probe", build_probe)
