"""Seeded defect: a worker-executed builder reads ambient state."""

import os
import time

from repro.engine.registry import register_builder


def build_probe(seed=0):
    # Defect: wall clock and environment differ per process and per
    # run while the job's cache key claims seed-only inputs.
    started = time.time()
    region = os.environ.get("REPRO_REGION", "us-east")
    return [seed, started, region]


register_builder("probe", build_probe)
