"""Mini job-spec surface: the pickle boundary the par rules police."""


class JobSpec:
    def __init__(self, builder, params):
        self.builder = builder
        self.params = params


def freeze_params(params):
    return tuple(sorted(params.items()))
