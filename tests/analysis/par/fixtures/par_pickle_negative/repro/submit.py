"""Repaired twin: only plain data reaches the job spec."""

from repro.engine.jobs import JobSpec, freeze_params


def submit(seed):
    return JobSpec("fleet", params={"post_offset": seed})


def submit_log(seed, path):
    # The path crosses the boundary; the worker opens its own handle.
    return freeze_params({"seed": seed, "log_path": str(path)})
