"""Seeded defect: a lambda and an open handle cross the boundary."""

from repro.engine.jobs import JobSpec, freeze_params


def submit(seed):
    # Defect: lambdas do not pickle; the failure surfaces in the
    # worker, far from this call site.
    return JobSpec("fleet", params={"post": lambda x: x + seed})


def submit_log(seed, path):
    # Defect: a live file handle smuggles process state into params.
    return freeze_params({"seed": seed, "log": open(path)})
