"""Repaired twin: all builder state is job-local or returned."""

from repro.engine.registry import register_builder


def build_fleet(seed=0):
    totals = {"last_seed": seed}
    return [totals["last_seed"]]


def build_counted(seed=0):
    count = 1
    return [seed, count]


register_builder("fleet", build_fleet)
register_builder("counted", build_counted)
