"""Seeded defect: worker-executed builders mutate module state."""

from repro.engine.registry import register_builder

TOTALS = {}
_COUNTER = 0


def build_fleet(seed=0):
    # Defect: a per-process dict masquerading as shared state.
    TOTALS["last_seed"] = seed
    return [seed]


def build_counted(seed=0):
    # Defect: a global counter diverges by job placement.
    global _COUNTER
    _COUNTER = _COUNTER + 1
    return [seed, _COUNTER]


register_builder("fleet", build_fleet)
register_builder("counted", build_counted)
