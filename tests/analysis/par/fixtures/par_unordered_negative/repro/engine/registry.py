"""Mini registry: the worker dispatch surface the par rules anchor on."""

BUILDERS = {}


def register_builder(name, fn):
    """Registration is the edge the static call graph cannot see."""
    BUILDERS[name] = fn


def execute_spec(spec):
    """Single execution path shared by serial runs and workers."""
    builder = BUILDERS[spec.builder]
    return builder(seed=spec.seed)
