"""Repaired twin: the unordered source is sorted before accumulating."""

from repro.engine.registry import register_builder


def build_hosts(seed=0):
    names = {"pm-b", "pm-a", "pm-c"}
    hosts = []
    for name in sorted(names):
        hosts.append((seed, name))
    return hosts


register_builder("hosts", build_hosts)
