"""Seeded defect: set iteration order leaks into a worker's result."""

from repro.engine.registry import register_builder


def build_hosts(seed=0):
    names = {"pm-b", "pm-a", "pm-c"}
    hosts = []
    # Defect: accumulation order follows set order, which varies with
    # hash randomization — jobs=1 vs jobs=N results diverge.
    for name in names:
        hosts.append((seed, name))
    return hosts


register_builder("hosts", build_hosts)
