"""Fixture-driven tests for the meghpar rules (MEGH014–MEGH018).

Each fixture under ``fixtures/<case>/`` is a miniature project — a
``repro`` package tree that is *parsed, never imported* — holding a
seeded-in defect (positive case) or its repaired twin (negative case).
Every positive proves a genuinely interprocedural property: the rules
only fire because the defective function is reachable from a worker
entry point (or registered into the mini registry), and every negative
proves the repaired idiom stays silent.

The second half pins the architecture: meghpar runs over the *same*
project model and call graph instances as meghflow (parse-once extends
to resolve-once), and the real repository's worker-reachable set
demonstrably covers the engine → builders → ``Simulation.run`` step
pipeline.
"""

from __future__ import annotations

from pathlib import Path

import repro.analysis.engine as engine_module
from repro.analysis import LintConfig, lint_paths
from repro.analysis.engine import iter_python_files, parse_module
from repro.analysis.flow import build_call_graph, build_project
from repro.analysis.par import PAR_RULES, build_worker_context, run_par

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[3]


def _findings(case: str, rule: str):
    config = LintConfig(select=[rule])
    result = lint_paths([FIXTURES / case], config)
    assert not any(d.rule_id == "MEGH000" for d in result.diagnostics), (
        "fixture must parse"
    )
    return [d for d in result.diagnostics if d.rule_id == rule]


class TestSharedState:
    def test_module_dict_store_and_global_write_are_reported(self):
        findings = _findings("par_shared_positive", "MEGH014")
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "TOTALS" in messages
        assert "_COUNTER" in messages
        # Provenance: the finding says *why* this code runs in workers.
        assert all("register_builder" in f.message for f in findings)

    def test_job_local_state_is_clean(self):
        assert _findings("par_shared_negative", "MEGH014") == []


class TestUnorderedIteration:
    def test_set_iteration_into_accumulation_is_reported(self):
        findings = _findings("par_unordered_positive", "MEGH015")
        assert len(findings) == 1
        assert "set literal" in findings[0].message
        assert "sorted" in findings[0].message

    def test_sorted_wrapper_is_clean(self):
        assert _findings("par_unordered_negative", "MEGH015") == []


class TestPickleBoundary:
    def test_lambda_and_open_handle_into_spec_are_reported(self):
        findings = _findings("par_pickle_positive", "MEGH016")
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "lambda" in messages
        assert "open file handle" in messages

    def test_plain_data_params_are_clean(self):
        assert _findings("par_pickle_negative", "MEGH016") == []


class TestFloatReductionOrder:
    def test_sum_and_incremental_add_over_sets_are_reported(self):
        findings = _findings("par_float_positive", "MEGH017")
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "sum(...)" in messages
        assert "+=" in messages

    def test_fsum_over_sorted_is_clean(self):
        assert _findings("par_float_negative", "MEGH017") == []


class TestWorkerHygiene:
    def test_wall_clock_and_env_reads_in_worker_are_reported(self):
        findings = _findings("par_hygiene_positive", "MEGH018")
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "wall-clock" in messages
        assert "environment read" in messages

    def test_parent_side_env_read_is_clean(self):
        # ``parent_region`` reads the environment but is never
        # registered — scoping to the worker-reachable set is what
        # keeps the rule useful.
        assert _findings("par_hygiene_negative", "MEGH018") == []


class TestRegistryAndEngineIntegration:
    def test_par_rules_are_registered_with_the_engine(self):
        assert set(PAR_RULES) == {
            "MEGH014",
            "MEGH015",
            "MEGH016",
            "MEGH017",
            "MEGH018",
        }
        assert PAR_RULES.keys() <= engine_module._ENGINE_RULE_IDS

    def test_no_par_config_disables_the_pass(self):
        config = LintConfig(par=False)
        result = lint_paths([FIXTURES / "par_shared_positive"], config)
        assert not any(
            d.rule_id in PAR_RULES for d in result.diagnostics
        )

    def test_select_par_rule_validates(self):
        LintConfig(select=["MEGH016"]).validate()

    def test_flow_and_par_share_one_project_and_graph(self, monkeypatch):
        """Parse-once extends to resolve-once: one project model, one
        call graph, handed to both whole-program passes."""
        builds = []
        seen = {}
        real_build = engine_module.build_project
        real_flow = engine_module.run_flow
        real_par = engine_module.run_par

        def recording_build(parsed):
            project = real_build(parsed)
            builds.append(project)
            return project

        def recording_flow(parsed, select, ignore, project=None, graph=None):
            seen["flow"] = (project, graph)
            return real_flow(
                parsed, select, ignore, project=project, graph=graph
            )

        def recording_par(parsed, select, ignore, project=None, graph=None):
            seen["par"] = (project, graph)
            return real_par(
                parsed, select, ignore, project=project, graph=graph
            )

        monkeypatch.setattr(engine_module, "build_project", recording_build)
        monkeypatch.setattr(engine_module, "run_flow", recording_flow)
        monkeypatch.setattr(engine_module, "run_par", recording_par)
        lint_paths([FIXTURES / "par_shared_positive"])
        assert len(builds) == 1
        assert seen["flow"][0] is builds[0]
        assert seen["par"][0] is builds[0]
        assert seen["flow"][1] is seen["par"][1]
        assert seen["flow"][1] is not None


class TestRepositoryWorkerCoverage:
    def test_step_pipeline_is_worker_reachable(self):
        """The real repo's call graph demonstrably covers the engine →
        registered builders → ``Simulation.run`` pipeline, so the
        MEGH014–018 certifications are about the code that matters."""
        parsed = []
        for file_path in iter_python_files([REPO_ROOT / "src"]):
            module = parse_module(
                file_path.read_text(encoding="utf-8"), path=str(file_path)
            )
            if module.tree is not None and not module.skipped:
                parsed.append((module.path, module.tree))
        project = build_project(parsed)
        graph = build_call_graph(project)
        context = build_worker_context(project, graph)
        expected = [
            "repro.engine.pool._worker_main",
            "repro.engine.registry.execute_spec",
            "repro.engine.registry._build_planetlab",
            "repro.harness.builders.build_planetlab_simulation",
            "repro.cloudsim.simulation.Simulation.run",
            "repro.core.agent.MeghScheduler.from_simulation",
        ]
        for qualname in expected:
            assert context.is_reachable(qualname), qualname
        # Witness chains resolve to a human-readable provenance.
        witness = context.witness("repro.cloudsim.simulation.Simulation.run")
        assert "worker entry" in witness

    def test_run_par_without_shared_instances_builds_its_own(self):
        source = "def f():\n    return 1\n"
        module = parse_module(source, path="standalone.py")
        assert module.tree is not None
        assert run_par([(module.path, module.tree)]) == []
