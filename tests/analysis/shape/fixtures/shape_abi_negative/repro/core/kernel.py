"""Repaired twin of ``shape_abi_positive``: every pointer witnessed.

Covers all four certification paths: a declared attribute, a local
alias of one, a local owning constructor, and contracted parameters
(``replay_rows`` requires owned contiguous int64 rows/starts).
"""

import numpy as np


class Kernel:
    def setup(self):
        self._args = np.zeros(8, dtype=np.int64)
        self._cmb_idx = np.zeros(64, dtype=np.int64)
        self._cmb_val = np.empty(64, dtype=np.float64)

    def marshal(self):
        args = self._args
        args[0] = self._cmb_idx.ctypes.data
        args[1] = self._cmb_val.ctypes.data
        scratch = np.empty(16, dtype=np.float64)
        args[2] = scratch.ctypes.data
        cmb = self._cmb_idx
        args[3] = cmb.ctypes.data

    def replay_rows(self, matrix, rows, starts, pending):
        return rows.ctypes.data, starts.ctypes.data
