"""Seeded MEGH021 defects at the C ABI boundary.

Three ways to hand the kernel a pointer it must not trust: a declared
buffer constructed with the wrong element type, a declared buffer
rebound to a view, and a raw ``.ctypes`` read on an uncontracted
parameter.
"""

import numpy as np


class Kernel:
    def setup(self):
        # Defect 1: '_cmb_idx' is declared int64 but built float64.
        self._cmb_idx = np.zeros(64, dtype=np.float64)
        # Defect 2: '_out_val' rebound to a view — not an owning buffer.
        self._out_val = self._vals_flat[:32]

    def marshal(self, batch):
        # Defect 3: no witnessed construction path for 'batch'.
        return batch.ctypes.data
