"""Repaired twin of ``shape_aliasing_positive``: no live overlap."""

import numpy as np


class Scratch:
    def shift(self):
        buf = self._vals_flat
        # The shifted region is copied out before the in-place write.
        shifted = buf[1:].copy()
        np.add(buf[:63], shifted, out=buf[:63])
        # Writing an operand onto itself is elementwise well-defined.
        np.multiply(buf, buf, out=buf)

    def blit(self):
        staged = self._cols_flat[8:24].copy()
        np.copyto(self._cols_flat[:16], staged)
