"""Seeded MEGH023 defects: overlapping in-place reads and writes."""

import numpy as np


class Scratch:
    def shift(self):
        buf = self._vals_flat
        # Defect 1: out= target and an input are views of the same base
        # with different regions — elements are read after overwrite.
        np.add(buf[:63], buf[1:], out=buf[:63])

    def blit(self):
        # Defect 2: np.copyto over overlapping regions of one buffer.
        np.copyto(self._cols_flat[:16], self._cols_flat[8:24])
