"""Repaired twin of ``shape_broadcast_positive``: silent by design.

The promotion is declared with an explicit unit axis, and the N-axis
operand is aggregated onto the M axis (``bincount`` gather) before the
elementwise combine — both idioms the interpreter proves exact.
"""

import numpy as np


class Planner:
    def score(self):
        # Explicit unit axis: (1, M) * (K, M) is exact broadcasting.
        scaled = self._tmp * self.pm_mips[None, :]
        # Aggregate N -> M first, then combine on the shared M axis.
        per_pm = np.bincount(self.host_of, weights=self.vm_mips)
        good = scaled + per_pm[None, :]
        return good
