"""Seeded MEGH019 defects: a dim conflict and an implicit promotion.

Parsed, never imported.  ``self._tmp`` is the declared (K, M) float64
candidate scratch; ``vm_mips`` is the (N,) per-VM vector and
``pm_mips`` the (M,) per-PM vector from the dimension table.
"""

import numpy as np


class Planner:
    def score(self):
        # Defect 1 (error): (K, M) + (N,) — the trailing dims M and N
        # conflict outright; this raises at runtime unless N == M.
        bad = self._tmp + self.vm_mips
        # Defect 2 (warning): (K, M) * (M,) broadcasts, but only by an
        # implicit rank promotion that is not declared intentional.
        scaled = self._tmp * self.pm_mips
        return bad, scaled
