"""Repaired twin of ``shape_contract_positive``: contracts satisfied."""

import numpy as np


class Staging:
    def push(self, pending, matrix):
        cols = np.zeros(4, dtype=np.int64)
        vals = np.zeros(4, dtype=np.float64)
        rows = np.zeros(2, dtype=np.int64)
        pending.enqueue(matrix, 3, 0.5, cols, vals, rows)

    def flush(self, backend, matrix, pending):
        # Fancy indexing materializes an owned contiguous copy.
        rows = self._pend_rows[self._dirty_rows]
        starts = np.zeros(4, dtype=np.int64)
        backend.replay_rows(matrix, rows, starts, pending)
