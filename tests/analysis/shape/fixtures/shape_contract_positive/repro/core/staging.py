"""Seeded MEGH022 defects at contracted call boundaries.

``enqueue`` declares parallel 1-d int64/float64 vectors;
``replay_rows`` additionally requires owned contiguous buffers (their
``.ctypes.data`` crosses the C ABI).
"""

import numpy as np


class Staging:
    def push(self, pending, matrix):
        # Defect 1: 'columns' built float64 where the contract says int64.
        cols = np.zeros(4, dtype=np.float64)
        vals = np.zeros(4, dtype=np.float64)
        # Defect 2: 'rows' is rank 2 where the contract says a vector.
        rows = np.zeros((2, 2), dtype=np.int64)
        pending.enqueue(matrix, 3, 0.5, cols, vals, rows)

    def flush(self, backend, matrix, pending):
        # Defect 3: a view flows into 'rows', which must own its buffer.
        rows = self._pend_rows[:4]
        starts = np.zeros(4, dtype=np.int64)
        backend.replay_rows(matrix, rows, starts, pending)
