"""Repaired twin of ``shape_dtype_positive``: canonical dtypes only."""

import numpy as np


class Accumulator:
    def index_rows(self):
        return np.arange(self.num_vms, dtype=np.int64)

    def rebuild(self):
        self._pm_demand_mips = np.zeros(self.num_pms, dtype=np.float64)

    def pm_demand_mips(self):
        return self._pm_demand_mips
