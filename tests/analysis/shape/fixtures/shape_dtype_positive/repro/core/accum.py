"""Seeded MEGH020 defects: platform int, field drift, return drift."""

import numpy as np


class Accumulator:
    def index_rows(self):
        # Defect 1: platform-int leak (int32 on Windows/32-bit).
        return np.arange(self.num_vms)

    def rebuild(self):
        # Defect 2: the declared float64 aggregate is rebuilt as int64.
        self._pm_demand_mips = np.zeros(self.num_pms, dtype=np.int64)

    def pm_demand_mips(self):
        # Defect 3: declared to return float64, returns the int64 map.
        return self.host_of
