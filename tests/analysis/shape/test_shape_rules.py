"""Fixture-driven tests for the meghshape rules (MEGH019–MEGH023).

Each fixture under ``fixtures/<case>/`` is a miniature project — a
``repro`` package tree that is *parsed, never imported* — holding
seeded-in defects (positive case) or their repaired twin (negative
case).  The positives prove each rule fires on the exact hazard class
it documents (broadcast conflicts, dtype drift, unwitnessed ABI
pointers, contract violations, in-place aliasing) and the negatives
prove the sanctioned repair idioms stay silent.

The second half pins the architecture: meghshape runs over the *same*
project model instance as meghflow and meghpar (parse-once extends to
resolve-once), the MEGH021 certification over the real repository is
non-vacuous (every buffer entering the C argument block carries a
witnessed construction chain), and the content-hash cache replays
shape findings exactly (cold == warm).
"""

from __future__ import annotations

from pathlib import Path

import repro.analysis.engine as engine_module
from repro.analysis import LintConfig, lint_paths
from repro.analysis.cache import (
    LintCache,
    _toolchain_hash,
    _toolchain_sources,
)
from repro.analysis.engine import iter_python_files, parse_module
from repro.analysis.flow import build_project
from repro.analysis.shape import (
    ABI_BUFFER_DTYPES,
    SHAPE_RULES,
    run_shape,
)
from repro.analysis.shape.abi import check_kernel_abi

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[3]


def _findings(case: str, rule: str):
    config = LintConfig(select=[rule])
    result = lint_paths([FIXTURES / case], config)
    assert not any(d.rule_id == "MEGH000" for d in result.diagnostics), (
        "fixture must parse"
    )
    return [d for d in result.diagnostics if d.rule_id == rule]


def _build_fixture_project(case: str):
    parsed = []
    for file_path in iter_python_files([FIXTURES / case]):
        module = parse_module(
            file_path.read_text(encoding="utf-8"), path=str(file_path)
        )
        if module.tree is not None and not module.skipped:
            parsed.append((module.path, module.tree))
    return build_project(parsed)


class TestBroadcastRank:
    def test_conflict_errors_and_promotion_warns(self):
        findings = _findings("shape_broadcast_positive", "MEGH019")
        assert len(findings) == 2
        conflict, promotion = sorted(findings, key=lambda d: d.line)
        assert str(conflict.severity) == "error"
        assert "(K, M)" in conflict.message and "(N,)" in conflict.message
        assert "M vs N" in conflict.message
        assert str(promotion.severity) == "warning"
        assert "rank promotion" in promotion.message
        # The warning teaches both sanctioned repairs.
        assert "[None, :]" in promotion.message
        assert "meghlint: ignore[MEGH019]" in promotion.message

    def test_declared_unit_axis_and_bincount_gather_are_clean(self):
        assert _findings("shape_broadcast_negative", "MEGH019") == []


class TestDtypeDrift:
    def test_platform_int_field_and_return_drift_are_reported(self):
        findings = _findings("shape_dtype_positive", "MEGH020")
        assert len(findings) == 3
        messages = " | ".join(f.message for f in findings)
        assert "platform int" in messages
        assert "field '_pm_demand_mips'" in messages
        assert "method 'pm_demand_mips'" in messages

    def test_canonical_dtypes_are_clean(self):
        assert _findings("shape_dtype_negative", "MEGH020") == []


class TestKernelAbi:
    def test_mismatch_rebind_and_raw_pointer_are_reported(self):
        findings = _findings("shape_abi_positive", "MEGH021")
        assert len(findings) == 3
        messages = " | ".join(f.message for f in findings)
        assert "declared int64" in messages
        assert "constructed with dtype float64" in messages
        assert "rebound" in messages
        assert "no witnessed path" in messages

    def test_witnessed_constructions_are_clean(self):
        assert _findings("shape_abi_negative", "MEGH021") == []

    def test_every_certification_path_carries_a_witness(self):
        """Direct report inspection: declared attribute, local alias,
        owning local, and contracted parameter all certify with a
        human-readable provenance chain."""
        report = check_kernel_abi(_build_fixture_project("shape_abi_negative"))
        assert report.diagnostics == []
        witnesses = {c.buffer: c.witness for c in report.certificates}
        assert "constructed at" in witnesses["_cmb_val"]
        assert "alias 'cmb' -> '_cmb_idx'" in [
            c.witness for c in report.certificates if c.buffer == "_cmb_idx"
        ][-1]
        assert "local owning constructor" in witnesses["scratch"]
        assert "discharged at call sites by MEGH022" in witnesses["rows"]
        assert report.certified_buffers() >= {
            "_cmb_idx",
            "_cmb_val",
            "scratch",
            "rows",
            "starts",
        }


class TestShapeContracts:
    def test_dtype_rank_and_ownership_violations_are_reported(self):
        findings = _findings("shape_contract_positive", "MEGH022")
        assert len(findings) == 3
        messages = " | ".join(f.message for f in findings)
        assert "dtype float64 != declared int64" in messages
        assert "rank 2" in messages
        assert "requires an owned" in messages
        # Every violation names the contracted callee in its witness.
        assert all(
            "[witness: " in f.message
            and "repro.core.staging.Staging" in f.message
            for f in findings
        )
        assert "columns@repro.core.kern.PendingUpdates.enqueue" in messages
        assert "rows@repro.core.kern.KernelBackend.replay_rows" in messages

    def test_satisfying_arguments_are_clean(self):
        assert _findings("shape_contract_negative", "MEGH022") == []


class TestInPlaceAliasing:
    def test_overlapping_out_and_copyto_are_reported(self):
        findings = _findings("shape_aliasing_positive", "MEGH023")
        assert len(findings) == 2
        assert all(
            "views of" in f.message and "different region" in f.message
            for f in findings
        )
        messages = " | ".join(f.message for f in findings)
        assert "self._vals_flat" in messages
        assert "self._cols_flat" in messages

    def test_copy_before_write_and_self_assignment_are_clean(self):
        assert _findings("shape_aliasing_negative", "MEGH023") == []


class TestRegistryAndEngineIntegration:
    def test_shape_rules_are_registered_with_the_engine(self):
        assert set(SHAPE_RULES) == {
            "MEGH019",
            "MEGH020",
            "MEGH021",
            "MEGH022",
            "MEGH023",
        }
        assert SHAPE_RULES.keys() <= engine_module._ENGINE_RULE_IDS

    def test_no_shape_config_disables_the_pass(self):
        config = LintConfig(shape=False)
        result = lint_paths([FIXTURES / "shape_dtype_positive"], config)
        assert not any(
            d.rule_id in SHAPE_RULES for d in result.diagnostics
        )

    def test_select_shape_rule_validates(self):
        LintConfig(select=["MEGH021"]).validate()

    def test_flow_par_and_shape_share_one_project(self, monkeypatch):
        """Resolve-once covers all three whole-program passes: one
        project model built, handed to flow, par, and shape alike."""
        builds = []
        seen = {}
        real_build = engine_module.build_project
        real_flow = engine_module.run_flow
        real_par = engine_module.run_par
        real_shape = engine_module.run_shape

        def recording_build(parsed):
            project = real_build(parsed)
            builds.append(project)
            return project

        def recording_flow(parsed, select, ignore, project=None, graph=None):
            seen["flow"] = project
            return real_flow(
                parsed, select, ignore, project=project, graph=graph
            )

        def recording_par(parsed, select, ignore, project=None, graph=None):
            seen["par"] = project
            return real_par(
                parsed, select, ignore, project=project, graph=graph
            )

        def recording_shape(parsed, select, ignore, project=None, graph=None):
            seen["shape"] = project
            return real_shape(
                parsed, select, ignore, project=project, graph=graph
            )

        monkeypatch.setattr(engine_module, "build_project", recording_build)
        monkeypatch.setattr(engine_module, "run_flow", recording_flow)
        monkeypatch.setattr(engine_module, "run_par", recording_par)
        monkeypatch.setattr(engine_module, "run_shape", recording_shape)
        lint_paths([FIXTURES / "shape_dtype_positive"])
        assert len(builds) == 1
        assert seen["flow"] is builds[0]
        assert seen["par"] is builds[0]
        assert seen["shape"] is builds[0]

    def test_run_shape_without_shared_project_builds_its_own(self):
        source = "def f():\n    return 1\n"
        module = parse_module(source, path="standalone.py")
        assert module.tree is not None
        assert run_shape([(module.path, module.tree)]) == []


class TestRepositoryAbiCoverage:
    def test_every_c_boundary_read_is_certified(self):
        """The acceptance bar for MEGH021: on the real tree, zero
        uncertified ``.ctypes`` reads, and the certificate set covers a
        substantial majority of the declared ABI buffers (the handful
        of staging vectors that never cross the boundary directly flow
        through contracted ``replay_rows`` parameters instead)."""
        parsed = []
        for file_path in iter_python_files([REPO_ROOT / "src"]):
            module = parse_module(
                file_path.read_text(encoding="utf-8"), path=str(file_path)
            )
            if module.tree is not None and not module.skipped:
                parsed.append((module.path, module.tree))
        report = check_kernel_abi(build_project(parsed))
        assert report.diagnostics == []
        assert len(report.certificates) >= 50
        certified = report.certified_buffers()
        declared = set(ABI_BUFFER_DTYPES)
        assert len(certified & declared) >= 30
        assert all("constructed at" in c.witness or "contract on" in c.witness
                   or "owning constructor" in c.witness
                   for c in report.certificates)


class TestCacheReplay:
    def _signatures(self, result):
        return sorted(
            (d.path, d.line, d.rule_id, d.message)
            for d in result.diagnostics
        )

    def test_shape_findings_replay_exactly(self, tmp_path):
        """Cold == warm: shape diagnostics come back identical from the
        whole-program cache record, with zero per-file misses."""
        fixture = FIXTURES / "shape_contract_positive"
        cold = lint_paths([fixture], cache=LintCache(tmp_path / "cache"))
        warm = lint_paths([fixture], cache=LintCache(tmp_path / "cache"))
        assert warm.cache_misses == 0
        assert warm.cache_hits > 0
        assert self._signatures(cold) == self._signatures(warm)
        assert sum(
            1 for d in warm.diagnostics if d.rule_id == "MEGH022"
        ) == 3

    def test_toolchain_hash_covers_the_shape_analyzer(self):
        sources = _toolchain_sources()
        names = {p.name for p in sources}
        shape_dir = (
            REPO_ROOT / "src" / "repro" / "analysis" / "shape"
        ).resolve()
        assert any(
            shape_dir in p.resolve().parents for p in sources
        ), names
        assert {"dims.py", "absint.py", "abi.py"} <= names

    def test_mutating_analyzer_source_busts_the_cache(self, tmp_path):
        """The regression the checklist demands: editing an analyzer
        module changes the toolchain hash, so every cached record is
        invalidated on the next run."""
        shadow = tmp_path / "analysis"
        shadow.mkdir()
        (shadow / "rules.py").write_text("THRESHOLD = 1\n")
        before = _toolchain_hash(package_root=shadow)
        (shadow / "rules.py").write_text("THRESHOLD = 2\n")
        after = _toolchain_hash(package_root=shadow)
        assert before != after
        # And a comment-only no-op still invalidates — the hash is over
        # bytes, deliberately conservative.
        (shadow / "rules.py").write_text("THRESHOLD = 2  # note\n")
        assert _toolchain_hash(package_root=shadow) != after
