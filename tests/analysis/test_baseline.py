"""Baseline mechanism: load validation, apply/update semantics, CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    BaselineError,
    LintResult,
    apply_baseline,
    load_baseline,
    update_baseline,
)
from repro.analysis.cli import run as lint_cli
from repro.analysis.diagnostics import Diagnostic, Severity


def _diagnostic(path="pkg/mod.py", rule="MEGH002", message="wall clock"):
    return Diagnostic(
        path=path,
        line=3,
        column=1,
        rule_id=rule,
        severity=Severity.ERROR,
        message=message,
    )


def _entry(count=1, reason="known wall-clock read in legacy shim"):
    return BaselineEntry(
        path="pkg/mod.py",
        rule="MEGH002",
        message="wall clock",
        count=count,
        reason=reason,
    )


class TestLoad:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BaselineError, match="no such baseline"):
            load_baseline(tmp_path / "nope.json")

    def test_invalid_json_raises(self, tmp_path):
        target = tmp_path / "b.json"
        target.write_text("{not json")
        with pytest.raises(BaselineError, match="not valid JSON"):
            load_baseline(target)

    def test_entry_without_reason_raises(self, tmp_path):
        target = tmp_path / "b.json"
        target.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "path": "a.py",
                            "rule": "MEGH002",
                            "message": "m",
                            "count": 1,
                        }
                    ]
                }
            )
        )
        with pytest.raises(BaselineError, match="missing required field"):
            load_baseline(target)

    def test_blank_reason_raises(self, tmp_path):
        target = tmp_path / "b.json"
        target.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "path": "a.py",
                            "rule": "MEGH002",
                            "message": "m",
                            "count": 1,
                            "reason": "   ",
                        }
                    ]
                }
            )
        )
        with pytest.raises(BaselineError, match="written justification"):
            load_baseline(target)

    def test_round_trip(self, tmp_path):
        target = tmp_path / "b.json"
        Baseline(entries=(_entry(),)).save(target)
        assert load_baseline(target).entries == (_entry(),)


class TestApply:
    def test_absorbs_matching_findings(self):
        result = LintResult(diagnostics=[_diagnostic()])
        apply_baseline(result, Baseline(entries=(_entry(),)))
        assert result.diagnostics == []
        assert result.baselined == 1
        assert result.stale_baseline == []

    def test_extra_findings_survive(self):
        result = LintResult(
            diagnostics=[_diagnostic(), _diagnostic(), _diagnostic()]
        )
        apply_baseline(result, Baseline(entries=(_entry(count=2),)))
        assert len(result.diagnostics) == 1
        assert result.baselined == 2

    def test_overcounting_entry_is_stale(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        result = LintResult(diagnostics=[_diagnostic()])
        apply_baseline(
            result, Baseline(entries=(_entry(count=3),)), root=tmp_path
        )
        assert result.baselined == 1
        assert len(result.stale_baseline) == 1
        assert "expects 3" in result.stale_baseline[0]

    def test_vanished_entry_is_stale(self):
        result = LintResult(diagnostics=[])
        apply_baseline(result, Baseline(entries=(_entry(),)))
        assert result.stale_baseline and result.baselined == 0

    def test_deleted_file_entry_is_reported_distinctly(self, tmp_path):
        # The entry's file is gone: the stale note must say so rather
        # than pretend the count merely drifted — a deleted file can
        # never match again, and its budget would otherwise absorb new
        # findings at the old signature.
        result = LintResult(diagnostics=[])
        apply_baseline(result, Baseline(entries=(_entry(),)), root=tmp_path)
        assert len(result.stale_baseline) == 1
        assert "no longer exists" in result.stale_baseline[0]
        assert "--update-baseline" in result.stale_baseline[0]

    def test_existing_file_entry_keeps_count_message(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        result = LintResult(diagnostics=[])
        apply_baseline(result, Baseline(entries=(_entry(),)), root=tmp_path)
        assert len(result.stale_baseline) == 1
        assert "expects 1" in result.stale_baseline[0]
        assert "no longer exists" not in result.stale_baseline[0]

    def test_message_mismatch_is_not_absorbed(self):
        result = LintResult(diagnostics=[_diagnostic(message="other")])
        apply_baseline(result, Baseline(entries=(_entry(),)))
        assert len(result.diagnostics) == 1
        assert result.baselined == 0


class TestUpdate:
    def test_preserves_reasons_for_surviving_entries(self):
        result = LintResult(diagnostics=[_diagnostic()])
        updated = update_baseline(
            result, previous=Baseline(entries=(_entry(reason="kept"),))
        )
        assert len(updated.entries) == 1
        assert updated.entries[0].reason == "kept"

    def test_new_entries_get_placeholder_reason(self):
        result = LintResult(diagnostics=[_diagnostic()])
        updated = update_baseline(result, previous=None)
        assert "TODO" in updated.entries[0].reason

    def test_counts_aggregate_identical_signatures(self):
        result = LintResult(diagnostics=[_diagnostic(), _diagnostic()])
        updated = update_baseline(result)
        assert updated.entries[0].count == 2

    def test_deleted_file_entries_are_purged(self):
        # Rebuilding from current findings drops entries whose file is
        # gone — nothing matches, so nothing carries over.
        result = LintResult(diagnostics=[])
        updated = update_baseline(
            result, previous=Baseline(entries=(_entry(),))
        )
        assert updated.entries == ()


def _write_finding_file(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nstamp = time.time()\n")
    return bad


class TestCli:
    def test_baseline_absorbs_findings(self, tmp_path, capsys):
        _write_finding_file(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        assert (
            lint_cli(
                [
                    str(tmp_path),
                    "--baseline",
                    str(baseline_file),
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert baseline_file.exists()
        capsys.readouterr()
        assert (
            lint_cli([str(tmp_path), "--baseline", str(baseline_file)]) == 0
        )
        output = capsys.readouterr().out
        assert "baselined" in output

    def test_new_finding_fails_despite_baseline(self, tmp_path):
        _write_finding_file(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        lint_cli(
            [
                str(tmp_path),
                "--baseline",
                str(baseline_file),
                "--update-baseline",
            ]
        )
        (tmp_path / "worse.py").write_text(
            "import time\nother = time.time()\n"
        )
        assert (
            lint_cli([str(tmp_path), "--baseline", str(baseline_file)]) == 1
        )

    def test_missing_baseline_is_usage_error(self, tmp_path):
        assert (
            lint_cli(
                [str(tmp_path), "--baseline", str(tmp_path / "absent.json")]
            )
            == 2
        )

    def test_update_requires_baseline_path(self, tmp_path):
        assert lint_cli([str(tmp_path), "--update-baseline"]) == 2

    def test_stale_baseline_fails_only_under_strict(self, tmp_path, capsys):
        _write_finding_file(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        lint_cli(
            [
                str(tmp_path),
                "--baseline",
                str(baseline_file),
                "--update-baseline",
            ]
        )
        (tmp_path / "bad.py").unlink()  # the baselined finding vanishes
        capsys.readouterr()
        assert (
            lint_cli([str(tmp_path), "--baseline", str(baseline_file)]) == 0
        )
        assert (
            lint_cli(
                [
                    str(tmp_path),
                    "--baseline",
                    str(baseline_file),
                    "--strict-suppressions",
                ]
            )
            == 1
        )
        assert "stale baseline entry" in capsys.readouterr().out

    def test_update_purges_deleted_file_entries(self, tmp_path, capsys):
        _write_finding_file(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        lint_cli(
            [
                str(tmp_path),
                "--baseline",
                str(baseline_file),
                "--update-baseline",
            ]
        )
        (tmp_path / "bad.py").unlink()
        capsys.readouterr()
        assert (
            lint_cli(
                [
                    str(tmp_path),
                    "--baseline",
                    str(baseline_file),
                    "--update-baseline",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "purged baseline entry" in out
        assert json.loads(baseline_file.read_text())["entries"] == []

    def test_analyzer_crash_exits_two(self, tmp_path, monkeypatch, capsys):
        import repro.analysis.cli as cli_module

        def explode(paths, config):
            raise RuntimeError("boom")

        monkeypatch.setattr(cli_module, "lint_paths", explode)
        assert lint_cli([str(tmp_path)]) == 2
        assert "internal error" in capsys.readouterr().out
