"""Engine behaviour (suppressions, walking, reporters) and the lint CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.cli import run as lint_cli
from repro.analysis.reporting import render_sarif
from repro.cli import main as repro_main

VIOLATING = "import time\nstart = time.time()\nx = start == 0.0\n"
CLEAN = "import time\nstart = time.perf_counter()\n"


class TestSuppressions:
    def test_targeted_ignore_suppresses_only_that_rule(self):
        source = "x = 1.5\nok = x == 1.5  # meghlint: ignore[MEGH003] -- sentinel set two lines up\n"
        result = lint_source(source)
        assert result.diagnostics == []
        assert result.suppressed == 1

    def test_ignore_of_other_rule_does_not_suppress(self):
        source = "x = 1.5\nok = x == 1.5  # meghlint: ignore[MEGH004]\n"
        result = lint_source(source)
        assert len(result.diagnostics) == 1

    def test_blanket_ignore_suppresses_all_rules_on_line(self):
        source = "import time\nt = time.time() == 0.0  # meghlint: ignore\n"
        result = lint_source(source)
        assert result.diagnostics == []
        assert result.suppressed == 2

    def test_skip_file_marker(self):
        source = "# meghlint: skip-file\nimport time\nt = time.time()\n"
        result = lint_source(source)
        assert result.diagnostics == []
        assert result.files_checked == 1

    def test_syntax_error_reported_as_megh000(self):
        result = lint_source("def broken(:\n")
        assert len(result.diagnostics) == 1
        assert result.diagnostics[0].rule_id == "MEGH000"


class TestPathWalking:
    def test_lints_directories_recursively(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "bad.py").write_text(VIOLATING)
        (package / "good.py").write_text(CLEAN)
        result = lint_paths([tmp_path])
        assert result.files_checked == 2
        assert {d.rule_id for d in result.diagnostics} == {
            "MEGH002",
            "MEGH003",
        }

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope"])

    def test_pycache_excluded(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text(VIOLATING)
        result = lint_paths([tmp_path])
        assert result.files_checked == 0


class TestReporters:
    def test_text_report_lists_findings_and_summary(self, tmp_path):
        (tmp_path / "bad.py").write_text(VIOLATING)
        result = lint_paths([tmp_path])
        text = render_text(result)
        assert "bad.py:2:9: MEGH002" in text
        assert "meghlint:" in text.splitlines()[-1]

    def test_text_report_clean_summary(self, tmp_path):
        (tmp_path / "good.py").write_text(CLEAN)
        text = render_text(lint_paths([tmp_path]))
        assert "ok" in text

    def test_json_report_round_trips(self, tmp_path):
        (tmp_path / "bad.py").write_text(VIOLATING)
        document = json.loads(render_json(lint_paths([tmp_path])))
        assert document["tool"] == "meghlint"
        assert document["summary"]["findings"] == 2
        assert document["summary"]["clean"] is False
        rules = {d["rule"] for d in document["diagnostics"]}
        assert rules == {"MEGH002", "MEGH003"}

    def test_sarif_report_is_valid_and_complete(self, tmp_path):
        (tmp_path / "bad.py").write_text(VIOLATING)
        document = json.loads(render_sarif(lint_paths([tmp_path])))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "meghlint"
        # Every rule the engine knows — per-file, flow, par, shape, and
        # the MEGH013 meta-rule — is described in the driver metadata.
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        for rule_id in ("MEGH002", "MEGH010", "MEGH014", "MEGH021",
                       "MEGH013"):
            assert rule_id in rule_ids
        results = run["results"]
        assert {r["ruleId"] for r in results} == {"MEGH002", "MEGH003"}
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("bad.py")
        assert location["region"]["startLine"] == 2


class TestLintCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "good.py").write_text(CLEAN)
        assert lint_cli([str(tmp_path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_exit_one_with_readable_report_on_findings(
        self, tmp_path, capsys
    ):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert lint_cli([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "MEGH002" in out and "MEGH003" in out
        assert "finding(s)" in out

    def test_select_restricts_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert lint_cli(["--select", "MEGH004", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_ignore_drops_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        code = lint_cli(
            ["--ignore", "MEGH002,MEGH003", str(tmp_path)]
        )
        assert code == 0
        capsys.readouterr()

    def test_unknown_rule_id_is_usage_error(self, tmp_path, capsys):
        assert lint_cli(["--select", "MEGH999", str(tmp_path)]) == 2
        assert "MEGH999" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert lint_cli([str(tmp_path / "ghost")]) == 2
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert lint_cli(["--format", "json", str(tmp_path)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["errors"] == 1

    def test_sarif_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert lint_cli(["--format", "sarif", str(tmp_path)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        assert len(document["runs"][0]["results"]) == 2

    def test_list_rules(self, capsys):
        assert lint_cli(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("MEGH001", "MEGH006"):
            assert rule_id in out
        assert "MEGH021" in out and "(shape)" in out


class TestReproCliIntegration:
    def test_lint_subcommand_dispatches(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(VIOLATING)
        assert repro_main(["lint", str(tmp_path)]) == 1
        assert "MEGH002" in capsys.readouterr().out

    def test_lint_listed_in_experiment_list(self, capsys):
        assert repro_main(["list"]) == 0
        assert "lint" in capsys.readouterr().out
