"""Content-hash result cache: hits, invalidation, and exactness.

The cache contract is strict: a warm run must be *indistinguishable*
from a cold run — same diagnostics, same suppression accounting (so
MEGH013 unused-suppression findings survive replay), same exit code —
with only the per-file rule execution skipped.  Parsing always happens
(the parse-once architecture and the whole-program passes need the
trees), so the cache is a rule-execution cache, not a parse cache.
"""

from __future__ import annotations

import json

from repro.analysis import LintConfig, lint_paths
from repro.analysis.cache import CACHE_FILE_NAME, LintCache
from repro.analysis.cli import run as lint_cli
from repro.analysis.reporting import render_json, render_text


def _write_package(root):
    (root / "pkg").mkdir()
    (root / "pkg" / "__init__.py").write_text("")
    (root / "pkg" / "clock.py").write_text(
        "import time\nstamp = time.time()\n"
    )
    (root / "pkg" / "quiet.py").write_text("VALUE = 3\n")
    return root / "pkg"


def _signatures(result):
    return sorted(
        (d.path, d.line, d.rule_id, d.message) for d in result.diagnostics
    )


class TestHitMissAccounting:
    def test_cold_run_is_all_misses(self, tmp_path):
        package = _write_package(tmp_path)
        cache = LintCache(tmp_path / "cache")
        result = lint_paths([package], cache=cache)
        assert result.cache_misses == 3
        assert result.cache_hits == 0
        assert (tmp_path / "cache" / CACHE_FILE_NAME).exists()

    def test_warm_run_is_all_hits_and_identical(self, tmp_path):
        package = _write_package(tmp_path)
        cold = lint_paths([package], cache=LintCache(tmp_path / "cache"))
        warm = lint_paths([package], cache=LintCache(tmp_path / "cache"))
        assert warm.cache_hits == 3
        assert warm.cache_misses == 0
        assert _signatures(warm) == _signatures(cold)
        assert warm.files_checked == cold.files_checked

    def test_uncached_run_reports_no_counts(self, tmp_path):
        package = _write_package(tmp_path)
        result = lint_paths([package])
        assert result.cache_hits is None
        assert result.cache_misses is None


class TestInvalidation:
    def test_editing_one_file_misses_only_that_file(self, tmp_path):
        package = _write_package(tmp_path)
        lint_paths([package], cache=LintCache(tmp_path / "cache"))
        (package / "quiet.py").write_text(
            "import time\nother = time.time()\n"
        )
        warm = lint_paths([package], cache=LintCache(tmp_path / "cache"))
        assert warm.cache_hits == 2
        assert warm.cache_misses == 1
        # The new finding is real — the whole-program record was also
        # invalidated and the fresh per-file run reported it.
        assert any(
            d.path.endswith("quiet.py") and d.rule_id == "MEGH002"
            for d in warm.diagnostics
        )

    def test_config_change_invalidates(self, tmp_path):
        package = _write_package(tmp_path)
        lint_paths([package], cache=LintCache(tmp_path / "cache"))
        narrowed = lint_paths(
            [package],
            LintConfig(select=["MEGH002"]),
            cache=LintCache(tmp_path / "cache"),
        )
        assert narrowed.cache_misses == 3
        assert narrowed.cache_hits == 0

    def test_corrupt_cache_file_is_tolerated(self, tmp_path):
        package = _write_package(tmp_path)
        cache_dir = tmp_path / "cache"
        lint_paths([package], cache=LintCache(cache_dir))
        (cache_dir / CACHE_FILE_NAME).write_text("{broken")
        result = lint_paths([package], cache=LintCache(cache_dir))
        assert result.cache_misses == 3
        # And the rewritten file works again on the next run.
        again = lint_paths([package], cache=LintCache(cache_dir))
        assert again.cache_hits == 3


class TestSuppressionReplay:
    def test_warm_runs_keep_megh013_exact(self, tmp_path):
        package = _write_package(tmp_path)
        (package / "mixed.py").write_text(
            "import time\n"
            "used = time.time()  "
            "# meghlint: ignore[MEGH002] -- sanctioned in this fixture\n"
            "quiet = 1  "
            "# meghlint: ignore[MEGH002] -- never fires, stays unused\n"
        )
        cold = lint_paths([package], cache=LintCache(tmp_path / "cache"))
        warm = lint_paths([package], cache=LintCache(tmp_path / "cache"))
        assert warm.cache_hits == 4
        assert _signatures(cold) == _signatures(warm)
        assert len(warm.unused_suppressions) == 1
        assert warm.unused_suppressions[0].rule_id == "MEGH013"
        assert warm.unused_suppressions[0].line == 3
        assert [
            (d.line, d.message) for d in warm.unused_suppressions
        ] == [(d.line, d.message) for d in cold.unused_suppressions]
        assert warm.suppressed == cold.suppressed == 1


class TestReporting:
    def test_text_summary_shows_cache_counts(self, tmp_path):
        package = _write_package(tmp_path)
        lint_paths([package], cache=LintCache(tmp_path / "cache"))
        warm = lint_paths([package], cache=LintCache(tmp_path / "cache"))
        assert "cache: 3 hit(s), 0 miss(es)" in render_text(warm)
        summary = json.loads(render_json(warm))["summary"]
        assert summary["cache_hits"] == 3
        assert summary["cache_misses"] == 0

    def test_uncached_summary_omits_cache_counts(self, tmp_path):
        package = _write_package(tmp_path)
        result = lint_paths([package])
        assert "cache:" not in render_text(result)


class TestCli:
    def test_cache_dir_flag_round_trips(self, tmp_path, capsys):
        package = _write_package(tmp_path)
        cache_dir = tmp_path / "cache"
        argv = [str(package), "--cache-dir", str(cache_dir)]
        assert lint_cli(argv) == 1  # the MEGH002 finding is real
        assert "0 hit(s), 3 miss(es)" in capsys.readouterr().out
        assert lint_cli(argv) == 1
        assert "3 hit(s), 0 miss(es)" in capsys.readouterr().out
