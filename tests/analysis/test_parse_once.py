"""Satellite 6: one ``ast.parse`` per file, and lint stays fast.

The per-file rules and the whole-program meghflow pass must share a
single AST per module.  Re-parsing is both a wall-time regression and a
correctness hazard (two trees can disagree about line numbers under
future rewrites), so the contract is asserted directly: a flow-enabled
``lint_paths`` run over the source tree calls ``ast.parse`` exactly
once per checked file.
"""

from __future__ import annotations

import ast
import time
from pathlib import Path

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]

# Generous ceiling: the full src/ lint (per-file rules + all three flow
# passes) runs in well under 10 s on any supported machine; 120 s only
# catches catastrophic regressions (accidental re-parse loops, fixed
# points that stop converging), not scheduler jitter.
WALL_TIME_CEILING_SECONDS = 120.0


def test_each_module_is_parsed_exactly_once(monkeypatch):
    calls = {"count": 0}
    real_parse = ast.parse

    def counting_parse(*args, **kwargs):
        calls["count"] += 1
        return real_parse(*args, **kwargs)

    monkeypatch.setattr(ast, "parse", counting_parse)
    result = lint_paths([REPO_ROOT / "src"])
    assert result.files_checked > 50
    assert calls["count"] == result.files_checked, (
        f"{calls['count']} ast.parse calls for {result.files_checked} "
        "files — a rule or the flow pass is re-parsing instead of "
        "sharing the engine's tree"
    )


def test_lint_wall_time_does_not_regress():
    start = time.perf_counter()
    result = lint_paths([REPO_ROOT / "src"])
    elapsed = time.perf_counter() - start
    assert result.files_checked > 50
    assert elapsed < WALL_TIME_CEILING_SECONDS, (
        f"lint of src/ took {elapsed:.1f}s (ceiling "
        f"{WALL_TIME_CEILING_SECONDS:.0f}s) — meghflow or a rule has a "
        "pathological slowdown"
    )
