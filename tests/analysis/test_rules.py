"""Per-rule positive/negative fixtures for the MEGH rule set.

Fixture sources intentionally violate the rules; this module itself is
never linted by meghlint (the default lint paths are src/ and
benchmarks/), so the snippets live in plain strings.
"""

from __future__ import annotations

import pytest

from repro.analysis import LintConfig, lint_source
from repro.analysis.diagnostics import Severity
from repro.analysis.rules import RULE_REGISTRY, all_rule_ids, build_rules


def findings(source: str, rule_id: str):
    result = lint_source(source, config=LintConfig(select=[rule_id]))
    return result.diagnostics


class TestRegistry:
    def test_all_rules_registered(self):
        assert all_rule_ids() == [
            "MEGH001",
            "MEGH002",
            "MEGH003",
            "MEGH004",
            "MEGH005",
            "MEGH006",
            "MEGH007",
            "MEGH008",
            "MEGH009",
        ]

    def test_every_rule_has_summary_and_severity(self):
        for rule_class in RULE_REGISTRY.values():
            assert rule_class.summary
            assert isinstance(rule_class.severity, Severity)

    def test_build_rules_rejects_unknown_ids(self):
        with pytest.raises(ValueError, match="MEGH999"):
            build_rules(select=["MEGH999"])


class TestMegh001UnseededRandomness:
    def test_flags_numpy_global_rng(self):
        source = "import numpy as np\nx = np.random.rand(3)\n"
        hits = findings(source, "MEGH001")
        assert len(hits) == 1
        assert hits[0].line == 2
        assert "process-global RNG" in hits[0].message

    def test_flags_stdlib_random_calls(self):
        source = "import random\nrandom.seed(3)\ny = random.random()\n"
        assert len(findings(source, "MEGH001")) == 2

    def test_flags_unseeded_default_rng(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        hits = findings(source, "MEGH001")
        assert len(hits) == 1
        assert "without a seed" in hits[0].message

    def test_flags_from_random_import(self):
        source = "from random import shuffle\n"
        assert len(findings(source, "MEGH001")) == 1

    def test_allows_seeded_generator(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
            "x = rng.random()\n"
            "y = rng.choice([1, 2])\n"
        )
        assert findings(source, "MEGH001") == []

    def test_allows_methods_on_injected_generator(self):
        source = (
            "class A:\n"
            "    def roll(self):\n"
            "        return self._rng.random()\n"
        )
        assert findings(source, "MEGH001") == []


class TestMegh002WallClock:
    def test_flags_time_time(self):
        source = "import time\nstart = time.time()\n"
        hits = findings(source, "MEGH002")
        assert len(hits) == 1
        assert "wall clock" in hits[0].message

    def test_flags_datetime_now(self):
        source = (
            "import datetime\n"
            "stamp = datetime.datetime.now()\n"
            "day = datetime.date.today()\n"
        )
        assert len(findings(source, "MEGH002")) == 2

    def test_allows_perf_counter(self):
        source = "import time\nstart = time.perf_counter()\n"
        assert findings(source, "MEGH002") == []


class TestMegh003FloatEquality:
    def test_flags_equality_with_float_literal(self):
        source = "def f(x):\n    return x == 0.0\n"
        hits = findings(source, "MEGH003")
        assert len(hits) == 1
        assert hits[0].severity is Severity.WARNING

    def test_flags_inequality_and_signed_literals(self):
        source = "def f(x):\n    return x != -1.0\n"
        assert len(findings(source, "MEGH003")) == 1

    def test_allows_integer_comparison(self):
        source = "def f(n):\n    return n == 0\n"
        assert findings(source, "MEGH003") == []

    def test_allows_ordering_comparisons(self):
        source = "def f(x):\n    return x <= 0.0 or x > 1.0\n"
        assert findings(source, "MEGH003") == []


class TestMegh004MutableDefaults:
    def test_flags_list_dict_set_defaults(self):
        source = "def f(a=[], b={}, c=set()):\n    return a, b, c\n"
        assert len(findings(source, "MEGH004")) == 3

    def test_flags_keyword_only_defaults(self):
        source = "def f(*, cache=dict()):\n    return cache\n"
        assert len(findings(source, "MEGH004")) == 1

    def test_allows_none_and_tuples(self):
        source = "def f(a=None, b=(), c=0):\n    return a, b, c\n"
        assert findings(source, "MEGH004") == []


class TestMegh005SeedPlumbing:
    def test_flags_scheduler_without_seed_parameter(self):
        source = (
            "import numpy as np\n"
            "class GreedyScheduler:\n"
            "    def __init__(self, beta):\n"
            "        self._rng = np.random.default_rng(12)\n"
        )
        hits = findings(source, "MEGH005")
        assert len(hits) == 1
        assert "GreedyScheduler" in hits[0].message

    def test_allows_seed_parameter(self):
        source = (
            "import numpy as np\n"
            "class GreedyScheduler:\n"
            "    def __init__(self, seed=0):\n"
            "        self._rng = np.random.default_rng(seed)\n"
        )
        assert findings(source, "MEGH005") == []

    def test_allows_rng_built_in_seeded_classmethod(self):
        source = (
            "import numpy as np\n"
            "class FaultInjector:\n"
            "    def __init__(self, events):\n"
            "        self.events = events\n"
            "    @classmethod\n"
            "    def sample(cls, seed=0):\n"
            "        rng = np.random.default_rng(seed)\n"
            "        return cls([rng.random()])\n"
        )
        assert findings(source, "MEGH005") == []

    def test_private_classes_exempt(self):
        source = (
            "import numpy as np\n"
            "class _Probe:\n"
            "    def __init__(self):\n"
            "        self._rng = np.random.default_rng(7)\n"
        )
        assert findings(source, "MEGH005") == []


class TestMegh006SwallowedExceptions:
    def test_flags_bare_except(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except:\n"
            "        return 2\n"
        )
        hits = findings(source, "MEGH006")
        assert len(hits) == 1
        assert "bare" in hits[0].message

    def test_flags_broad_swallow(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        run()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert len(findings(source, "MEGH006")) == 1

    def test_allows_specific_handler_with_action(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        run()\n"
            "    except ValueError:\n"
            "        raise RuntimeError('bad input')\n"
        )
        assert findings(source, "MEGH006") == []

    def test_allows_broad_handler_that_acts(self):
        source = (
            "def f(log):\n"
            "    try:\n"
            "        run()\n"
            "    except Exception as error:\n"
            "        log.warning('run failed: %s', error)\n"
            "        raise\n"
        )
        assert findings(source, "MEGH006") == []


class TestMegh007AdHocParallelism:
    def path_findings(self, source: str, path: str):
        result = lint_source(
            source, path=path, config=LintConfig(select=["MEGH007"])
        )
        return result.diagnostics

    def test_flags_multiprocessing_import(self):
        hits = findings("import multiprocessing\n", "MEGH007")
        assert len(hits) == 1
        assert "ExecutionEngine" in hits[0].message

    def test_flags_multiprocessing_submodule(self):
        assert len(findings("import multiprocessing.pool\n", "MEGH007")) == 1
        assert len(
            findings("from multiprocessing import Pool\n", "MEGH007")
        ) == 1

    def test_flags_concurrent_futures(self):
        assert len(findings("import concurrent.futures\n", "MEGH007")) == 1
        assert len(
            findings(
                "from concurrent.futures import ProcessPoolExecutor\n",
                "MEGH007",
            )
        ) == 1
        assert len(
            findings("from concurrent import futures\n", "MEGH007")
        ) == 1

    def test_engine_package_exempt(self):
        source = "import multiprocessing\n"
        assert (
            self.path_findings(source, "src/repro/engine/pool.py") == []
        )
        assert len(self.path_findings(source, "src/repro/cli.py")) == 1

    def test_allows_threading_and_unrelated_imports(self):
        assert findings("import threading\nimport json\n", "MEGH007") == []
        assert (
            findings("from concurrent import interpreters\n", "MEGH007")
            == []
        )


class TestMegh008FullDimensionScan:
    CORE_PATH = "src/repro/core/lstd.py"

    @staticmethod
    def path_findings(source: str, path: str):
        result = lint_source(
            source, path=path, config=LintConfig(select=["MEGH008"])
        )
        return result.diagnostics

    def test_flags_range_dimension_loop_in_core(self):
        source = (
            "def theta(self):\n"
            "    for i in range(self.dimension):\n"
            "        self.q_value(i)\n"
        )
        hits = self.path_findings(source, self.CORE_PATH)
        assert len(hits) == 1
        assert hits[0].line == 2
        assert "O(d)" in hits[0].message

    def test_flags_bare_dimension_name(self):
        source = (
            "def scan(dimension):\n"
            "    for i in range(dimension):\n"
            "        print(i)\n"
        )
        assert len(self.path_findings(source, self.CORE_PATH)) == 1

    def test_flags_range_with_start_and_step(self):
        source = (
            "def scan(m):\n"
            "    for i in range(0, m.dimension, 2):\n"
            "        print(i)\n"
        )
        assert len(self.path_findings(source, self.CORE_PATH)) == 1

    def test_non_core_paths_exempt(self):
        source = (
            "def scan(m):\n"
            "    for i in range(m.dimension):\n"
            "        print(i)\n"
        )
        assert self.path_findings(source, "src/repro/harness/run.py") == []
        assert findings(source, "MEGH008") == []

    def test_allows_sparse_support_iteration(self):
        source = (
            "def theta(self):\n"
            "    for j in self.z:\n"
            "        rows = self.B.rows_with_column(j)\n"
            "    for i in range(10):\n"
            "        pass\n"
        )
        assert self.path_findings(source, self.CORE_PATH) == []

    def test_suppression_comment_is_honoured(self):
        source = (
            "def dense_scan(self):\n"
            "    for i in range(self.dimension):  "
            "# meghlint: ignore[MEGH008] -- deliberate dense ablation\n"
            "        print(i)\n"
        )
        assert self.path_findings(source, self.CORE_PATH) == []


class TestMegh009PerEntityFleetLoops:
    CLOUDSIM_PATH = "src/repro/cloudsim/sharing.py"

    @staticmethod
    def path_findings(source: str, path: str):
        result = lint_source(
            source, path=path, config=LintConfig(select=["MEGH009"])
        )
        return result.diagnostics

    def test_flags_vm_loop_in_cloudsim(self):
        source = (
            "def share(self):\n"
            "    for vm in self.datacenter.vms:\n"
            "        vm.deliver()\n"
        )
        hits = self.path_findings(source, self.CLOUDSIM_PATH)
        assert len(hits) == 1
        assert hits[0].line == 2
        assert "'vms'" in hits[0].message

    def test_flags_private_pm_loop(self):
        source = (
            "def totals(self):\n"
            "    for pm in self._pms:\n"
            "        pm.total()\n"
        )
        assert len(self.path_findings(source, self.CLOUDSIM_PATH)) == 1

    def test_unwraps_iteration_wrappers(self):
        source = (
            "def scan(dc):\n"
            "    for i, vm in enumerate(dc.vms):\n"
            "        print(i, vm)\n"
            "    for pm in sorted(dc.pms):\n"
            "        print(pm)\n"
        )
        assert len(self.path_findings(source, self.CLOUDSIM_PATH)) == 2

    def test_flags_dict_view_iteration(self):
        source = (
            "def summary(self):\n"
            "    return [r.f for r in self.vms.values()]\n"
        )
        assert len(self.path_findings(source, self.CLOUDSIM_PATH)) == 1

    def test_flags_comprehensions(self):
        source = "def demand(dc):\n    return sum(v.mips for v in dc.vms)\n"
        assert len(self.path_findings(source, self.CLOUDSIM_PATH)) == 1

    def test_other_iterables_allowed(self):
        source = (
            "def work(self, ids):\n"
            "    for vm_id in ids:\n"
            "        print(vm_id)\n"
            "    for row in self.arrays.host_of:\n"
            "        print(row)\n"
        )
        assert self.path_findings(source, self.CLOUDSIM_PATH) == []

    def test_non_cloudsim_paths_exempt(self):
        source = (
            "def scan(dc):\n"
            "    for vm in dc.vms:\n"
            "        print(vm)\n"
        )
        assert self.path_findings(source, "src/repro/harness/run.py") == []
        assert findings(source, "MEGH009") == []

    def test_reference_oracle_exempt(self):
        source = (
            "def share(self):\n"
            "    for pm in self._pms:\n"
            "        pm.total()\n"
        )
        path = "src/repro/cloudsim/reference.py"
        assert self.path_findings(source, path) == []

    def test_suppression_comment_is_honoured(self):
        source = (
            "def rebind(self):\n"
            "    for vm in self._vms:  "
            "# meghlint: ignore[MEGH009] -- one-time binding\n"
            "        vm.bind()\n"
        )
        assert self.path_findings(source, self.CLOUDSIM_PATH) == []

    def test_flags_agent_hot_paths(self):
        # The decide() pipeline went array-native; entity loops there
        # are as hot as the simulator's.
        source = (
            "def scan(self, datacenter):\n"
            "    for pm in datacenter.pms:\n"
            "        print(pm)\n"
        )
        for path in (
            "src/repro/core/agent.py",
            "src/repro/core/candidates.py",
        ):
            hits = self.path_findings(source, path)
            assert len(hits) == 1, path
            assert "'pms'" in hits[0].message

    def test_other_core_modules_stay_exempt(self):
        # Only the candidate/decide hot-path modules are covered; the
        # rest of repro/core has no fleet objects to walk.
        source = (
            "def scan(self, datacenter):\n"
            "    for pm in datacenter.pms:\n"
            "        print(pm)\n"
        )
        assert self.path_findings(source, "src/repro/core/lstd.py") == []

    def test_agent_scalar_oracle_suppression_fires(self):
        # The retained scalar generator in the real agent module keeps a
        # reasoned suppression on its per-PM loop — and it must fire
        # (the self-lint test rejects stale suppressions).
        source = (
            "def feasible(self, datacenter):\n"
            "    for pm in datacenter.pms:  "
            "# meghlint: ignore[MEGH009] -- scalar differential oracle "
            "retained as the spec\n"
            "        print(pm)\n"
        )
        assert self.path_findings(source, "src/repro/core/agent.py") == []
