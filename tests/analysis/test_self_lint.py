"""The repository must pass its own lint — the acceptance gate.

Every later PR that introduces an unseeded RNG, a wall-clock read, or a
float equality into ``src/`` or ``benchmarks/`` fails here, at the step
that introduced it.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.reporting import render_text

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_source_tree_is_lint_clean():
    result = lint_paths([REPO_ROOT / "src", REPO_ROOT / "benchmarks"])
    assert result.files_checked > 50
    assert result.clean, "\n" + render_text(result)


def test_examples_are_lint_clean():
    result = lint_paths([REPO_ROOT / "examples"])
    assert result.clean, "\n" + render_text(result)
