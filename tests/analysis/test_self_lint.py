"""The repository must pass its own lint — the acceptance gate.

Every later PR that introduces an unseeded RNG, a wall-clock read, a
float equality, a missed dirty-flag invalidation, or a dtype slip into
``src/`` or ``benchmarks/`` fails here, at the step that introduced it.

The committed baseline (``analysis/baseline.json``) must match reality
*exactly*: every entry absorbs precisely its counted findings (a stale
entry fails), every in-source suppression fires (an unused one fails),
and nothing else survives.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import apply_baseline, lint_paths, load_baseline
from repro.analysis.reporting import render_text

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "analysis" / "baseline.json"


def test_source_tree_is_lint_clean():
    result = lint_paths([REPO_ROOT / "src", REPO_ROOT / "benchmarks"])
    assert result.files_checked > 50
    baseline = load_baseline(BASELINE)
    apply_baseline(result, baseline, root=REPO_ROOT)
    assert result.clean, "\n" + render_text(result)


def test_committed_baseline_is_exact():
    """The baseline neither over- nor under-counts current findings."""
    result = lint_paths([REPO_ROOT / "src", REPO_ROOT / "benchmarks"])
    baseline = load_baseline(BASELINE)
    apply_baseline(result, baseline, root=REPO_ROOT)
    expected = sum(entry.count for entry in baseline.entries)
    assert result.baselined == expected, (
        f"baseline declares {expected} finding(s) but {result.baselined} "
        "matched — run: repro lint src benchmarks "
        "--baseline analysis/baseline.json --update-baseline"
    )
    assert not result.stale_baseline, "\n".join(result.stale_baseline)


def test_committed_baseline_reasons_are_written():
    baseline = load_baseline(BASELINE)
    for entry in baseline.entries:
        assert "TODO" not in entry.reason, (
            f"{entry.path} ({entry.rule}): replace the placeholder reason "
            "with a real justification before committing"
        )
        assert len(entry.reason.strip()) >= 20, (
            f"{entry.path} ({entry.rule}): reason too short to justify "
            "an accepted finding"
        )


def test_no_unused_suppressions_in_tree():
    """Every ``# meghlint: ignore`` in the tree actually fires."""
    result = lint_paths([REPO_ROOT / "src", REPO_ROOT / "benchmarks"])
    assert not result.unused_suppressions, "\n" + "\n".join(
        diagnostic.format() for diagnostic in result.unused_suppressions
    )


def test_examples_are_lint_clean():
    result = lint_paths([REPO_ROOT / "examples"])
    assert result.clean, "\n" + render_text(result)
    assert not result.unused_suppressions