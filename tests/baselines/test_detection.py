"""Tests for the MMT overload detectors (THR/IQR/MAD/LR/LRR)."""

import pytest

from repro.baselines.mmt.detection import (
    IqrDetector,
    LocalRegressionDetector,
    MadDetector,
    RobustLocalRegressionDetector,
    ThresholdDetector,
    make_detector,
)
from repro.errors import ConfigurationError


class TestThr:
    def test_fires_above_threshold(self):
        detector = ThresholdDetector(utilization_threshold=0.7)
        assert detector.is_overloaded([0.5, 0.75])
        assert not detector.is_overloaded([0.75, 0.5])

    def test_boundary_not_overloaded(self):
        detector = ThresholdDetector(utilization_threshold=0.7)
        assert not detector.is_overloaded([0.7])

    def test_empty_history(self):
        assert not ThresholdDetector().is_overloaded([])

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            ThresholdDetector(utilization_threshold=1.5)


class TestIqr:
    def test_adaptive_threshold_formula(self):
        detector = IqrDetector(safety=1.5, max_threshold=1.0)
        history = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
        # IQR = 0.35 -> threshold = 1 - 1.5*0.35 = 0.475.
        assert detector.threshold(history) == pytest.approx(0.475)

    def test_volatile_history_lowers_threshold(self):
        detector = IqrDetector(max_threshold=1.0)
        stable = [0.5] * 8
        volatile = [0.1, 0.9] * 4
        assert detector.threshold(volatile) < detector.threshold(stable)

    def test_threshold_capped_at_max(self):
        detector = IqrDetector(max_threshold=0.7)
        assert detector.threshold([0.5] * 8) == pytest.approx(0.7)

    def test_short_history_uses_fallback(self):
        detector = IqrDetector(fallback_threshold=0.6)
        assert detector.threshold([0.5, 0.5]) == 0.6

    def test_threshold_floor(self):
        detector = IqrDetector(safety=100.0)
        assert detector.threshold([0.0, 1.0, 0.0, 1.0]) == pytest.approx(0.05)


class TestMad:
    def test_formula(self):
        detector = MadDetector(safety=2.5, max_threshold=1.0)
        history = [0.2, 0.4, 0.6]
        # median 0.4; MAD = median(|x-0.4|) = 0.2 -> 1 - 0.5 = 0.5.
        assert detector.threshold(history) == pytest.approx(0.5)

    def test_constant_history_threshold_at_cap(self):
        detector = MadDetector(max_threshold=0.7)
        assert detector.threshold([0.3] * 10) == pytest.approx(0.7)

    def test_overload_decision(self):
        detector = MadDetector()
        assert detector.is_overloaded([0.3, 0.3, 0.3, 0.95])


class TestLr:
    def test_predicts_rising_trend(self):
        detector = LocalRegressionDetector(safety=1.2)
        rising = [0.3, 0.4, 0.5, 0.6]  # next ~0.7; 1.2*0.7 = 0.84 >= 0.7
        assert detector.is_overloaded(rising)

    def test_flat_low_history_not_overloaded(self):
        detector = LocalRegressionDetector()
        assert not detector.is_overloaded([0.2, 0.2, 0.2, 0.2])

    def test_falling_trend_not_overloaded(self):
        detector = LocalRegressionDetector()
        assert not detector.is_overloaded([0.9, 0.7, 0.5, 0.3])

    def test_short_history_falls_back_to_threshold(self):
        detector = LocalRegressionDetector(fallback_threshold=0.7)
        assert detector.is_overloaded([0.8])
        assert not detector.is_overloaded([0.6])

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            LocalRegressionDetector(safety=0.0)
        with pytest.raises(ConfigurationError):
            LocalRegressionDetector(min_history=1)


class TestLrr:
    def test_robust_to_outlier(self):
        # One downward outlier shouldn't mask a rising trend.
        history = [0.4, 0.5, 0.05, 0.6, 0.65, 0.7]
        lr = LocalRegressionDetector(safety=1.2)
        lrr = RobustLocalRegressionDetector(safety=1.2)
        # LRR's prediction must be at least as high as LR's here.
        assert lrr._predict_next(history) >= lr._predict_next(history) - 1e-9

    def test_fires_on_clear_trend(self):
        detector = RobustLocalRegressionDetector()
        assert detector.is_overloaded([0.4, 0.5, 0.6, 0.7])

    def test_invalid_iterations(self):
        with pytest.raises(ConfigurationError):
            RobustLocalRegressionDetector(iterations=0)


class TestFactory:
    @pytest.mark.parametrize("name", ["THR", "IQR", "MAD", "LR", "LRR"])
    def test_builds_all_paper_detectors(self, name):
        detector = make_detector(name)
        assert detector.name == name

    def test_case_insensitive(self):
        assert make_detector("thr").name == "THR"

    def test_kwargs_forwarded(self):
        detector = make_detector("THR", utilization_threshold=0.9)
        assert detector.utilization_threshold == 0.9

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_detector("nope")
