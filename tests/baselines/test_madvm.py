"""Tests for the MadVM reimplementation."""

import numpy as np
import pytest

from repro.baselines.madvm import LevelDynamics, MadVMScheduler
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.monitor import UtilizationMonitor
from repro.errors import ConfigurationError
from repro.mdp.interfaces import Observation
from repro.mdp.state import observe_state

from tests.conftest import make_pm, make_vm


def build_observation(datacenter, step=0):
    monitor = UtilizationMonitor()
    monitor.observe(datacenter)
    return Observation(
        step=step,
        state=observe_state(datacenter, step),
        datacenter=datacenter,
        monitor=monitor,
        last_step_cost_usd=0.0,
        interval_seconds=300.0,
    )


class TestLevelDynamics:
    def test_level_discretization(self):
        model = LevelDynamics(levels=10)
        assert model.level_of(0.0) == 0
        assert model.level_of(0.05) == 0
        assert model.level_of(0.15) == 1
        assert model.level_of(1.0) == 9

    def test_mid_bin_utilization(self):
        model = LevelDynamics(levels=10)
        assert model.utilization_of(0) == pytest.approx(0.05)
        assert model.utilization_of(9) == pytest.approx(0.95)

    def test_transition_counts_accumulate(self):
        model = LevelDynamics(levels=4, smoothing=1.0)
        model.observe(0.1)  # level 0
        model.observe(0.9)  # level 3
        assert model.counts[0, 3] == 2.0  # smoothing + 1 observation

    def test_transition_matrix_rows_sum_to_one(self):
        model = LevelDynamics(levels=5)
        for u in (0.1, 0.5, 0.9, 0.2):
            model.observe(u)
        matrix = model.transition_matrix()
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_expected_future_tracks_sticky_dynamics(self):
        model = LevelDynamics(levels=10, smoothing=0.01)
        for _ in range(50):
            model.observe(0.85)
        expected = model.expected_future_utilization(0.85, horizon=5, gamma=0.5)
        assert expected == pytest.approx(0.85, abs=0.05)

    def test_overload_probability_bounds(self):
        model = LevelDynamics(levels=10)
        prob = model.overload_probability(0.5, horizon=5, threshold=0.7)
        assert 0.0 <= prob <= 1.0

    def test_overload_probability_high_when_sticky_high(self):
        model = LevelDynamics(levels=10, smoothing=0.01)
        for _ in range(50):
            model.observe(0.95)
        assert model.overload_probability(0.95, 3, threshold=0.7) > 0.9

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            LevelDynamics(levels=1)
        with pytest.raises(ConfigurationError):
            LevelDynamics(levels=5, smoothing=0.0)


class TestScheduler:
    def _dc(self):
        pms = [make_pm(i) for i in range(3)]
        vms = [make_vm(j, ram_mb=512.0) for j in range(4)]
        dc = Datacenter(pms, vms)
        for j in range(4):
            dc.place(j, j % 3)
        return dc

    def test_decisions_are_feasible(self):
        dc = self._dc()
        for j in range(4):
            dc.vm(j).set_demand(0.5)
        scheduler = MadVMScheduler(num_vms=4, num_pms=3)
        for step in range(5):
            migrations = scheduler.decide(build_observation(dc, step))
            for migration in migrations:
                assert dc.fits(migration.vm_id, migration.dest_pm_id)

    def test_migration_cap(self):
        dc = self._dc()
        scheduler = MadVMScheduler(
            num_vms=4, num_pms=3, max_migration_fraction=0.25
        )
        for j in range(4):
            dc.vm(j).set_demand(0.9)
        migrations = scheduler.decide(build_observation(dc))
        assert len(migrations) <= 1

    def test_inactive_vms_ignored(self):
        dc = self._dc()
        for j in range(4):
            dc.vm(j).set_active(False)
        scheduler = MadVMScheduler(num_vms=4, num_pms=3)
        assert scheduler.decide(build_observation(dc)) == []

    def test_bookkeeping_updates_every_step(self):
        dc = self._dc()
        scheduler = MadVMScheduler(num_vms=4, num_pms=3)
        dc.vm(0).set_demand(0.3)
        scheduler.decide(build_observation(dc, 0))
        dc.vm(0).set_demand(0.8)
        scheduler.decide(build_observation(dc, 1))
        model = scheduler.dynamics[0]
        assert model.counts[model.level_of(0.3), model.level_of(0.8)] >= 2.0

    def test_qos_weight_induces_spreading(self):
        # With a dominant QoS term the VM on the busy host moves to an
        # emptier one even though waking/powering it costs energy.
        pms = [make_pm(i) for i in range(2)]
        vms = [make_vm(j, ram_mb=512.0) for j in range(3)]
        dc = Datacenter(pms, vms)
        for j in range(3):
            dc.place(j, 0)
            dc.vm(j).set_demand(0.6)
        spreader = MadVMScheduler(
            num_vms=3, num_pms=2, qos_weight=5000.0,
            max_migration_fraction=1.0,
        )
        migrations = spreader.decide(build_observation(dc))
        assert migrations, "QoS-dominated MadVM must spread"
        assert all(m.dest_pm_id == 1 for m in migrations)

    def test_gain_threshold_suppresses_migrations(self):
        dc = self._dc()
        for j in range(4):
            dc.vm(j).set_demand(0.2)
        scheduler = MadVMScheduler(
            num_vms=4, num_pms=3, migration_gain_threshold=1e9
        )
        assert scheduler.decide(build_observation(dc)) == []

    def test_from_simulation_inherits_beta(self, tiny_simulation):
        scheduler = MadVMScheduler.from_simulation(tiny_simulation)
        assert scheduler.beta == pytest.approx(0.70)
        assert scheduler.num_vms == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_vms": 0, "num_pms": 1},
            {"num_vms": 1, "num_pms": 1, "horizon": 0},
            {"num_vms": 1, "num_pms": 1, "gamma": 1.0},
            {"num_vms": 1, "num_pms": 1, "max_migration_fraction": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            MadVMScheduler(**kwargs)
