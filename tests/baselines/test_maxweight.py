"""Tests for the frame-based MaxWeight baseline."""

import pytest

from repro.baselines.maxweight import MaxWeightScheduler
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.monitor import UtilizationMonitor
from repro.errors import ConfigurationError
from repro.harness.builders import build_planetlab_simulation
from repro.mdp.interfaces import Observation
from repro.mdp.state import observe_state

from tests.conftest import make_pm, make_vm


def build_observation(datacenter, step=0):
    monitor = UtilizationMonitor()
    monitor.observe(datacenter)
    return Observation(
        step=step,
        state=observe_state(datacenter, step),
        datacenter=datacenter,
        monitor=monitor,
        last_step_cost_usd=0.0,
        interval_seconds=300.0,
    )


@pytest.fixture
def backlogged_dc():
    """Host 0 backlogged (demand 95 % > beta 70 %), host 1 nearly empty."""
    pms = [make_pm(i) for i in range(3)]
    vms = [make_vm(j, mips=2000.0, ram_mb=512.0) for j in range(3)]
    dc = Datacenter(pms, vms)
    dc.place(0, 0)
    dc.place(1, 0)
    dc.place(2, 1)
    dc.vm(0).set_demand(0.95)
    dc.vm(1).set_demand(0.95)
    dc.vm(2).set_demand(0.05)
    return dc


class TestFrameStructure:
    def test_acts_only_at_frame_start(self, backlogged_dc):
        scheduler = MaxWeightScheduler(frame_length=6)
        assert scheduler.decide(build_observation(backlogged_dc, step=1)) == []
        assert scheduler.decide(build_observation(backlogged_dc, step=5)) == []
        assert scheduler.decide(build_observation(backlogged_dc, step=6)) != []

    def test_frame_length_one_acts_every_step(self, backlogged_dc):
        scheduler = MaxWeightScheduler(frame_length=1)
        for step in range(3):
            migrations = scheduler.decide(
                build_observation(backlogged_dc, step=step)
            )
            assert isinstance(migrations, list)


class TestWeights:
    def test_moves_from_backlogged_host(self, backlogged_dc):
        scheduler = MaxWeightScheduler()
        migrations = scheduler.decide(build_observation(backlogged_dc, step=0))
        assert migrations
        assert all(
            backlogged_dc.host_of(m.vm_id) == 0 for m in migrations
        )
        assert all(m.dest_pm_id != 0 for m in migrations)

    def test_no_backlog_no_moves(self):
        pms = [make_pm(0), make_pm(1)]
        vms = [make_vm(0)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        dc.vm(0).set_demand(0.3)
        scheduler = MaxWeightScheduler()
        assert scheduler.decide(build_observation(dc, step=0)) == []

    def test_destination_must_have_spare_service(self):
        # Both non-source hosts saturated: nothing is feasible.
        pms = [make_pm(i) for i in range(3)]
        vms = [make_vm(j, mips=4000.0, ram_mb=512.0) for j in range(3)]
        dc = Datacenter(pms, vms)
        for j in range(3):
            dc.place(j, j)
            dc.vm(j).set_demand(0.9)
        scheduler = MaxWeightScheduler()
        assert scheduler.decide(build_observation(dc, step=0)) == []

    def test_moves_capped_per_frame(self, backlogged_dc):
        scheduler = MaxWeightScheduler(moves_per_frame=1)
        migrations = scheduler.decide(build_observation(backlogged_dc, step=0))
        assert len(migrations) <= 1

    def test_inactive_vms_ignored(self, backlogged_dc):
        for vm in backlogged_dc.vms:
            vm.set_active(False)
        scheduler = MaxWeightScheduler()
        assert scheduler.decide(build_observation(backlogged_dc, step=0)) == []


class TestEndToEnd:
    def test_runs_full_simulation(self):
        sim = build_planetlab_simulation(num_pms=6, num_vms=8, num_steps=40)
        result = sim.run(MaxWeightScheduler())
        assert len(result.metrics.steps) == 40
        # Frame structure: migrations only on frame boundaries.
        for step_metrics in result.metrics.steps:
            if step_metrics.step % 6 != 0:
                assert step_metrics.num_migrations_started == 0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"frame_length": 0},
            {"moves_per_frame": 0},
            {"beta": 0.0},
            {"beta": 1.5},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            MaxWeightScheduler(**kwargs)
