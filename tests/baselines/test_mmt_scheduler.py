"""Tests for the complete MMT scheduler (detection + selection + PABFD)."""

import pytest

from repro.baselines.mmt.scheduler import MMTScheduler
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.monitor import UtilizationMonitor
from repro.mdp.interfaces import Observation
from repro.mdp.state import observe_state

from tests.conftest import make_pm, make_vm


def build_observation(datacenter, monitor=None, step=0):
    if monitor is None:
        monitor = UtilizationMonitor()
        monitor.observe(datacenter)
    return Observation(
        step=step,
        state=observe_state(datacenter, step),
        datacenter=datacenter,
        monitor=monitor,
        last_step_cost_usd=0.0,
        interval_seconds=300.0,
    )


@pytest.fixture
def overload_setup():
    pms = [make_pm(i) for i in range(4)]
    vms = [make_vm(j, mips=2000.0, ram_mb=512.0) for j in range(5)]
    dc = Datacenter(pms, vms)
    for j in (0, 1):
        dc.place(j, 0)
        dc.vm(j).set_demand(0.9)  # host 0 at 90 %
    dc.place(2, 1)
    dc.vm(2).set_demand(0.3)
    dc.place(3, 2)
    dc.vm(3).set_demand(0.3)
    dc.place(4, 3)
    dc.vm(4).set_demand(0.3)
    return dc


class TestOverloadRelief:
    def test_evicts_from_overloaded_host(self, overload_setup):
        scheduler = MMTScheduler("THR", consolidate=False)
        migrations = scheduler.decide(build_observation(overload_setup))
        assert migrations, "THR must relieve the 90 % host"
        assert all(
            overload_setup.host_of(m.vm_id) == 0 for m in migrations
        )

    def test_evicts_until_below_threshold(self, overload_setup):
        scheduler = MMTScheduler("THR", consolidate=False)
        migrations = scheduler.decide(build_observation(overload_setup))
        evicted = {m.vm_id for m in migrations}
        remaining = (
            overload_setup.demanded_mips(0)
            - sum(overload_setup.vm(v).demanded_mips for v in evicted)
        )
        assert remaining <= 0.7 * overload_setup.pm(0).mips

    def test_destination_not_the_overloaded_host(self, overload_setup):
        scheduler = MMTScheduler("THR", consolidate=False)
        for migration in scheduler.decide(build_observation(overload_setup)):
            assert migration.dest_pm_id != 0

    def test_no_overload_no_relief(self):
        pms = [make_pm(0), make_pm(1)]
        vms = [make_vm(0)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        dc.vm(0).set_demand(0.5)
        scheduler = MMTScheduler("THR", consolidate=False)
        assert scheduler.decide(build_observation(dc)) == []


class TestConsolidation:
    def test_evacuates_underloaded_host_fully(self):
        pms = [make_pm(0), make_pm(1)]
        vms = [make_vm(0, ram_mb=512.0), make_vm(1, ram_mb=512.0)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        dc.place(1, 1)
        dc.vm(0).set_demand(0.1)
        dc.vm(1).set_demand(0.2)
        scheduler = MMTScheduler("THR", consolidate=True)
        migrations = scheduler.decide(build_observation(dc))
        # The lighter host's VM moves so the host can sleep.
        assert len(migrations) == 1
        assert migrations[0].vm_id == 0
        assert migrations[0].dest_pm_id == 1

    def test_partial_evacuation_abandoned(self):
        # Two VMs on an underloaded host, but only one fits elsewhere:
        # the host is not evacuated at all.
        pms = [make_pm(0), make_pm(1, ram_mb=1024.0)]
        vms = [
            make_vm(0, ram_mb=1024.0),
            make_vm(1, ram_mb=1024.0),
            make_vm(2, ram_mb=900.0),
        ]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        dc.place(1, 0)
        dc.place(2, 1)
        for j in range(3):
            dc.vm(j).set_demand(0.05)
        scheduler = MMTScheduler("THR", consolidate=True)
        migrations = scheduler.decide(build_observation(dc))
        # Host 1 has only 124 MB free; host 0's pair cannot both leave.
        # Host 1's own VM (2) cannot move to 0 and leave 0 evacuated, so
        # only a full-evacuation plan of one host is permitted.
        sources = {dc.host_of(m.vm_id) for m in migrations}
        assert 0 not in sources

    def test_consolidation_disabled(self):
        pms = [make_pm(0), make_pm(1)]
        vms = [make_vm(0, ram_mb=512.0)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        dc.vm(0).set_demand(0.05)
        scheduler = MMTScheduler("THR", consolidate=False)
        assert scheduler.decide(build_observation(dc)) == []


class TestConfiguration:
    def test_name_reflects_detector_and_selection(self):
        assert MMTScheduler("THR").name == "THR-MMT"
        assert MMTScheduler("LRR").name == "LRR-MMT"

    def test_detector_kwargs_by_name(self):
        scheduler = MMTScheduler("THR", utilization_threshold=0.9)
        assert scheduler.detector.utilization_threshold == 0.9

    def test_detector_kwargs_with_instance_rejected(self):
        from repro.baselines.mmt.detection import ThresholdDetector

        with pytest.raises(TypeError):
            MMTScheduler(ThresholdDetector(), utilization_threshold=0.9)

    @pytest.mark.parametrize("name", ["THR", "IQR", "MAD", "LR", "LRR"])
    def test_all_paper_variants_run(self, name, overload_setup):
        scheduler = MMTScheduler(name)
        monitor = UtilizationMonitor()
        for _ in range(12):
            monitor.observe(overload_setup)
        migrations = scheduler.decide(
            build_observation(overload_setup, monitor)
        )
        assert isinstance(migrations, list)
