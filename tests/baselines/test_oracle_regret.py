"""Tests for the clairvoyant oracle and regret analysis."""

import numpy as np
import pytest

from repro.baselines.noop import NoMigrationScheduler
from repro.baselines.oracle import OracleScheduler
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.simulation import Simulation
from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.harness.builders import build_planetlab_simulation
from repro.harness.regret import (
    regret_curve,
    regret_is_sublinear,
    total_regret,
)
from repro.harness.runner import run_comparison
from repro.workloads.base import ArrayWorkload

from tests.conftest import make_pm, make_vm


class TestOracle:
    def _burst_simulation(self):
        """VM 0 bursts at step 5 — announced one step ahead to an oracle."""
        pms = [make_pm(0), make_pm(1)]
        vms = [
            make_vm(0, mips=4000.0, ram_mb=512.0),
            make_vm(1, mips=1500.0, ram_mb=512.0),
        ]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        dc.place(1, 0)
        matrix = np.full((2, 10), 0.1)
        matrix[0, 5:8] = 0.5  # 2000 MIPS
        matrix[1, 5:8] = 0.8  # +1200 MIPS: together 80 % of host 0
        workload = ArrayWorkload(matrix)
        return Simulation(dc, workload, SimulationConfig(num_steps=10))

    def test_moves_before_the_burst(self):
        sim = self._burst_simulation()
        oracle = OracleScheduler.from_simulation(sim)
        result = sim.run(oracle)
        # The overload never materializes: the conflict is resolved at
        # step 4, before the burst lands.
        assert all(
            s.num_overloaded_hosts == 0 for s in result.metrics.steps
        )
        assert result.total_migrations >= 1

    def test_noop_suffers_the_burst(self):
        sim = self._burst_simulation()
        result = sim.run(NoMigrationScheduler())
        assert any(s.num_overloaded_hosts > 0 for s in result.metrics.steps)

    def test_move_budget_respected(self):
        sim = build_planetlab_simulation(num_pms=6, num_vms=8, num_steps=30)
        oracle = OracleScheduler.from_simulation(sim, max_moves_per_step=1)
        result = sim.run(oracle)
        assert all(
            s.num_migrations_started <= 1 for s in result.metrics.steps
        )

    def test_last_step_peeks_at_itself(self):
        # At the final step there is no future; the oracle must not crash.
        sim = self._burst_simulation()
        oracle = OracleScheduler.from_simulation(sim)
        result = sim.run(oracle)
        assert len(result.metrics.steps) == 10

    def test_invalid_params(self):
        workload = ArrayWorkload(np.full((1, 2), 0.1))
        with pytest.raises(ConfigurationError):
            OracleScheduler(workload, beta=0.0)
        with pytest.raises(ConfigurationError):
            OracleScheduler(workload, max_moves_per_step=0)


class TestRegret:
    @pytest.fixture(scope="class")
    def runs(self):
        sim = build_planetlab_simulation(
            num_pms=8, num_vms=11, num_steps=60, seed=4
        )
        return run_comparison(
            sim,
            {
                "Oracle": lambda s: OracleScheduler.from_simulation(s),
                "NoMig": lambda s: NoMigrationScheduler(),
            },
        )

    def test_curve_length_and_cumulative(self, runs):
        curve = regret_curve(runs["NoMig"], runs["Oracle"])
        assert len(curve) == 60
        assert curve[-1] == pytest.approx(
            runs["NoMig"].total_cost_usd - runs["Oracle"].total_cost_usd
        )

    def test_total_regret_matches_curve_end(self, runs):
        assert total_regret(runs["NoMig"], runs["Oracle"]) == pytest.approx(
            regret_curve(runs["NoMig"], runs["Oracle"])[-1]
        )

    def test_self_regret_is_zero(self, runs):
        assert total_regret(runs["Oracle"], runs["Oracle"]) == pytest.approx(
            0.0
        )

    def test_mismatched_lengths_rejected(self, runs):
        sim = build_planetlab_simulation(num_pms=4, num_vms=5, num_steps=10)
        short = sim.run(NoMigrationScheduler())
        with pytest.raises(ConfigurationError):
            regret_curve(short, runs["Oracle"])

    def test_sublinearity_trivial_cases(self, runs):
        assert regret_is_sublinear(runs["Oracle"], runs["Oracle"])
        with pytest.raises(ConfigurationError):
            regret_is_sublinear(runs["Oracle"], runs["Oracle"], tolerance=0.0)

    @pytest.mark.slow
    def test_megh_regret_sublinear(self):
        from repro.core.agent import MeghScheduler

        sim = build_planetlab_simulation(
            num_pms=16, num_vms=21, num_steps=800, seed=0
        )
        runs = run_comparison(
            sim,
            {
                "Oracle": lambda s: OracleScheduler.from_simulation(s),
                "Megh": lambda s: MeghScheduler.from_simulation(s, seed=0),
            },
        )
        # The learning scheduler's gap to the clairvoyant reference must
        # shrink after the exploration phase.
        assert regret_is_sublinear(
            runs["Megh"], runs["Oracle"], tolerance=1.2
        )
