"""Tests for the Q-learning, no-op, and random baselines."""

import pytest

from repro.baselines.noop import NoMigrationScheduler
from repro.baselines.qlearning import (
    ACTION_CONSOLIDATE,
    ACTION_NOOP,
    ACTION_RELIEVE,
    NUM_ACTIONS,
    QLearningScheduler,
)
from repro.baselines.random_policy import RandomScheduler
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.monitor import UtilizationMonitor
from repro.errors import ConfigurationError
from repro.mdp.interfaces import Observation
from repro.mdp.state import observe_state

from tests.conftest import make_pm, make_vm


def build_observation(datacenter, step=0, last_cost=0.0):
    monitor = UtilizationMonitor()
    monitor.observe(datacenter)
    return Observation(
        step=step,
        state=observe_state(datacenter, step),
        datacenter=datacenter,
        monitor=monitor,
        last_step_cost_usd=last_cost,
        interval_seconds=300.0,
    )


class TestNoMigration:
    def test_never_migrates(self, placed_datacenter):
        scheduler = NoMigrationScheduler()
        assert scheduler.decide(build_observation(placed_datacenter)) == []


class TestRandom:
    def test_respects_count(self, placed_datacenter):
        scheduler = RandomScheduler(migrations_per_step=2, seed=0)
        migrations = scheduler.decide(build_observation(placed_datacenter))
        assert len(migrations) <= 2

    def test_zero_migrations(self, placed_datacenter):
        scheduler = RandomScheduler(migrations_per_step=0)
        assert scheduler.decide(build_observation(placed_datacenter)) == []

    def test_targets_feasible(self, placed_datacenter):
        scheduler = RandomScheduler(migrations_per_step=3, seed=1)
        for migration in scheduler.decide(
            build_observation(placed_datacenter)
        ):
            assert placed_datacenter.fits(
                migration.vm_id, migration.dest_pm_id
            )

    def test_deterministic(self, placed_datacenter):
        a = RandomScheduler(migrations_per_step=2, seed=7).decide(
            build_observation(placed_datacenter)
        )
        b = RandomScheduler(migrations_per_step=2, seed=7).decide(
            build_observation(placed_datacenter)
        )
        assert a == b

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            RandomScheduler(migrations_per_step=-1)


class TestQLearning:
    def _overloaded_dc(self):
        pms = [make_pm(i) for i in range(3)]
        vms = [make_vm(j, mips=2000.0, ram_mb=512.0) for j in range(3)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        dc.place(1, 0)
        dc.place(2, 1)
        dc.vm(0).set_demand(0.9)
        dc.vm(1).set_demand(0.9)
        dc.vm(2).set_demand(0.1)
        return dc

    def test_state_key_buckets(self):
        scheduler = QLearningScheduler()
        dc = self._overloaded_dc()
        overloaded, bucket = scheduler._state_key(build_observation(dc))
        assert overloaded == 1
        assert 0 <= bucket < scheduler.utilization_buckets

    def test_relieve_action_moves_from_worst_host(self):
        scheduler = QLearningScheduler()
        dc = self._overloaded_dc()
        migrations = scheduler._relieve(build_observation(dc))
        assert migrations
        assert dc.host_of(migrations[0].vm_id) == 0

    def test_consolidate_action_evacuates_lightest(self):
        scheduler = QLearningScheduler()
        dc = self._overloaded_dc()
        dc.vm(2).set_demand(0.01)
        migrations = scheduler._consolidate(build_observation(dc))
        if migrations:  # feasible only if RAM allows
            assert dc.host_of(migrations[0].vm_id) == 1

    def test_greedy_deployment_uses_q_table(self):
        scheduler = QLearningScheduler(seed=0)
        dc = self._overloaded_dc()
        observation = build_observation(dc)
        state = scheduler._state_key(observation)
        row = scheduler._q_row(state)
        row[ACTION_NOOP] = 10.0
        row[ACTION_RELIEVE] = -5.0
        row[ACTION_CONSOLIDATE] = 10.0
        migrations = scheduler.decide(observation)
        assert migrations, "greedy must pick the learned relieve action"

    def test_training_populates_q_table(self, tiny_simulation):
        scheduler = QLearningScheduler(seed=0)
        scheduler.train(tiny_simulation, episodes=2)
        assert scheduler.q_table
        assert not scheduler.training
        for row in scheduler.q_table.values():
            assert row.shape == (NUM_ACTIONS,)

    def test_training_resets_simulation(self, tiny_simulation):
        initial = tiny_simulation.datacenter.placement()
        scheduler = QLearningScheduler(seed=0)
        scheduler.train(tiny_simulation, episodes=1)
        assert tiny_simulation.datacenter.placement() == initial

    def test_learning_updates_q_values(self):
        scheduler = QLearningScheduler(learning_rate=0.5, epsilon=0.0)
        scheduler.training = True
        dc = self._overloaded_dc()
        scheduler.decide(build_observation(dc, step=0))
        state_before = scheduler._last_state
        scheduler.decide(build_observation(dc, step=1, last_cost=10.0))
        assert scheduler.q_table[state_before].max() > 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"gamma": 1.0},
            {"epsilon": 2.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            QLearningScheduler(**kwargs)

    def test_invalid_episodes(self, tiny_simulation):
        with pytest.raises(ConfigurationError):
            QLearningScheduler().train(tiny_simulation, episodes=0)
