"""Tests for VM selection policies and PABFD placement."""

import pytest

from repro.baselines.mmt.placement import (
    hosts_by_utilization,
    power_aware_best_fit,
    power_increase,
)
from repro.baselines.mmt.selection import (
    HighestDemandSelection,
    MinimumMigrationTimeSelection,
    RandomSelection,
    make_selection,
)
from repro.cloudsim.datacenter import Datacenter
from repro.errors import ConfigurationError

from tests.conftest import make_pm, make_vm


@pytest.fixture
def dc():
    pms = [make_pm(i) for i in range(3)]
    vms = [
        make_vm(0, mips=2000.0, ram_mb=2048.0),
        make_vm(1, mips=1000.0, ram_mb=512.0),
        make_vm(2, mips=1500.0, ram_mb=1024.0),
    ]
    datacenter = Datacenter(pms, vms)
    for vm_id in range(3):
        datacenter.place(vm_id, 0)
    return datacenter


class TestSelection:
    def test_mmt_orders_by_migration_time(self, dc):
        order = MinimumMigrationTimeSelection().select(dc, [0, 1, 2])
        # Migration time ~ RAM/bandwidth: 512 < 1024 < 2048.
        assert order == [1, 2, 0]

    def test_highest_demand(self, dc):
        dc.vm(0).set_demand(0.1)  # 200 MIPS
        dc.vm(1).set_demand(0.9)  # 900 MIPS
        dc.vm(2).set_demand(0.4)  # 600 MIPS
        order = HighestDemandSelection().select(dc, [0, 1, 2])
        assert order == [1, 2, 0]

    def test_random_is_permutation(self, dc):
        order = RandomSelection(seed=0).select(dc, [0, 1, 2])
        assert sorted(order) == [0, 1, 2]

    def test_random_deterministic(self, dc):
        a = RandomSelection(seed=3).select(dc, [0, 1, 2])
        b = RandomSelection(seed=3).select(dc, [0, 1, 2])
        assert a == b

    def test_factory(self):
        assert make_selection("MMT").name == "MMT"
        assert make_selection("rs").name == "RS"
        with pytest.raises(ConfigurationError):
            make_selection("nope")


class TestPowerIncrease:
    def test_positive_for_added_demand(self, dc):
        assert power_increase(dc, 1, extra_mips=2000.0) > 0.0

    def test_wake_cost_for_sleeping_host(self, dc):
        dc.pm(2).sleep()
        awake = power_increase(dc, 1, extra_mips=1000.0)
        asleep = power_increase(dc, 2, extra_mips=1000.0)
        # Waking host 2 adds its idle draw on top of the increment.
        assert asleep > awake

    def test_pending_mips_accounted(self, dc):
        base = power_increase(dc, 1, extra_mips=1000.0)
        with_pending = power_increase(
            dc, 1, extra_mips=1000.0, pending_mips=3000.0
        )
        # Host nearly saturated by pending demand: the same extra MIPS
        # adds less *visible* power because utilization caps at 100 %.
        assert with_pending <= base + 1e-9


class TestPabfd:
    def test_places_within_threshold(self, dc):
        dc.vm(0).set_demand(0.9)
        plan = power_aware_best_fit(dc, [0], threshold=0.7)
        assert 0 in plan
        dest = plan[0]
        assert dest != 0
        projected = dc.demanded_mips(dest) + dc.vm(0).demanded_mips
        assert projected <= 0.7 * dc.pm(dest).mips

    def test_respects_exclusions(self, dc):
        dc.vm(0).set_demand(0.5)
        plan = power_aware_best_fit(
            dc, [0], threshold=0.7, excluded_hosts=[1]
        )
        assert plan.get(0) == 2

    def test_unplaceable_vm_absent_from_plan(self, dc):
        dc.vm(0).set_demand(1.0)
        plan = power_aware_best_fit(
            dc, [0], threshold=0.7, excluded_hosts=[1, 2]
        )
        assert plan == {}

    def test_ram_respected_within_plan(self):
        # Two 2048-MB VMs cannot both go to one 4096-MB host that
        # already carries 1024 MB.
        pms = [make_pm(0), make_pm(1)]
        vms = [
            make_vm(0, ram_mb=2048.0),
            make_vm(1, ram_mb=2048.0),
            make_vm(2, ram_mb=1024.0),
        ]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        dc.place(1, 0)
        dc.place(2, 1)
        plan = power_aware_best_fit(dc, [0, 1], threshold=1.0)
        # Only one of them fits on host 1.
        assert len(plan) == 1

    def test_prefers_lower_power_increase(self):
        # Host 1 (G5) draws more than host 2 (G4) — wait: even ids are G4.
        pms = [make_pm(0), make_pm(1), make_pm(2)]
        vms = [make_vm(0), make_vm(1)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        dc.place(1, 2)  # host 2 (G4) already awake
        dc.pm(1).sleep()
        dc.vm(0).set_demand(0.5)
        plan = power_aware_best_fit(dc, [0], threshold=0.7)
        # Waking sleeping host 1 costs ~94 W extra; host 2 is cheaper.
        assert plan[0] == 2

    def test_decreasing_demand_order(self):
        # The biggest VM gets first pick (best-fit decreasing).
        pms = [make_pm(0), make_pm(1, mips=2000.0)]
        vms = [
            make_vm(0, mips=1800.0, ram_mb=512.0),
            make_vm(1, mips=400.0, ram_mb=512.0),
        ]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        dc.place(1, 0)
        dc.vm(0).set_demand(0.7)  # 1260 MIPS
        dc.vm(1).set_demand(0.5)  # 200 MIPS
        plan = power_aware_best_fit(dc, [0, 1], threshold=0.7)
        # 1260 MIPS only fits host 1 if placed first (0.7*2000 = 1400).
        assert plan[0] == 1


class TestHostsByUtilization:
    def test_orders_ascending(self, dc):
        dc.vm(0).set_demand(0.9)
        dc.move(1, 1)
        dc.vm(1).set_demand(0.1)
        order = hosts_by_utilization(dc)
        assert order[0] == 1
        assert order[-1] == 0


class TestMaximumCorrelation:
    def _monitor_with_histories(self, dc, histories):
        from repro.cloudsim.monitor import UtilizationMonitor

        monitor = UtilizationMonitor(history_length=8)
        for step in range(len(next(iter(histories.values())))):
            for vm_id, series in histories.items():
                dc.vm(vm_id).set_demand(series[step])
            monitor.observe(dc)
        return monitor

    def test_evicts_most_correlated_vm(self, dc):
        from repro.baselines.mmt.selection import MaximumCorrelationSelection

        # VM 0 tracks the host's swings; VMs 1-2 stay flat.
        histories = {
            0: [0.1, 0.8, 0.1, 0.8, 0.1, 0.8],
            1: [0.4] * 6,
            2: [0.3, 0.31, 0.3, 0.31, 0.3, 0.31],
        }
        monitor = self._monitor_with_histories(dc, histories)
        policy = MaximumCorrelationSelection(monitor=monitor)
        order = policy.select(dc, [0, 1, 2])
        assert order[0] == 0

    def test_falls_back_without_monitor(self, dc):
        from repro.baselines.mmt.selection import MaximumCorrelationSelection

        dc.vm(0).set_demand(0.1)
        dc.vm(1).set_demand(0.9)
        dc.vm(2).set_demand(0.4)
        policy = MaximumCorrelationSelection(monitor=None)
        order = policy.select(dc, [0, 1, 2])
        assert order[0] == 1  # highest demand fallback

    def test_short_history_ranked_last(self, dc):
        from repro.baselines.mmt.selection import MaximumCorrelationSelection
        from repro.cloudsim.monitor import UtilizationMonitor

        monitor = UtilizationMonitor()
        monitor.observe(dc)  # one sample only
        policy = MaximumCorrelationSelection(monitor=monitor, min_history=4)
        order = policy.select(dc, [0, 1])
        assert sorted(order) == [0, 1]

    def test_factory_includes_mc(self):
        from repro.baselines.mmt.selection import make_selection

        assert make_selection("MC").name == "MC"

    def test_mc_binds_monitor_inside_scheduler(self):
        from repro.baselines.mmt.scheduler import MMTScheduler
        from repro.baselines.mmt.selection import MaximumCorrelationSelection
        from repro.harness.builders import build_planetlab_simulation

        sim = build_planetlab_simulation(num_pms=4, num_vms=6, num_steps=15)
        scheduler = MMTScheduler(
            "THR", selection=MaximumCorrelationSelection()
        )
        sim.run(scheduler)
        assert scheduler.selection.monitor is sim.monitor
