"""Unit tests for the initial placement policies."""

import pytest

from repro.cloudsim.allocation import (
    PLACEMENT_POLICIES,
    place_balanced,
    place_first_fit,
    place_round_robin,
    place_uniform_random,
)
from repro.cloudsim.datacenter import Datacenter
from repro.errors import PlacementError

from tests.conftest import make_pm, make_vm


def fresh_dc(num_pms=4, num_vms=6, vm_ram=1024.0):
    pms = [make_pm(i) for i in range(num_pms)]
    vms = [make_vm(j, ram_mb=vm_ram) for j in range(num_vms)]
    return Datacenter(pms, vms)


class TestFirstFit:
    def test_packs_onto_early_hosts(self):
        dc = fresh_dc()
        place_first_fit(dc)
        # 4 x 1024 MB fit on host 0, the rest overflow to host 1.
        assert dc.vms_on(0) == {0, 1, 2, 3}
        assert dc.vms_on(1) == {4, 5}

    def test_all_placed(self):
        dc = fresh_dc()
        place_first_fit(dc)
        assert all(dc.is_placed(j) for j in range(dc.num_vms))

    def test_raises_when_impossible(self):
        dc = fresh_dc(num_pms=1, num_vms=5)
        with pytest.raises(PlacementError):
            place_first_fit(dc)

    def test_skips_already_placed(self):
        dc = fresh_dc()
        dc.place(0, 3)
        place_first_fit(dc)
        assert dc.host_of(0) == 3


class TestRoundRobin:
    def test_spreads_across_hosts(self):
        dc = fresh_dc()
        place_round_robin(dc)
        assert [dc.host_of(j) for j in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_skips_full_hosts(self):
        dc = fresh_dc(num_pms=2, num_vms=6)
        place_round_robin(dc)
        assert all(dc.is_placed(j) for j in range(6))
        assert len(dc.vms_on(0)) <= 4


class TestUniformRandom:
    def test_deterministic_given_seed(self):
        dc1, dc2 = fresh_dc(), fresh_dc()
        place_uniform_random(dc1, seed=5)
        place_uniform_random(dc2, seed=5)
        assert dc1.placement() == dc2.placement()

    def test_different_seeds_differ(self):
        dc1, dc2 = fresh_dc(num_pms=8, num_vms=12, vm_ram=256.0), fresh_dc(
            num_pms=8, num_vms=12, vm_ram=256.0
        )
        place_uniform_random(dc1, seed=1)
        place_uniform_random(dc2, seed=2)
        assert dc1.placement() != dc2.placement()

    def test_respects_capacity(self):
        dc = fresh_dc(num_pms=2, num_vms=8)
        place_uniform_random(dc, seed=0)
        for pm_id in range(2):
            assert dc.ram_used_mb(pm_id) <= dc.pm(pm_id).ram_mb


class TestBalanced:
    def test_prefers_emptiest_host(self):
        dc = fresh_dc()
        place_balanced(dc)
        sizes = [len(dc.vms_on(i)) for i in range(4)]
        assert max(sizes) - min(sizes) <= 1

    def test_raises_when_impossible(self):
        dc = fresh_dc(num_pms=1, num_vms=5)
        with pytest.raises(PlacementError):
            place_balanced(dc)


def test_policy_registry_complete():
    assert set(PLACEMENT_POLICIES) == {
        "first-fit",
        "round-robin",
        "random",
        "balanced",
    }
