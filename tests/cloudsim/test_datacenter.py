"""Unit tests for the data-center placement and CPU-sharing logic."""

import pytest

from repro.cloudsim.datacenter import Datacenter
from repro.errors import CapacityError, UnknownEntityError

from tests.conftest import make_pm, make_vm


class TestConstruction:
    def test_rejects_sparse_pm_ids(self):
        with pytest.raises(UnknownEntityError):
            Datacenter([make_pm(0), make_pm(2)], [make_vm(0)])

    def test_rejects_sparse_vm_ids(self):
        with pytest.raises(UnknownEntityError):
            Datacenter([make_pm(0)], [make_vm(1)])

    def test_counts(self, small_datacenter):
        assert small_datacenter.num_pms == 4
        assert small_datacenter.num_vms == 6


class TestPlacement:
    def test_place_and_lookup(self, small_datacenter):
        small_datacenter.place(0, 2)
        assert small_datacenter.host_of(0) == 2
        assert 0 in small_datacenter.vms_on(2)

    def test_place_wakes_host(self, small_datacenter):
        small_datacenter.pm(1).sleep()
        small_datacenter.place(0, 1)
        assert not small_datacenter.pm(1).asleep

    def test_double_place_rejected(self, small_datacenter):
        small_datacenter.place(0, 0)
        with pytest.raises(CapacityError):
            small_datacenter.place(0, 1)

    def test_ram_capacity_enforced(self, small_datacenter):
        # Host RAM 4096; four 1024-MB VMs fit, the fifth does not.
        for vm_id in range(4):
            small_datacenter.place(vm_id, 0)
        with pytest.raises(CapacityError):
            small_datacenter.place(4, 0)

    def test_remove_returns_host(self, placed_datacenter):
        assert placed_datacenter.remove(0) == 0
        assert placed_datacenter.host_of(0) is None

    def test_remove_unplaced_rejected(self, small_datacenter):
        with pytest.raises(UnknownEntityError):
            small_datacenter.remove(0)

    def test_move(self, placed_datacenter):
        source = placed_datacenter.move(0, 3)
        assert source == 0
        assert placed_datacenter.host_of(0) == 3

    def test_move_to_same_host_is_noop(self, placed_datacenter):
        assert placed_datacenter.move(0, 0) == 0
        assert placed_datacenter.host_of(0) == 0

    def test_move_respects_ram(self, small_datacenter):
        for vm_id in range(4):
            small_datacenter.place(vm_id, 0)
        small_datacenter.place(4, 1)
        with pytest.raises(CapacityError):
            small_datacenter.move(4, 0)

    def test_unknown_ids_rejected(self, small_datacenter):
        with pytest.raises(UnknownEntityError):
            small_datacenter.pm(99)
        with pytest.raises(UnknownEntityError):
            small_datacenter.vm(99)

    def test_placement_map_is_copy(self, placed_datacenter):
        mapping = placed_datacenter.placement()
        mapping[0] = 3
        assert placed_datacenter.host_of(0) == 0


class TestCapacityAccounting:
    def test_ram_accounting(self, placed_datacenter):
        assert placed_datacenter.ram_used_mb(0) == pytest.approx(2048.0)
        assert placed_datacenter.ram_free_mb(0) == pytest.approx(2048.0)

    def test_demanded_utilization(self, placed_datacenter):
        placed_datacenter.vm(0).set_demand(0.5)
        placed_datacenter.vm(1).set_demand(0.5)
        # Two VMs at 500 MIPS each on a 4000-MIPS host -> 25 %.
        assert placed_datacenter.demanded_utilization(0) == pytest.approx(0.25)

    def test_demand_can_exceed_capacity(self, small_datacenter):
        for vm_id in range(4):
            small_datacenter.place(vm_id, 0)
            small_datacenter.vm(vm_id).set_demand(1.0)
        # 4 x 1000 demanded on 4000-MIPS host = exactly 1.0; overload needs more.
        assert small_datacenter.demanded_utilization(0) == pytest.approx(1.0)

    def test_active_hosts(self, placed_datacenter):
        assert placed_datacenter.num_active_hosts() == 4
        placed_datacenter.remove(5)
        assert placed_datacenter.num_active_hosts() == 3

    def test_fits_current_host(self, placed_datacenter):
        assert placed_datacenter.fits(0, 0)


class TestCpuSharing:
    def test_full_delivery_under_capacity(self, placed_datacenter):
        placed_datacenter.vm(0).set_demand(0.3)
        placed_datacenter.share_cpu()
        assert placed_datacenter.vm(0).delivered_utilization == pytest.approx(0.3)

    def test_proportional_scaling_when_oversubscribed(self, small_datacenter):
        # 3 VMs of 2000 MIPS demanding 100 % on a 4000-MIPS host.
        vms = [make_vm(j, mips=2000.0, ram_mb=512.0) for j in range(3)]
        dc = Datacenter([make_pm(0)], vms)
        for vm_id in range(3):
            dc.place(vm_id, 0)
            dc.vm(vm_id).set_demand(1.0)
        dc.share_cpu()
        for vm_id in range(3):
            # 6000 demanded on 4000 capacity -> scale 2/3.
            assert dc.vm(vm_id).delivered_utilization == pytest.approx(2 / 3)
        assert dc.delivered_utilization(0) == pytest.approx(1.0)

    def test_unplaced_vm_gets_nothing(self, small_datacenter):
        small_datacenter.vm(0).set_demand(0.9)
        small_datacenter.share_cpu()
        assert small_datacenter.vm(0).delivered_utilization == 0.0

    def test_migration_overhead_applied(self, placed_datacenter):
        placed_datacenter.vm(0).set_demand(0.5)
        placed_datacenter.share_cpu()
        placed_datacenter.apply_migration_overhead([0], 0.10)
        assert placed_datacenter.vm(0).delivered_utilization == pytest.approx(0.45)


class TestOverloadAndSleep:
    def test_overload_detection(self, placed_datacenter):
        placed_datacenter.vm(4).set_demand(1.0)  # 1000 of 4000 = 25 %
        assert not placed_datacenter.is_overloaded(2, beta=0.30)
        assert placed_datacenter.is_overloaded(2, beta=0.20)
        assert placed_datacenter.overloaded_pm_ids(beta=0.20) == [2]

    def test_sleep_idle_hosts(self, placed_datacenter):
        placed_datacenter.remove(5)
        slept = placed_datacenter.sleep_idle_hosts()
        assert slept == [3]
        assert placed_datacenter.pm(3).asleep

    def test_sleep_skips_occupied(self, placed_datacenter):
        assert placed_datacenter.sleep_idle_hosts() == []
