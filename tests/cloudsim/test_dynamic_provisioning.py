"""Tests for dynamic VM provisioning (deprovision on idle, re-place on demand)."""

import numpy as np

from repro.baselines.noop import NoMigrationScheduler
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.simulation import Simulation
from repro.config import SimulationConfig
from repro.workloads.base import ArrayWorkload
from repro.workloads.google import generate_google_workload

from tests.conftest import make_pm, make_vm


def on_off_workload():
    """VM 0 always on; VM 1 on for steps 0-1, off 2-3, on again 4-5."""
    matrix = np.full((2, 6), 0.3)
    active = np.array(
        [
            [True] * 6,
            [True, True, False, False, True, True],
        ]
    )
    return ArrayWorkload(matrix, active)


def build_sim(dynamic: bool):
    pms = [make_pm(0), make_pm(1)]
    vms = [make_vm(0, ram_mb=1024.0), make_vm(1, ram_mb=1024.0)]
    dc = Datacenter(pms, vms)
    dc.place(0, 0)
    dc.place(1, 0)
    return Simulation(
        dc,
        on_off_workload(),
        SimulationConfig(num_steps=6),
        dynamic_provisioning=dynamic,
    )


class TestLifecycle:
    def test_idle_vm_deprovisioned(self):
        sim = build_sim(dynamic=True)
        placements = []

        class Probe:
            name = "probe"

            def decide(self, observation):
                placements.append(
                    observation.datacenter.is_placed(1)
                )
                return []

        sim.run(Probe())
        assert placements == [True, True, False, False, True, True]

    def test_static_mode_keeps_reservation(self):
        sim = build_sim(dynamic=False)
        sim.run(NoMigrationScheduler())
        assert sim.datacenter.is_placed(1)

    def test_ram_freed_while_idle(self):
        sim = build_sim(dynamic=True)
        free_at_step = {}

        class Probe:
            name = "probe"

            def decide(self, observation):
                free_at_step[observation.step] = (
                    observation.datacenter.ram_free_mb(0)
                )
                return []

        sim.run(Probe())
        assert free_at_step[2] > free_at_step[0]

    def test_waits_for_capacity(self):
        # Tiny second host: when VM 1 returns, host 0 is full of VM 2's
        # reservation, so VM 1 waits in the pending queue.
        pms = [make_pm(0, ram_mb=1024.0)]
        vms = [make_vm(0, ram_mb=1024.0), make_vm(1, ram_mb=1024.0)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        matrix = np.full((2, 4), 0.2)
        active = np.array(
            [
                [True, True, False, False],  # VM 0 leaves at step 2
                [False, True, True, True],  # VM 1 arrives at step 1
            ]
        )
        sim = Simulation(
            dc,
            ArrayWorkload(matrix, active),
            SimulationConfig(num_steps=4),
            dynamic_provisioning=True,
        )
        seen = {}

        class Probe:
            name = "probe"

            def decide(self, observation):
                seen[observation.step] = observation.datacenter.is_placed(1)
                return []

        sim.run(Probe())
        assert seen[1] is False  # no room yet
        assert seen[2] is True  # VM 0 deprovisioned, VM 1 placed

    def test_pending_queue_preserves_arrival_order(self):
        # One host with room for a single VM.  VMs 1-3 all arrive at
        # step 1 while VM 0 still occupies the host; the pending queue
        # must hold them in arrival (id) order, and when the slot frees
        # at step 2 the *first* pending VM is the one placed.
        pms = [make_pm(0, ram_mb=1024.0)]
        vms = [make_vm(j, ram_mb=1024.0) for j in range(4)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        matrix = np.full((4, 4), 0.2)
        active = np.array(
            [
                [True, True, False, False],  # VM 0 leaves at step 2
                [False, True, True, True],
                [False, True, True, True],
                [False, True, True, True],
            ]
        )
        sim = Simulation(
            dc,
            ArrayWorkload(matrix, active),
            SimulationConfig(num_steps=4),
            dynamic_provisioning=True,
        )
        pending_at = {}
        placed_at = {}

        class Probe:
            name = "probe"

            def decide(self, observation):
                pending_at[observation.step] = list(sim.pending_vm_ids)
                placed_at[observation.step] = sorted(
                    vm_id
                    for vm_id in range(4)
                    if observation.datacenter.is_placed(vm_id)
                )
                return []

        sim.run(Probe())
        assert pending_at[1] == [1, 2, 3]  # FIFO, arrival order
        assert placed_at[2] == [1]  # head of the queue wins the slot
        assert pending_at[2] == [2, 3]  # order of the rest untouched

    def test_reset_clears_pending(self):
        sim = build_sim(dynamic=True)
        sim.run(NoMigrationScheduler())
        sim.reset()
        assert sim.pending_vm_ids == []
        assert sim.datacenter.is_placed(1)

    def test_google_trace_with_provisioning(self):
        pms = [make_pm(i) for i in range(3)]
        workload = generate_google_workload(num_vms=8, num_steps=40, seed=0)
        vms = [make_vm(j, ram_mb=700.0) for j in range(8)]
        dc = Datacenter(pms, vms)
        for j in range(8):
            dc.place(j, j % 3)
        sim = Simulation(
            dc,
            workload,
            SimulationConfig(num_steps=40),
            dynamic_provisioning=True,
        )
        result = sim.run(NoMigrationScheduler())
        assert len(result.metrics.steps) == 40
        # Invariant: every *active* VM is either placed or pending.
        for vm in dc.vms:
            if vm.is_active:
                assert dc.is_placed(vm.vm_id) or (
                    vm.vm_id in sim.pending_vm_ids
                )
            else:
                assert not dc.is_placed(vm.vm_id)
