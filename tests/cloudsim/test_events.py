"""Tests for the structured event log."""

import pytest

from repro.baselines.random_policy import RandomScheduler
from repro.cloudsim.events import Event, EventKind, EventLog
from repro.errors import ConfigurationError


class TestEvent:
    def test_json_roundtrip(self):
        event = Event(step=3, kind=EventKind.MIGRATION_STARTED,
                      payload={"vm_id": 1, "pm_id": 2})
        restored = Event.from_json(event.to_json())
        assert restored == event

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigurationError):
            Event.from_json("{not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            Event.from_json('{"kind": "custom"}')


class TestEventLog:
    @pytest.fixture
    def log(self):
        log = EventLog()
        log.emit(0, EventKind.MIGRATION_STARTED, vm_id=1, pm_id=2)
        log.emit(0, EventKind.HOST_OVERLOADED, pm_id=2)
        log.emit(1, EventKind.MIGRATION_COMPLETED, vm_id=1)
        log.emit(1, EventKind.MIGRATION_STARTED, vm_id=3, pm_id=0)
        return log

    def test_length_and_iteration(self, log):
        assert len(log) == 4
        assert len(list(log)) == 4

    def test_query_by_kind(self, log):
        started = log.query(kind=EventKind.MIGRATION_STARTED)
        assert len(started) == 2

    def test_query_by_step(self, log):
        assert len(log.query(step=1)) == 2

    def test_query_by_vm(self, log):
        assert len(log.query(vm_id=1)) == 2

    def test_query_by_pm(self, log):
        assert len(log.query(pm_id=2)) == 2

    def test_query_combined(self, log):
        matches = log.query(kind=EventKind.MIGRATION_STARTED, vm_id=3)
        assert len(matches) == 1
        assert matches[0].step == 1

    def test_counts(self, log):
        counts = log.counts()
        assert counts[EventKind.MIGRATION_STARTED] == 2
        assert counts[EventKind.HOST_OVERLOADED] == 1

    def test_jsonl_roundtrip(self, log, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log.save_jsonl(path)
        restored = EventLog.load_jsonl(path)
        assert list(restored) == list(log)


class TestSimulationIntegration:
    def test_simulation_emits_events(self, tiny_simulation):
        log = EventLog()
        tiny_simulation.run(
            RandomScheduler(migrations_per_step=1, seed=0), event_log=log
        )
        counts = log.counts()
        assert counts.get(EventKind.MIGRATION_STARTED, 0) > 0
        # Every start eventually completes (fast transfers).
        assert counts.get(EventKind.MIGRATION_COMPLETED, 0) == counts.get(
            EventKind.MIGRATION_STARTED, 0
        )

    def test_event_steps_within_run(self, tiny_simulation):
        log = EventLog()
        tiny_simulation.reset()
        tiny_simulation.run(
            RandomScheduler(migrations_per_step=1, seed=1),
            num_steps=10,
            event_log=log,
        )
        assert all(0 <= event.step < 10 for event in log)

    def test_no_log_no_overhead(self, tiny_simulation):
        tiny_simulation.reset()
        result = tiny_simulation.run(
            RandomScheduler(migrations_per_step=1, seed=0)
        )
        assert len(result.metrics.steps) == 20
