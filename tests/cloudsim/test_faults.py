"""Tests for host-failure injection."""

import pytest

from repro.baselines.noop import NoMigrationScheduler
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.faults import (
    FaultEvent,
    FaultInjector,
    FaultTolerantScheduler,
)
from repro.cloudsim.migration import Migration
from repro.cloudsim.simulation import Simulation
from repro.config import SimulationConfig
from repro.core.agent import MeghScheduler
from repro.errors import ConfigurationError
from repro.workloads.synthetic import constant_workload

from tests.conftest import make_pm, make_vm


@pytest.fixture
def dc():
    pms = [make_pm(i) for i in range(3)]
    vms = [make_vm(j, ram_mb=512.0) for j in range(4)]
    datacenter = Datacenter(pms, vms)
    for j in range(4):
        datacenter.place(j, j % 3)
    return datacenter


class TestFaultEvent:
    def test_valid(self):
        event = FaultEvent(pm_id=0, fail_step=5, repair_step=10)
        assert event.repair_step == 10

    def test_repair_before_failure_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(pm_id=0, fail_step=5, repair_step=5)

    def test_negative_fail_step(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(pm_id=0, fail_step=-1)

    def test_overlapping_events_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(
                [
                    FaultEvent(0, fail_step=0, repair_step=10),
                    FaultEvent(0, fail_step=5, repair_step=15),
                ]
            )


class TestFailure:
    def test_failure_evacuates_vms(self, dc):
        injector = FaultInjector([FaultEvent(0, fail_step=0)])
        report = injector.apply_step(dc, step=0)
        assert report.failed_pms == [0]
        assert dc.vms_on(0) == set()
        assert sorted(report.displaced_vms) == [0, 3]
        # Everyone found a new home on the surviving hosts.
        assert all(dc.is_placed(j) for j in range(4))

    def test_failed_host_sleeps(self, dc):
        injector = FaultInjector([FaultEvent(0, fail_step=0)])
        injector.apply_step(dc, step=0)
        assert dc.pm(0).asleep
        assert injector.is_down(0)

    def test_stranded_when_no_capacity(self):
        # One surviving tiny host cannot absorb the failed host's VM.
        pms = [make_pm(0), make_pm(1, ram_mb=256.0)]
        vms = [make_vm(0, ram_mb=1024.0)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        injector = FaultInjector([FaultEvent(0, fail_step=0)])
        report = injector.apply_step(dc, step=0)
        assert report.stranded_vms == [0]
        assert not dc.is_placed(0)
        assert injector.stranded_vm_ids == {0}

    def test_stranded_vm_recovers_on_repair(self):
        pms = [make_pm(0), make_pm(1, ram_mb=256.0)]
        vms = [make_vm(0, ram_mb=1024.0)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        injector = FaultInjector(
            [FaultEvent(0, fail_step=0, repair_step=3)]
        )
        injector.apply_step(dc, step=0)
        injector.apply_step(dc, step=1)
        assert not dc.is_placed(0)
        report = injector.apply_step(dc, step=3)
        assert report.repaired_pms == [0]
        assert 0 in report.displaced_vms
        assert dc.is_placed(0)
        assert injector.stranded_vm_ids == set()

    def test_no_event_no_activity(self, dc):
        injector = FaultInjector()
        report = injector.apply_step(dc, step=0)
        assert not report.any_activity

    def test_migrations_into_failed_host_filtered(self, dc):
        injector = FaultInjector([FaultEvent(2, fail_step=0)])
        injector.apply_step(dc, step=0)
        migrations = [Migration(0, 2), Migration(0, 1)]
        kept = injector.filter_migrations(migrations, dc)
        assert kept == [Migration(0, 1)]


class TestRandomSchedule:
    def test_deterministic(self):
        a = FaultInjector.random_schedule(10, 100, 0.01, seed=1)
        b = FaultInjector.random_schedule(10, 100, 0.01, seed=1)
        assert a._events == b._events

    def test_zero_probability_no_events(self):
        injector = FaultInjector.random_schedule(10, 100, 0.0, seed=0)
        assert injector._events == []

    def test_events_within_horizon(self):
        injector = FaultInjector.random_schedule(
            5, 50, failure_probability=0.05, seed=2
        )
        for event in injector._events:
            assert 0 <= event.fail_step < 50

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            FaultInjector.random_schedule(5, 50, failure_probability=2.0)
        with pytest.raises(ConfigurationError):
            FaultInjector.random_schedule(5, 50, mean_repair_steps=0.5)


class TestFaultTolerantScheduler:
    def _simulation(self):
        pms = [make_pm(i) for i in range(4)]
        vms = [make_vm(j, ram_mb=512.0) for j in range(6)]
        dc = Datacenter(pms, vms)
        for j in range(6):
            dc.place(j, j % 4)
        workload = constant_workload(6, 40, level=0.3)
        return Simulation(dc, workload, SimulationConfig(num_steps=40))

    def test_invariants_hold_through_failures(self):
        sim = self._simulation()
        injector = FaultInjector(
            [
                FaultEvent(0, fail_step=5, repair_step=20),
                FaultEvent(2, fail_step=10, repair_step=25),
            ]
        )
        wrapped = FaultTolerantScheduler(
            MeghScheduler.from_simulation(sim, seed=0), injector
        )
        result = sim.run(wrapped)
        assert len(result.metrics.steps) == 40
        dc = sim.datacenter
        # Every VM is placed again after repairs, RAM never oversubscribed.
        assert sorted(dc.placement()) == list(range(6))
        for pm in dc.pms:
            assert dc.ram_used_mb(pm.pm_id) <= pm.ram_mb + 1e-9

    def test_reports_collected(self):
        sim = self._simulation()
        injector = FaultInjector([FaultEvent(1, fail_step=3)])
        wrapped = FaultTolerantScheduler(NoMigrationScheduler(), injector)
        sim.run(wrapped)
        assert len(wrapped.reports) == 40
        assert wrapped.reports[3].failed_pms == [1]
        assert wrapped.name == "NoMigration+faults"

    def test_nothing_placed_on_downed_host_while_down(self):
        sim = self._simulation()
        injector = FaultInjector(
            [FaultEvent(0, fail_step=5, repair_step=30)]
        )
        placements_on_zero = []

        class Probe:
            name = "probe"

            def decide(self, observation):
                if 5 <= observation.step < 30:
                    placements_on_zero.append(
                        len(observation.datacenter.vms_on(0))
                    )
                return []

        sim.run(FaultTolerantScheduler(Probe(), injector))
        assert all(count == 0 for count in placements_on_zero)
