"""Unit tests for the metrics collector and figure series."""

import pytest

from repro.cloudsim.metrics import MetricsCollector, StepMetrics


def step(i, energy=1.0, sla=0.5, migrations=2, hosts=3, seconds=0.001):
    return StepMetrics(
        step=i,
        energy_cost_usd=energy,
        sla_cost_usd=sla,
        num_migrations_started=migrations,
        num_migrations_rejected=0,
        num_active_hosts=hosts,
        scheduler_seconds=seconds,
        mean_host_utilization=0.5,
        num_overloaded_hosts=0,
    )


@pytest.fixture
def collector():
    c = MetricsCollector()
    for i in range(5):
        c.record(step(i))
    return c


class TestAggregates:
    def test_total_cost(self, collector):
        assert collector.total_cost_usd == pytest.approx(7.5)

    def test_cost_split(self, collector):
        assert collector.total_energy_cost_usd == pytest.approx(5.0)
        assert collector.total_sla_cost_usd == pytest.approx(2.5)

    def test_total_migrations(self, collector):
        assert collector.total_migrations == 10

    def test_mean_active_hosts(self, collector):
        assert collector.mean_active_hosts == pytest.approx(3.0)

    def test_mean_scheduler_time(self, collector):
        assert collector.mean_scheduler_milliseconds == pytest.approx(1.0)

    def test_empty_collector(self):
        c = MetricsCollector()
        assert c.total_cost_usd == 0.0
        assert c.mean_active_hosts == 0.0
        assert c.mean_scheduler_seconds == 0.0


class TestSeries:
    def test_per_step_cost(self, collector):
        assert collector.per_step_cost_series() == [1.5] * 5

    def test_cumulative_migrations(self, collector):
        assert collector.cumulative_migration_series() == [2, 4, 6, 8, 10]

    def test_active_hosts(self, collector):
        assert collector.active_host_series() == [3] * 5

    def test_scheduler_ms(self, collector):
        assert collector.scheduler_time_series_ms() == pytest.approx([1.0] * 5)

    def test_step_total(self):
        s = step(0, energy=2.0, sla=3.0)
        assert s.total_cost_usd == pytest.approx(5.0)


class TestConvergence:
    def test_flat_series_converges_immediately(self):
        c = MetricsCollector()
        for i in range(50):
            c.record(step(i, energy=1.0, sla=0.0))
        assert c.convergence_step(window=5) == 0

    def test_transient_then_flat(self):
        c = MetricsCollector()
        for i in range(20):
            c.record(step(i, energy=10.0, sla=0.0))
        for i in range(20, 100):
            c.record(step(i, energy=1.0, sla=0.0))
        conv = c.convergence_step(window=5)
        assert 20 <= conv <= 30

    def test_short_series(self):
        c = MetricsCollector()
        for i in range(3):
            c.record(step(i))
        assert c.convergence_step(window=10) == 3

    def test_never_settles(self):
        c = MetricsCollector()
        for i in range(60):
            c.record(step(i, energy=float(i), sla=0.0))
        # Strictly increasing cost: convergence at the very end.
        assert c.convergence_step(window=5) >= 50
