"""Unit tests for the live-migration engine."""

import pytest

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.migration import Migration, MigrationEngine
from repro.errors import MigrationError

from tests.conftest import make_pm, make_vm


@pytest.fixture
def engine_setup():
    pms = [make_pm(i) for i in range(3)]
    vms = [make_vm(j) for j in range(3)]
    dc = Datacenter(pms, vms)
    for vm_id in range(3):
        dc.place(vm_id, 0)
    engine = MigrationEngine(dc, overhead_fraction=0.10, alpha=0.30)
    return dc, engine


class TestStart:
    def test_successful_start_moves_placement(self, engine_setup):
        dc, engine = engine_setup
        outcome = engine.start([Migration(vm_id=0, dest_pm_id=1)])
        assert outcome.started == (Migration(0, 1),)
        assert dc.host_of(0) == 1
        assert engine.is_migrating(0)

    def test_migration_to_current_host_rejected(self, engine_setup):
        dc, engine = engine_setup
        outcome = engine.start([Migration(vm_id=0, dest_pm_id=0)])
        assert outcome.rejected == (Migration(0, 0),)
        assert not engine.is_migrating(0)

    def test_double_migration_rejected(self, engine_setup):
        dc, engine = engine_setup
        engine.start([Migration(0, 1)])
        outcome = engine.start([Migration(0, 2)])
        assert outcome.rejected == (Migration(0, 2),)
        assert dc.host_of(0) == 1

    def test_capacity_rejection(self):
        pms = [make_pm(0), make_pm(1, ram_mb=512.0)]
        vms = [make_vm(0, ram_mb=1024.0)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        engine = MigrationEngine(dc)
        outcome = engine.start([Migration(0, 1)])
        assert outcome.rejected == (Migration(0, 1),)
        assert dc.host_of(0) == 0

    def test_total_migration_counter(self, engine_setup):
        dc, engine = engine_setup
        engine.start([Migration(0, 1), Migration(1, 2)])
        assert engine.total_migrations == 2

    def test_invalid_parameters(self, engine_setup):
        dc, _ = engine_setup
        with pytest.raises(MigrationError):
            MigrationEngine(dc, overhead_fraction=1.0)
        with pytest.raises(MigrationError):
            MigrationEngine(dc, alpha=1.5)


class TestAdvance:
    def test_completion_within_one_interval(self, engine_setup):
        dc, engine = engine_setup
        # 1024 MB over the 1000-Mbps host link: 8.192 s < 300 s.
        engine.start([Migration(0, 1)])
        dc.share_cpu()
        outcome = engine.advance(300.0)
        assert outcome.completed == (0,)
        assert not engine.is_migrating(0)

    def test_long_migration_spans_intervals(self):
        pms = [make_pm(0, ram_mb=8192.0), make_pm(1, ram_mb=8192.0)]
        pms[0].bandwidth_mbps = 10.0  # 4096 MB over 10 Mbps = 3276.8 s
        pms[1].bandwidth_mbps = 10.0
        vms = [make_vm(0, ram_mb=4096.0)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        engine = MigrationEngine(dc)
        engine.start([Migration(0, 1)])
        dc.share_cpu()
        outcome = engine.advance(300.0)
        assert outcome.completed == ()
        assert engine.is_migrating(0)

    def test_overhead_downtime_charged(self, engine_setup):
        dc, engine = engine_setup
        dc.vm(0).set_demand(0.5)
        engine.start([Migration(0, 1)])
        dc.share_cpu()
        outcome = engine.advance(300.0)
        # Transfer lasts 8.192 s; 10 % overhead downtime = 0.8192 s.
        assert outcome.downtime_seconds[0] == pytest.approx(0.8192)

    def test_alpha_rule_full_window_downtime(self, engine_setup):
        dc, engine = engine_setup
        dc.vm(0).set_demand(0.5)
        engine.start([Migration(0, 1)])
        dc.share_cpu()
        # Simulate severe degradation on the destination.
        dc.vm(0).delivered_utilization = 0.05  # below alpha * demand = 0.15
        outcome = engine.advance(300.0)
        assert outcome.downtime_seconds[0] == pytest.approx(8.192)

    def test_idle_vm_no_alpha_downtime(self, engine_setup):
        dc, engine = engine_setup
        dc.vm(0).set_demand(0.0)
        engine.start([Migration(0, 1)])
        dc.share_cpu()
        outcome = engine.advance(300.0)
        # Zero demand: only the overhead term applies.
        assert outcome.downtime_seconds[0] == pytest.approx(0.8192)

    def test_advance_requires_positive_interval(self, engine_setup):
        _, engine = engine_setup
        with pytest.raises(MigrationError):
            engine.advance(0.0)

    def test_in_flight_cpu_overhead(self, engine_setup):
        dc, engine = engine_setup
        dc.vm(0).set_demand(0.5)
        engine.start([Migration(0, 1)])
        dc.share_cpu()
        engine.advance(300.0)
        # share_cpu delivered 0.5, engine reduced it by 10 %.
        assert dc.vm(0).delivered_utilization == pytest.approx(0.45)
