"""Unit tests for utilization monitoring and the robust statistics helpers."""

import pytest

from repro.cloudsim.monitor import (
    UtilizationMonitor,
    interquartile_range,
    mean,
    median,
    median_absolute_deviation,
)
from repro.errors import ConfigurationError


class TestMonitor:
    def test_records_vm_and_host_histories(self, placed_datacenter):
        monitor = UtilizationMonitor(history_length=4)
        placed_datacenter.vm(0).set_demand(0.5)
        monitor.observe(placed_datacenter)
        assert monitor.vm_history(0) == [0.5]
        assert monitor.host_history(0) == pytest.approx([0.125])

    def test_history_bounded(self, placed_datacenter):
        monitor = UtilizationMonitor(history_length=3)
        for step in range(5):
            placed_datacenter.vm(0).set_demand(step / 10.0)
            monitor.observe(placed_datacenter)
        assert monitor.vm_history(0) == pytest.approx([0.2, 0.3, 0.4])

    def test_steps_observed(self, placed_datacenter):
        monitor = UtilizationMonitor()
        monitor.observe(placed_datacenter)
        monitor.observe(placed_datacenter)
        assert monitor.steps_observed == 2

    def test_unknown_entity_empty_history(self):
        monitor = UtilizationMonitor()
        assert monitor.vm_history(99) == []
        assert monitor.last_host_utilization(99, default=0.3) == 0.3

    def test_last_host_utilization(self, placed_datacenter):
        monitor = UtilizationMonitor()
        placed_datacenter.vm(4).set_demand(0.8)
        monitor.observe(placed_datacenter)
        assert monitor.last_host_utilization(2) == pytest.approx(0.2)

    def test_invalid_history_length(self):
        with pytest.raises(ConfigurationError):
            UtilizationMonitor(history_length=0)

    def test_host_histories_snapshot(self, placed_datacenter):
        monitor = UtilizationMonitor()
        monitor.observe(placed_datacenter)
        snapshot = monitor.host_histories()
        snapshot[0].append(99.0)
        assert len(monitor.host_history(0)) == 1


class TestStatistics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert mean([]) == 0.0

    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even(self):
        assert median([4.0, 1.0, 3.0, 2.0]) == pytest.approx(2.5)

    def test_median_empty(self):
        assert median([]) == 0.0

    def test_iqr(self):
        # 1..8: Q1 = 2.75, Q3 = 6.25 -> IQR 3.5 (linear interpolation).
        values = [float(v) for v in range(1, 9)]
        assert interquartile_range(values) == pytest.approx(3.5)

    def test_iqr_short(self):
        assert interquartile_range([1.0]) == 0.0

    def test_mad(self):
        # median 2; |x - 2| = [1, 0, 1] -> MAD 1.
        assert median_absolute_deviation([1.0, 2.0, 3.0]) == 1.0

    def test_mad_constant(self):
        assert median_absolute_deviation([5.0] * 4) == 0.0
