"""Tests for network topologies and topology-aware migration."""

import pytest

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.migration import Migration, MigrationEngine
from repro.cloudsim.network import (
    FatTreeTopology,
    FlatNetwork,
    NetworkTopology,
    StarNetwork,
    migration_seconds,
    traffic_cost_usd,
)
from repro.cloudsim.simulation import Simulation
from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.workloads.synthetic import constant_workload

from tests.conftest import make_pm, make_vm


class TestFlatAndStar:
    def test_flat_uniform_bandwidth(self):
        net = FlatNetwork(link_bandwidth_mbps=500.0)
        assert net.path_bandwidth_mbps(0, 5) == 500.0
        assert net.hop_count(0, 5) == 1

    def test_same_host_infinite(self):
        net = FlatNetwork()
        assert net.path_bandwidth_mbps(3, 3) == float("inf")
        assert net.hop_count(3, 3) == 0

    def test_star_two_hops(self):
        net = StarNetwork(uplink_bandwidth_mbps=100.0)
        assert net.hop_count(0, 1) == 2
        assert net.path_bandwidth_mbps(0, 1) == 100.0

    def test_protocol_conformance(self):
        assert isinstance(FlatNetwork(), NetworkTopology)
        assert isinstance(StarNetwork(), NetworkTopology)
        assert isinstance(FatTreeTopology(), NetworkTopology)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            FlatNetwork(link_bandwidth_mbps=0.0)
        with pytest.raises(ConfigurationError):
            StarNetwork(uplink_bandwidth_mbps=-1.0)


class TestFatTree:
    def test_capacity(self):
        # k=4: 4 pods x 4 hosts = 16 hosts.
        tree = FatTreeTopology(k=4)
        assert tree.max_hosts == 16
        assert tree.hosts_per_edge == 2
        assert tree.hosts_per_pod == 4

    def test_structure_mapping(self):
        tree = FatTreeTopology(k=4)
        assert tree.edge_of(0) == tree.edge_of(1)
        assert tree.edge_of(0) != tree.edge_of(2)
        assert tree.pod_of(0) == tree.pod_of(3)
        assert tree.pod_of(0) != tree.pod_of(4)

    def test_hop_classes(self):
        tree = FatTreeTopology(k=4)
        assert tree.hop_count(0, 0) == 0
        assert tree.hop_count(0, 1) == 2  # same edge switch
        assert tree.hop_count(0, 2) == 4  # same pod, other edge
        assert tree.hop_count(0, 4) == 6  # other pod

    def test_nonblocking_bandwidth_uniform(self):
        tree = FatTreeTopology(k=4, edge_bandwidth_mbps=1000.0)
        # Leiserson's ideal: full bandwidth everywhere.
        assert tree.path_bandwidth_mbps(0, 1) == 1000.0
        assert tree.path_bandwidth_mbps(0, 4) == 1000.0

    def test_oversubscription_degrades_by_level(self):
        tree = FatTreeTopology(
            k=4,
            edge_bandwidth_mbps=1000.0,
            edge_oversubscription=2.0,
            aggregation_oversubscription=2.0,
        )
        assert tree.path_bandwidth_mbps(0, 1) == 1000.0
        assert tree.path_bandwidth_mbps(0, 2) == 500.0
        assert tree.path_bandwidth_mbps(0, 4) == 250.0

    def test_host_bounds_checked(self):
        tree = FatTreeTopology(k=2)  # capacity 2
        with pytest.raises(ConfigurationError):
            tree.hop_count(0, 2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 3},
            {"k": 0},
            {"edge_bandwidth_mbps": 0.0},
            {"edge_oversubscription": 0.5},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            FatTreeTopology(**kwargs)


class TestHelpers:
    def test_migration_seconds(self):
        net = FlatNetwork(link_bandwidth_mbps=1000.0)
        # 1024 MB over 1 Gbps = 8.192 s.
        assert migration_seconds(net, 1024.0, 0, 1) == pytest.approx(8.192)

    def test_migration_seconds_same_host(self):
        assert migration_seconds(FlatNetwork(), 1024.0, 2, 2) == 0.0

    def test_migration_seconds_invalid_ram(self):
        with pytest.raises(ConfigurationError):
            migration_seconds(FlatNetwork(), 0.0, 0, 1)

    def test_traffic_cost(self):
        tree = FatTreeTopology(k=4)
        # 2048 MB = 2 GB across pods (6 hops) at 0.01 USD/GB-hop.
        cost = traffic_cost_usd(tree, 2048.0, 0, 4, usd_per_gb_hop=0.01)
        assert cost == pytest.approx(0.12)

    def test_traffic_cost_invalid_price(self):
        with pytest.raises(ConfigurationError):
            traffic_cost_usd(FlatNetwork(), 1024.0, 0, 1, usd_per_gb_hop=-1.0)


class TestTopologyAwareMigration:
    def _setup(self, topology):
        pms = [make_pm(i) for i in range(6)]
        vms = [make_vm(0, ram_mb=1024.0)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        engine = MigrationEngine(dc, topology=topology)
        return dc, engine

    def test_cross_pod_migration_slower(self):
        tree = FatTreeTopology(
            k=4, edge_oversubscription=4.0, aggregation_oversubscription=4.0
        )
        dc_local, engine_local = self._setup(tree)
        engine_local.start([Migration(0, 1)])  # same edge, full speed
        dc_local.share_cpu()
        local = engine_local.advance(300.0)

        dc_far, engine_far = self._setup(tree)
        engine_far.start([Migration(0, 4)])  # cross-pod, 1/16 speed
        dc_far.share_cpu()
        far = engine_far.advance(300.0)

        # Same-edge transfer (8.2 s) completes within the interval; the
        # cross-pod one (131 s) accrues far more degradation downtime.
        assert far.downtime_seconds[0] > local.downtime_seconds[0]

    def test_gb_hops_accounted(self):
        tree = FatTreeTopology(k=4)
        dc, engine = self._setup(tree)
        engine.start([Migration(0, 4)])
        assert engine.total_gb_hops == pytest.approx(6.0)

    def test_simulation_accepts_topology(self):
        pms = [make_pm(i) for i in range(4)]
        vms = [make_vm(j, ram_mb=512.0) for j in range(4)]
        dc = Datacenter(pms, vms)
        for j in range(4):
            dc.place(j, j)
        sim = Simulation(
            dc,
            constant_workload(4, 10, level=0.3),
            SimulationConfig(num_steps=10),
            topology=FatTreeTopology(k=4),
        )
        from repro.baselines.random_policy import RandomScheduler

        result = sim.run(RandomScheduler(migrations_per_step=1, seed=0))
        assert len(result.metrics.steps) == 10
