"""Unit tests for the power models (Table 1 of the paper)."""

import pytest
from hypothesis import given, strategies as st

from repro.cloudsim.power import (
    HP_PROLIANT_G4,
    HP_PROLIANT_G5,
    LinearPowerModel,
    SpecPowerModel,
    average_power,
    energy_joules,
)
from repro.errors import ConfigurationError


class TestSpecPowerModel:
    def test_table1_g4_measurement_points(self):
        # Exact Table-1 values at the measurement grid.
        assert HP_PROLIANT_G4.power(0.0) == 86.0
        assert HP_PROLIANT_G4.power(0.5) == 102.0
        assert HP_PROLIANT_G4.power(1.0) == 117.0

    def test_table1_g5_measurement_points(self):
        assert HP_PROLIANT_G5.power(0.0) == 93.7
        assert HP_PROLIANT_G5.power(0.3) == 105.0
        assert HP_PROLIANT_G5.power(1.0) == 135.0

    def test_interpolation_midpoint(self):
        # Between 0% (86) and 10% (89.4): 5% -> 87.7.
        assert HP_PROLIANT_G4.power(0.05) == pytest.approx(87.7)

    def test_clamps_below_zero(self):
        assert HP_PROLIANT_G4.power(-0.5) == 86.0

    def test_clamps_above_one(self):
        assert HP_PROLIANT_G4.power(1.5) == 117.0

    def test_g5_draws_more_than_g4_everywhere(self):
        for i in range(11):
            u = i / 10.0
            assert HP_PROLIANT_G5.power(u) > HP_PROLIANT_G4.power(u)

    def test_idle_and_max_power(self):
        assert HP_PROLIANT_G4.idle_power == 86.0
        assert HP_PROLIANT_G4.max_power == 117.0

    def test_requires_eleven_measurements(self):
        with pytest.raises(ConfigurationError):
            SpecPowerModel(name="bad", watts=(1.0, 2.0))

    def test_rejects_negative_measurements(self):
        with pytest.raises(ConfigurationError):
            SpecPowerModel(name="bad", watts=tuple([-1.0] + [1.0] * 10))

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_nondecreasing(self, u):
        # SPEC curves are monotone; interpolation must preserve that.
        assert HP_PROLIANT_G4.power(u) <= HP_PROLIANT_G4.power(min(1.0, u + 0.05)) + 1e-9

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_within_idle_max_band(self, u):
        power = HP_PROLIANT_G5.power(u)
        assert HP_PROLIANT_G5.idle_power <= power <= HP_PROLIANT_G5.max_power


class TestLinearPowerModel:
    def test_endpoints(self):
        model = LinearPowerModel(idle_watts=50.0, peak_watts=150.0)
        assert model.power(0.0) == 50.0
        assert model.power(1.0) == 150.0

    def test_midpoint(self):
        model = LinearPowerModel(idle_watts=50.0, peak_watts=150.0)
        assert model.power(0.5) == pytest.approx(100.0)

    def test_rejects_peak_below_idle(self):
        with pytest.raises(ConfigurationError):
            LinearPowerModel(idle_watts=100.0, peak_watts=50.0)

    def test_rejects_negative_idle(self):
        with pytest.raises(ConfigurationError):
            LinearPowerModel(idle_watts=-1.0, peak_watts=50.0)

    def test_clamping(self):
        model = LinearPowerModel(idle_watts=10.0, peak_watts=20.0)
        assert model.power(2.0) == 20.0
        assert model.power(-1.0) == 10.0


class TestEnergyHelpers:
    def test_energy_joules(self):
        model = LinearPowerModel(idle_watts=100.0, peak_watts=200.0)
        assert energy_joules(model, 0.0, 10.0) == pytest.approx(1000.0)

    def test_energy_rejects_negative_duration(self):
        model = LinearPowerModel(idle_watts=100.0, peak_watts=200.0)
        with pytest.raises(ConfigurationError):
            energy_joules(model, 0.5, -1.0)

    def test_average_power_empty(self):
        assert average_power(HP_PROLIANT_G4, []) == 0.0

    def test_average_power(self):
        model = LinearPowerModel(idle_watts=0.0, peak_watts=100.0)
        assert average_power(model, [0.0, 1.0]) == pytest.approx(50.0)
