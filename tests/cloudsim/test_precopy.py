"""Tests for the iterative pre-copy migration model."""

import pytest
from hypothesis import given, strategies as st

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.migration import Migration, MigrationEngine
from repro.cloudsim.precopy import PrecopyModel
from repro.errors import ConfigurationError

from tests.conftest import make_pm, make_vm


class TestModel:
    def test_zero_dirty_rate_matches_single_shot(self):
        model = PrecopyModel(dirty_rate_mbps=0.0, stop_threshold_mb=1.0)
        outcome = model.transfer(ram_mb=1024.0, bandwidth_mbps=1000.0)
        # One full round (8.192 s), nothing re-dirtied, ~zero residue.
        assert outcome.rounds == 1
        assert outcome.total_seconds == pytest.approx(8.192, abs=0.01)
        assert outcome.downtime_seconds == pytest.approx(0.0, abs=1e-6)

    def test_dirtying_adds_rounds(self):
        slow = PrecopyModel(dirty_rate_mbps=0.0)
        busy = PrecopyModel(dirty_rate_mbps=500.0)
        idle = slow.transfer(1024.0, 1000.0)
        dirty = busy.transfer(1024.0, 1000.0)
        assert dirty.rounds > idle.rounds
        assert dirty.total_seconds > idle.total_seconds

    def test_geometric_round_shrinkage(self):
        # D/B = 0.5: each round's transfer halves.
        model = PrecopyModel(dirty_rate_mbps=500.0, stop_threshold_mb=1.0)
        outcome = model.transfer(1024.0, 1000.0)
        assert model.convergence_ratio(1000.0) == pytest.approx(0.5)
        # Total time = sum of geometric series: M/B * 1/(1 - 0.5) = 2x.
        assert outcome.total_seconds == pytest.approx(
            2 * 1024 * 8 / 1000, rel=0.05
        )

    def test_divergent_dirty_rate_bounded(self):
        model = PrecopyModel(dirty_rate_mbps=2000.0, max_rounds=30)
        outcome = model.transfer(1024.0, 1000.0)
        # D > B: one round then forced stop-and-copy of the full residue.
        assert outcome.rounds <= 2
        assert outcome.residual_mb == pytest.approx(1024.0)
        assert outcome.downtime_seconds == pytest.approx(8.192, abs=0.01)

    def test_downtime_is_residue_over_bandwidth(self):
        model = PrecopyModel(dirty_rate_mbps=100.0, stop_threshold_mb=8.0)
        outcome = model.transfer(512.0, 1000.0)
        assert outcome.downtime_seconds == pytest.approx(
            outcome.residual_mb / (1000.0 / 8.0)
        )

    @given(
        st.floats(min_value=64.0, max_value=8192.0),
        st.floats(min_value=0.0, max_value=900.0),
    )
    def test_convergent_downtime_below_threshold_time(self, ram, dirty):
        model = PrecopyModel(dirty_rate_mbps=dirty, stop_threshold_mb=8.0)
        outcome = model.transfer(ram, 1000.0)
        if model.convergence_ratio(1000.0) < 1.0:
            # Residue can exceed the threshold by at most one dirtying
            # round factor.
            assert outcome.residual_mb <= max(8.0 / (1 - dirty / 1000.0), ram * (dirty / 1000.0))
            assert outcome.downtime_seconds < outcome.total_seconds + 1e-9

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dirty_rate_mbps": -1.0},
            {"stop_threshold_mb": 0.0},
            {"max_rounds": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            PrecopyModel(**kwargs)

    def test_transfer_invalid_inputs(self):
        model = PrecopyModel()
        with pytest.raises(ConfigurationError):
            model.transfer(0.0, 1000.0)
        with pytest.raises(ConfigurationError):
            model.transfer(1024.0, 0.0)


class TestEngineIntegration:
    def _setup(self, precopy):
        pms = [make_pm(0), make_pm(1)]
        vms = [make_vm(0, ram_mb=1024.0)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        return dc, MigrationEngine(dc, precopy=precopy)

    def test_stop_and_copy_downtime_charged_at_completion(self):
        model = PrecopyModel(dirty_rate_mbps=500.0, stop_threshold_mb=8.0)
        dc, engine = self._setup(model)
        dc.vm(0).set_demand(0.5)
        engine.start([Migration(0, 1)])
        dc.share_cpu()
        outcome = engine.advance(300.0)
        assert outcome.completed == (0,)
        expected = model.transfer(1024.0, 1000.0)
        # Downtime = overhead during the transfer window + stop-and-copy.
        assert outcome.downtime_seconds[0] == pytest.approx(
            0.10 * expected.total_seconds + expected.downtime_seconds,
            rel=1e-6,
        )

    def test_precopy_longer_than_single_shot(self):
        model = PrecopyModel(dirty_rate_mbps=800.0)
        dc_pre, engine_pre = self._setup(model)
        engine_pre.start([Migration(0, 1)])
        dc_flat, engine_flat = self._setup(None)
        engine_flat.start([Migration(0, 1)])
        assert (
            engine_pre._in_flight[0].total_seconds
            > engine_flat._in_flight[0].total_seconds
        )
