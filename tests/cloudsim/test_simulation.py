"""Unit and integration tests for the simulation driver."""

import pytest

from repro.baselines.noop import NoMigrationScheduler
from repro.baselines.random_policy import RandomScheduler
from repro.cloudsim.migration import Migration
from repro.cloudsim.simulation import Simulation
from repro.cloudsim.datacenter import Datacenter
from repro.config import SimulationConfig
from repro.errors import ConfigurationError, SchedulerError
from repro.workloads.synthetic import constant_workload

from tests.conftest import make_pm, make_vm


class TestConstruction:
    def test_workload_must_cover_vms(self):
        dc = Datacenter([make_pm(0)], [make_vm(0), make_vm(1)])
        workload = constant_workload(num_vms=1, num_steps=10)
        with pytest.raises(ConfigurationError):
            Simulation(dc, workload, SimulationConfig(num_steps=10))

    def test_workload_must_cover_steps(self):
        dc = Datacenter([make_pm(0)], [make_vm(0)])
        workload = constant_workload(num_vms=1, num_steps=5)
        with pytest.raises(ConfigurationError):
            Simulation(dc, workload, SimulationConfig(num_steps=10))


class TestRun:
    def test_noop_run_produces_metrics(self, tiny_simulation):
        result = tiny_simulation.run(NoMigrationScheduler())
        assert len(result.metrics.steps) == 20
        assert result.total_migrations == 0
        assert result.total_cost_usd > 0.0

    def test_energy_cost_matches_power_model(self, tiny_simulation):
        result = tiny_simulation.run(NoMigrationScheduler())
        # All three hosts active at known utilization; energy must be the
        # sum of per-host SPEC power over 20 intervals of 300 s.
        dc = tiny_simulation.datacenter
        expected_watts = sum(
            dc.pm(i).power_model.power(dc.demanded_utilization(i))
            for i in range(3)
        )
        per_step = (
            expected_watts
            * 300.0
            * tiny_simulation.config.costs.energy_price_usd_per_watt_second
        )
        assert result.metrics.per_step_cost_series()[0] == pytest.approx(
            per_step
        )

    def test_num_steps_override(self, tiny_simulation):
        result = tiny_simulation.run(NoMigrationScheduler(), num_steps=5)
        assert len(result.metrics.steps) == 5

    def test_num_steps_cannot_exceed_workload(self, tiny_simulation):
        with pytest.raises(ConfigurationError):
            tiny_simulation.run(NoMigrationScheduler(), num_steps=1000)

    def test_scheduler_returning_none_rejected(self, tiny_simulation):
        class Broken:
            name = "broken"

            def decide(self, observation):
                return None

        with pytest.raises(SchedulerError):
            tiny_simulation.run(Broken())

    def test_migrations_counted(self, tiny_simulation):
        class OneMove:
            name = "one-move"
            done = False

            def decide(self, observation):
                if not self.done:
                    self.done = True
                    return [Migration(vm_id=3, dest_pm_id=1)]
                return []

        result = tiny_simulation.run(OneMove())
        assert result.total_migrations == 1

    def test_rejected_migrations_counted(self, tiny_simulation):
        class BadMove:
            name = "bad-move"

            def decide(self, observation):
                # Destination equals current host -> rejected.
                host = observation.datacenter.host_of(0)
                return [Migration(vm_id=0, dest_pm_id=host)]

        result = tiny_simulation.run(BadMove())
        assert result.total_migrations == 0
        assert all(
            s.num_migrations_rejected == 1 for s in result.metrics.steps
        )

    def test_observation_contract(self, tiny_simulation):
        seen = []

        class Probe:
            name = "probe"

            def decide(self, observation):
                seen.append(observation)
                return []

        tiny_simulation.run(Probe(), num_steps=3)
        assert [o.step for o in seen] == [0, 1, 2]
        assert seen[0].last_step_cost_usd == 0.0
        assert seen[1].last_step_cost_usd > 0.0
        assert seen[0].interval_seconds == 300.0
        assert seen[0].state.num_vms == 4

    def test_summary_contains_key_figures(self, tiny_simulation):
        result = tiny_simulation.run(NoMigrationScheduler())
        text = result.summary()
        assert "total cost" in text
        assert "NoMigration" in text


class TestReset:
    def test_reset_restores_placement(self, tiny_simulation):
        initial = tiny_simulation.datacenter.placement()
        tiny_simulation.run(RandomScheduler(migrations_per_step=1, seed=0))
        assert tiny_simulation.datacenter.placement() != initial or True
        tiny_simulation.reset()
        assert tiny_simulation.datacenter.placement() == initial

    def test_reset_wakes_hosts(self, tiny_simulation):
        tiny_simulation.run(NoMigrationScheduler())
        tiny_simulation.reset()
        assert not any(pm.asleep for pm in tiny_simulation.datacenter.pms)

    def test_rerun_after_reset_is_identical(self, tiny_simulation):
        first = tiny_simulation.run(NoMigrationScheduler())
        tiny_simulation.reset()
        second = tiny_simulation.run(NoMigrationScheduler())
        assert first.total_cost_usd == pytest.approx(second.total_cost_usd)

    def test_reset_clears_monitor(self, tiny_simulation):
        tiny_simulation.run(NoMigrationScheduler())
        tiny_simulation.reset()
        assert tiny_simulation.monitor.steps_observed == 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        def build():
            pms = [make_pm(i) for i in range(3)]
            vms = [make_vm(j) for j in range(5)]
            dc = Datacenter(pms, vms)
            for j in range(5):
                dc.place(j, j % 3)
            workload = constant_workload(num_vms=5, num_steps=15, level=0.4)
            return Simulation(dc, workload, SimulationConfig(num_steps=15))

        result_a = build().run(RandomScheduler(migrations_per_step=1, seed=3))
        result_b = build().run(RandomScheduler(migrations_per_step=1, seed=3))
        assert result_a.total_cost_usd == pytest.approx(result_b.total_cost_usd)
        assert result_a.total_migrations == result_b.total_migrations
