"""Unit tests for the SLA accountant (Eqs. 4-5, windowed billing)."""

import pytest

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.sla import SlaAccountant, VmSlaRecord
from repro.errors import ConfigurationError

from tests.conftest import make_pm, make_vm


@pytest.fixture
def overloadable():
    dc = Datacenter([make_pm(0), make_pm(1)], [make_vm(0, mips=4000.0), make_vm(1)])
    dc.place(0, 0)
    dc.place(1, 1)
    return dc


class TestHostAccounting:
    def test_active_time_accrues(self, overloadable):
        acc = SlaAccountant(beta=0.7)
        acc.observe_step(overloadable, 300.0)
        assert acc.host_record(0).active_seconds == 300.0

    def test_overload_time_accrues(self, overloadable):
        overloadable.vm(0).set_demand(0.9)  # 3600 of 4000 = 90 % > beta
        acc = SlaAccountant(beta=0.7)
        acc.observe_step(overloadable, 300.0)
        assert acc.host_record(0).overload_seconds == 300.0
        assert acc.host_record(0).overload_fraction == pytest.approx(1.0)

    def test_no_overload_below_beta(self, overloadable):
        overloadable.vm(0).set_demand(0.5)
        acc = SlaAccountant(beta=0.7)
        acc.observe_step(overloadable, 300.0)
        assert acc.host_record(0).overload_seconds == 0.0

    def test_empty_host_not_active(self, overloadable):
        acc = SlaAccountant()
        overloadable.remove(1)
        acc.observe_step(overloadable, 300.0)
        assert 1 not in acc.hosts


class TestVmAccounting:
    def test_requested_time(self, overloadable):
        acc = SlaAccountant()
        acc.observe_step(overloadable, 300.0)
        assert acc.vm_record(0).requested_seconds == 300.0

    def test_overload_downtime_full_interval(self, overloadable):
        overloadable.vm(0).set_demand(0.9)
        acc = SlaAccountant(beta=0.7)
        acc.observe_step(overloadable, 300.0)
        assert acc.vm_record(0).overload_downtime_seconds == 300.0
        # The colocated-free VM on host 1 accrues nothing.
        assert acc.vm_record(1).overload_downtime_seconds == 0.0

    def test_migration_downtime_recorded(self, overloadable):
        acc = SlaAccountant()
        acc.observe_step(overloadable, 300.0, migration_downtime={1: 12.0})
        assert acc.vm_record(1).migration_downtime_seconds == 12.0
        assert acc.downtime_fraction(1) == pytest.approx(12.0 / 300.0)

    def test_inactive_vm_not_billed(self, overloadable):
        overloadable.vm(0).set_active(False)
        acc = SlaAccountant()
        acc.observe_step(overloadable, 300.0)
        assert 0 not in acc.vms or acc.vm_record(0).requested_seconds == 0.0

    def test_downtime_fraction_zero_for_unknown_vm(self):
        acc = SlaAccountant()
        assert acc.downtime_fraction(42) == 0.0

    def test_interval_must_be_positive(self, overloadable):
        acc = SlaAccountant()
        with pytest.raises(ConfigurationError):
            acc.observe_step(overloadable, 0.0)


class TestWindowedBilling:
    def test_violation_recovers_after_window(self, overloadable):
        acc = SlaAccountant(
            beta=0.7, window_seconds=3 * 300.0, interval_seconds=300.0
        )
        overloadable.vm(0).set_demand(0.9)
        acc.observe_step(overloadable, 300.0)
        assert acc.downtime_fraction(0) == pytest.approx(1.0)
        overloadable.vm(0).set_demand(0.1)
        for _ in range(3):
            acc.observe_step(overloadable, 300.0)
        # The overloaded step has left the 3-step window.
        assert acc.downtime_fraction(0) == 0.0

    def test_cumulative_fraction_never_recovers(self, overloadable):
        acc = SlaAccountant(
            beta=0.7, window_seconds=300.0, interval_seconds=300.0
        )
        overloadable.vm(0).set_demand(0.9)
        acc.observe_step(overloadable, 300.0)
        overloadable.vm(0).set_demand(0.1)
        acc.observe_step(overloadable, 300.0)
        record = acc.vm_record(0)
        assert record.cumulative_downtime_fraction == pytest.approx(0.5)
        assert record.downtime_fraction == 0.0

    def test_step_downtime_capped_at_interval(self, overloadable):
        acc = SlaAccountant(beta=0.7)
        overloadable.vm(0).set_demand(0.9)
        # Migration downtime on top of full overload downtime: capped.
        acc.observe_step(
            overloadable, 300.0, migration_downtime={0: 100.0}
        )
        assert acc.downtime_fraction(0) <= 1.0

    def test_window_steps_derived(self):
        acc = SlaAccountant(window_seconds=86400.0, interval_seconds=300.0)
        assert acc.window_steps == 288

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            SlaAccountant(window_seconds=0.0)

    def test_invalid_beta(self):
        with pytest.raises(ConfigurationError):
            SlaAccountant(beta=0.0)


class TestOverallViolation:
    def test_empty_accountant(self):
        assert SlaAccountant().overall_sla_violation() == 0.0

    def test_mean_across_vms(self, overloadable):
        acc = SlaAccountant(beta=0.7)
        overloadable.vm(0).set_demand(0.9)
        acc.observe_step(overloadable, 300.0)
        # VM 0 fully down, VM 1 fully up -> mean 0.5.
        assert acc.overall_sla_violation() == pytest.approx(0.5)


class TestVmSlaRecord:
    def test_window_eviction(self):
        record = VmSlaRecord(window_steps=2)
        record.record_step(10.0, 100.0)
        record.record_step(0.0, 100.0)
        record.record_step(0.0, 100.0)
        assert record.downtime_fraction == 0.0

    def test_zero_requested(self):
        record = VmSlaRecord()
        assert record.downtime_fraction == 0.0
        assert record.cumulative_downtime_fraction == 0.0
