"""Integration tests combining the optional substrates.

Each optional model (topology, pre-copy, faults, dynamic provisioning,
event log, invariant validation) works alone; these tests prove they
compose — the combinations a real study would actually run.
"""

import numpy as np
import pytest

from repro.baselines.random_policy import RandomScheduler
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.events import EventKind, EventLog
from repro.cloudsim.faults import (
    FaultEvent,
    FaultInjector,
    FaultTolerantScheduler,
)
from repro.cloudsim.migration import MigrationEngine, Migration
from repro.cloudsim.network import FatTreeTopology
from repro.cloudsim.precopy import PrecopyModel
from repro.cloudsim.simulation import Simulation
from repro.config import SimulationConfig
from repro.core.agent import MeghScheduler
from repro.workloads.base import ArrayWorkload
from repro.workloads.bandwidth import derive_bandwidth_workload
from repro.workloads.google import generate_google_workload
from repro.workloads.planetlab import generate_planetlab_workload

from tests.conftest import make_pm, make_vm


def build_datacenter(num_pms=4, num_vms=6, ram=512.0):
    pms = [make_pm(i) for i in range(num_pms)]
    vms = [make_vm(j, ram_mb=ram) for j in range(num_vms)]
    dc = Datacenter(pms, vms)
    for j in range(num_vms):
        dc.place(j, j % num_pms)
    return dc


class TestTopologyPlusPrecopy:
    def test_engine_composes_both_models(self):
        dc = build_datacenter(num_pms=16, num_vms=1, ram=1024.0)
        tree = FatTreeTopology(
            k=4, edge_oversubscription=4.0, aggregation_oversubscription=4.0
        )
        model = PrecopyModel(dirty_rate_mbps=30.0)
        engine = MigrationEngine(dc, topology=tree, precopy=model)
        engine.start([Migration(0, 4)])  # cross-pod at 62.5 Mbps
        flight = engine._in_flight[0]
        expected = model.transfer(1024.0, tree.path_bandwidth_mbps(0, 4))
        assert flight.total_seconds == pytest.approx(expected.total_seconds)
        assert flight.final_downtime_seconds == pytest.approx(
            expected.downtime_seconds
        )

    def test_full_run_with_both(self):
        dc = build_datacenter(num_pms=8, num_vms=10)
        workload = generate_planetlab_workload(
            num_vms=10, num_steps=30, seed=0
        )
        sim = Simulation(
            dc,
            workload,
            SimulationConfig(num_steps=30),
            topology=FatTreeTopology(k=4),
        )
        result = sim.run(
            MeghScheduler.from_simulation(sim, seed=0),
            validate_every_step=True,
        )
        assert len(result.metrics.steps) == 30


class TestFaultsPlusEverything:
    def test_faults_with_events_and_validation(self):
        dc = build_datacenter()
        workload = generate_planetlab_workload(num_vms=6, num_steps=30, seed=1)
        sim = Simulation(dc, workload, SimulationConfig(num_steps=30))
        injector = FaultInjector([FaultEvent(1, fail_step=5, repair_step=15)])
        log = EventLog()
        result = sim.run(
            FaultTolerantScheduler(
                RandomScheduler(migrations_per_step=1, seed=0), injector
            ),
            event_log=log,
            validate_every_step=True,
        )
        assert len(result.metrics.steps) == 30
        assert len(log) > 0

    def test_dynamic_provisioning_with_faults(self):
        dc = build_datacenter(num_pms=4, num_vms=8)
        workload = generate_google_workload(num_vms=8, num_steps=30, seed=2)
        sim = Simulation(
            dc,
            workload,
            SimulationConfig(num_steps=30),
            dynamic_provisioning=True,
        )
        injector = FaultInjector([FaultEvent(0, fail_step=8, repair_step=20)])
        result = sim.run(
            FaultTolerantScheduler(
                MeghScheduler.from_simulation(sim, seed=2), injector
            ),
            validate_every_step=True,
        )
        assert len(result.metrics.steps) == 30


class TestBandwidthPlusEvents:
    def test_bandwidth_overloads_logged(self):
        from repro.config import DatacenterConfig

        pms = [make_pm(0), make_pm(1)]
        vms = [make_vm(j, ram_mb=512.0) for j in range(4)]
        for vm in vms:
            vm.bandwidth_mbps = 600.0
        dc = Datacenter(pms, vms)
        for j in range(4):
            dc.place(j, 0)
        cpu = ArrayWorkload(np.full((4, 10), 0.1))
        workload = derive_bandwidth_workload(
            cpu, correlation=0.0, base_level=0.9, noise_std=0.0
        )
        sim = Simulation(
            dc,
            workload,
            SimulationConfig(
                num_steps=10,
                datacenter=DatacenterConfig(bandwidth_aware=True),
            ),
        )
        log = EventLog()
        sim.run(RandomScheduler(migrations_per_step=0), event_log=log)
        assert log.query(kind=EventKind.HOST_OVERLOADED, pm_id=0)
