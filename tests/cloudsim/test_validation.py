"""Tests for the data-center invariant checker."""

import pytest

from repro.baselines.random_policy import RandomScheduler
from repro.cloudsim.validation import (
    InvariantViolation,
    check_invariants,
    find_violations,
)
from repro.errors import ReproError


class TestHealthyStates:
    def test_fresh_datacenter_clean(self, small_datacenter):
        assert find_violations(small_datacenter) == []

    def test_placed_datacenter_clean(self, placed_datacenter):
        placed_datacenter.vm(0).set_demand(0.5)
        placed_datacenter.share_cpu()
        check_invariants(placed_datacenter)  # must not raise

    def test_simulation_clean_every_step(self, tiny_simulation):
        result = tiny_simulation.run(
            RandomScheduler(migrations_per_step=1, seed=0),
            validate_every_step=True,
        )
        assert len(result.metrics.steps) == 20


class TestBrokenStates:
    def test_inconsistent_placement_detected(self, placed_datacenter):
        # Corrupt the internal maps directly (simulating a bug).
        placed_datacenter._host_of[0] = 3
        violations = find_violations(placed_datacenter)
        assert any("VM 0" in v for v in violations)

    def test_duplicate_hosting_detected(self, placed_datacenter):
        placed_datacenter._vms_on[1].add(0)  # VM 0 now on hosts 0 and 1
        violations = find_violations(placed_datacenter)
        assert any("appears on PMs" in v for v in violations)

    def test_ram_oversubscription_detected(self, placed_datacenter):
        placed_datacenter._vms_on[0].update({2, 3, 4, 5})
        for vm_id in (2, 3, 4, 5):
            placed_datacenter._host_of[vm_id] = 0
        violations = find_violations(placed_datacenter)
        assert any("oversubscribed" in v for v in violations)

    def test_sleeping_host_with_vms_detected(self, placed_datacenter):
        placed_datacenter.pm(0).asleep = True
        violations = find_violations(placed_datacenter)
        assert any("asleep but hosts" in v for v in violations)

    def test_delivered_above_demanded_detected(self, placed_datacenter):
        placed_datacenter.vm(0).set_demand(0.2)
        placed_datacenter.vm(0).delivered_utilization = 0.9
        violations = find_violations(placed_datacenter)
        assert any("delivered" in v for v in violations)

    def test_inactive_with_demand_detected(self, placed_datacenter):
        vm = placed_datacenter.vm(0)
        vm.set_demand(0.4)
        vm._active = False  # bypass set_active's zeroing, like a bug would
        violations = find_violations(placed_datacenter)
        assert any("inactive VM 0" in v for v in violations)

    def test_check_raises_with_all_violations(self, placed_datacenter):
        placed_datacenter.pm(0).asleep = True
        placed_datacenter.vm(0).delivered_utilization = 5.0
        with pytest.raises(InvariantViolation) as excinfo:
            check_invariants(placed_datacenter)
        assert len(excinfo.value.violations) >= 2
        assert isinstance(excinfo.value, ReproError)
