"""Differential oracle: SoA ``Datacenter`` vs ``ReferenceDatacenter``.

The struct-of-arrays rewrite claims *observable equivalence*: every
public query returns bit-for-bit the same value the retained pre-rewrite
pure-object implementation (:class:`repro.cloudsim.reference
.ReferenceDatacenter`) returns, after any sequence of mutations.  These
tests enforce that claim two ways:

* randomized operation sequences (place / remove / move / demand
  updates / ``share_cpu`` / migration overhead / sleep) driven from a
  seeded RNG against both backends in lockstep, with a full snapshot of
  every query compared for exact equality after every operation;
* whole simulation runs on both backends (including a migrating MMT
  scheduler) whose ``SimulationResult.to_dict()`` payloads must be
  byte-identical once the non-deterministic wall-clock
  ``scheduler_seconds`` field is stripped.

Floats are compared with ``==`` on purpose: the contract is bit
equality, not tolerance.
"""

import json

import numpy as np
import pytest

from repro.baselines.mmt import MMTScheduler
from repro.baselines.noop import NoMigrationScheduler
from repro.cloudsim.allocation import PLACEMENT_POLICIES
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.reference import ReferenceDatacenter
from repro.cloudsim.simulation import Simulation
from repro.config import DatacenterConfig, SimulationConfig
from repro.errors import CapacityError, UnknownEntityError
from repro.harness.builders import make_planetlab_fleet
from repro.workloads.planetlab import generate_planetlab_workload

BETA = 0.70
BW_THRESHOLD = 0.65


def make_pair(num_pms, num_vms, seed, overhead=0.10):
    """Identical fleets on both backends (fresh entity objects each)."""
    ref_pms, ref_vms = make_planetlab_fleet(num_pms, num_vms, seed=seed)
    soa_pms, soa_vms = make_planetlab_fleet(num_pms, num_vms, seed=seed)
    reference = ReferenceDatacenter(
        ref_pms, ref_vms, migration_overhead_fraction=overhead
    )
    vectorized = Datacenter(
        soa_pms, soa_vms, migration_overhead_fraction=overhead
    )
    return reference, vectorized


def snapshot(dc):
    """Every public query, exactly as a caller would observe it."""
    per_pm = {}
    for pm in dc.pms:
        pm_id = pm.pm_id
        per_pm[pm_id] = {
            "ram_used_mb": dc.ram_used_mb(pm_id),
            "ram_free_mb": dc.ram_free_mb(pm_id),
            "demanded_mips": dc.demanded_mips(pm_id),
            "demanded_utilization": dc.demanded_utilization(pm_id),
            "delivered_utilization": dc.delivered_utilization(pm_id),
            "bandwidth_demanded_mbps": dc.bandwidth_demanded_mbps(pm_id),
            "bandwidth_demanded_utilization": (
                dc.bandwidth_demanded_utilization(pm_id)
            ),
            "is_overloaded": dc.is_overloaded(pm_id, BETA),
            "asleep": pm.asleep,
            "vms_on": sorted(dc.vms_on(pm_id)),
        }
    per_vm = {}
    for vm in dc.vms:
        vm_id = vm.vm_id
        per_vm[vm_id] = {
            "host_of": dc.host_of(vm_id),
            "is_placed": dc.is_placed(vm_id),
            "is_active": vm.is_active,
            "demanded_utilization": vm.demanded_utilization,
            "delivered_utilization": vm.delivered_utilization,
            "demanded_bandwidth_utilization": (
                vm.demanded_bandwidth_utilization
            ),
            "demanded_mips": vm.demanded_mips,
            "delivered_mips": vm.delivered_mips,
        }
    return {
        "pms": per_pm,
        "vms": per_vm,
        "placement": dc.placement(),
        "active_pm_ids": dc.active_pm_ids(),
        "num_active_hosts": dc.num_active_hosts(),
        "overloaded_cpu": dc.overloaded_pm_ids(BETA),
        "overloaded_multi": dc.overloaded_pm_ids(BETA, BW_THRESHOLD),
    }


def apply_op(dc, op, args):
    """Run one mutation, returning (result, exception-or-None)."""
    try:
        return getattr(dc, op)(*args), None
    except (CapacityError, UnknownEntityError) as exc:
        return None, exc


def run_both(reference, vectorized, op, args):
    """Apply an op to both backends and require identical outcomes."""
    ref_result, ref_exc = apply_op(reference, op, args)
    soa_result, soa_exc = apply_op(vectorized, op, args)
    assert type(ref_exc) is type(soa_exc), (op, args, ref_exc, soa_exc)
    if ref_exc is not None:
        assert str(ref_exc) == str(soa_exc), (op, args)
    assert ref_result == soa_result, (op, args)


class TestRandomizedOperationSequences:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_lockstep_queries_bit_identical(self, seed):
        num_pms, num_vms = 6, 14
        reference, vectorized = make_pair(num_pms, num_vms, seed=seed)
        rng = np.random.default_rng(seed)
        ops = (
            "place",
            "place",
            "remove",
            "move",
            "demand",
            "demand",
            "bandwidth",
            "activity",
            "share_cpu",
            "overhead",
            "sleep",
        )
        for _ in range(250):
            op = ops[int(rng.integers(len(ops)))]
            vm_id = int(rng.integers(num_vms))
            pm_id = int(rng.integers(num_pms))
            if op == "place":
                run_both(reference, vectorized, "place", (vm_id, pm_id))
            elif op == "remove":
                run_both(reference, vectorized, "remove", (vm_id,))
            elif op == "move":
                run_both(reference, vectorized, "move", (vm_id, pm_id))
            elif op == "demand":
                value = float(rng.uniform(0.0, 1.0))
                reference.vm(vm_id).set_demand(value)
                vectorized.vm(vm_id).set_demand(value)
            elif op == "bandwidth":
                value = float(rng.uniform(0.0, 1.0))
                reference.vm(vm_id).set_bandwidth_demand(value)
                vectorized.vm(vm_id).set_bandwidth_demand(value)
            elif op == "activity":
                active = bool(rng.integers(2))
                reference.vm(vm_id).set_active(active)
                vectorized.vm(vm_id).set_active(active)
            elif op == "share_cpu":
                placed = sorted(reference.placement())
                k = int(rng.integers(len(placed) + 1))
                migrating = [
                    placed[i]
                    for i in rng.choice(
                        len(placed), size=min(k, len(placed)), replace=False
                    )
                ] if placed else []
                reference.share_cpu(migrating)
                vectorized.share_cpu(migrating)
            elif op == "overhead":
                fraction = (
                    None if rng.integers(2) else float(rng.uniform(0.0, 0.5))
                )
                subset = [
                    int(j)
                    for j in rng.choice(
                        num_vms, size=int(rng.integers(1, 4)), replace=False
                    )
                ]
                reference.apply_migration_overhead(subset, fraction)
                vectorized.apply_migration_overhead(subset, fraction)
            elif op == "sleep":
                run_both(reference, vectorized, "sleep_idle_hosts", ())
            assert snapshot(reference) == snapshot(vectorized), op


class TestFullRunEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_to_dict_identical_with_migrating_scheduler(self, seed):
        num_pms, num_vms, num_steps = 8, 20, 30
        results = {}
        for backend in ("reference", "soa"):
            cls = ReferenceDatacenter if backend == "reference" else Datacenter
            pms, vms = make_planetlab_fleet(num_pms, num_vms, seed=seed)
            dc = cls(pms, vms)
            PLACEMENT_POLICIES["first-fit"](dc)
            workload = generate_planetlab_workload(
                num_vms=num_vms, num_steps=num_steps, seed=seed
            )
            config = SimulationConfig(num_steps=num_steps, seed=seed)
            sim = Simulation(dc, workload, config)
            result = sim.run(MMTScheduler("THR"), validate_every_step=False)
            payload = result.to_dict()
            for step in payload["steps"]:
                step.pop("scheduler_seconds", None)
            results[backend] = (
                json.dumps(payload, sort_keys=True),
                result.total_migrations,
            )
        assert results["reference"][0] == results["soa"][0]
        assert results["reference"][1] == results["soa"][1]
        # The scenario must actually migrate, or this proves nothing
        # about the migration/SLA paths (>=100 per seed as recorded).
        assert results["reference"][1] > 0


class TestMigrationOverheadFractionRegression:
    """Satellite fix: ``share_cpu(migrating)`` must honour the configured
    ``migration_overhead_fraction`` (historically hardcoded to 0.10)."""

    @pytest.mark.parametrize("backend", ["reference", "soa"])
    def test_share_cpu_uses_configured_fraction(self, backend):
        cls = ReferenceDatacenter if backend == "reference" else Datacenter
        pms, vms = make_planetlab_fleet(2, 2, seed=0)
        dc = cls(pms, vms, migration_overhead_fraction=0.25)
        dc.place(0, 0)
        dc.place(1, 1)
        dc.vm(0).set_demand(0.4)
        dc.vm(1).set_demand(0.4)
        dc.share_cpu(migrating_vm_ids=[0])
        # Uncontended host: scale is 1, so delivered = demand * (1 - f).
        assert dc.vm(0).delivered_utilization == 0.4 * (1.0 - 0.25)
        assert dc.vm(1).delivered_utilization == 0.4

    @pytest.mark.parametrize("backend", ["reference", "soa"])
    def test_explicit_fraction_still_wins(self, backend):
        cls = ReferenceDatacenter if backend == "reference" else Datacenter
        pms, vms = make_planetlab_fleet(1, 1, seed=0)
        dc = cls(pms, vms, migration_overhead_fraction=0.25)
        dc.place(0, 0)
        dc.vm(0).set_demand(0.5)
        dc.share_cpu()
        dc.apply_migration_overhead([0], overhead_fraction=0.5)
        assert dc.vm(0).delivered_utilization == 0.5 * 0.5

    def test_simulation_plumbs_configured_fraction(self):
        pms, vms = make_planetlab_fleet(2, 2, seed=0)
        dc = Datacenter(pms, vms)
        PLACEMENT_POLICIES["first-fit"](dc)
        workload = generate_planetlab_workload(
            num_vms=2, num_steps=3, seed=0
        )
        config = SimulationConfig(
            num_steps=3,
            seed=0,
            datacenter=DatacenterConfig(migration_overhead_fraction=0.33),
        )
        sim = Simulation(dc, workload, config)
        sim.run(NoMigrationScheduler(), validate_every_step=False)
        assert dc.migration_overhead_fraction == 0.33
