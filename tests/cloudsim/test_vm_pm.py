"""Unit tests for the VM and PM models."""

import pytest

from repro.cloudsim.pm import PhysicalMachine
from repro.cloudsim.power import HP_PROLIANT_G4
from repro.cloudsim.vm import VirtualMachine
from repro.errors import ConfigurationError

from tests.conftest import make_pm, make_vm


class TestVirtualMachine:
    def test_demand_setting(self):
        vm = make_vm(0)
        vm.set_demand(0.4)
        assert vm.demanded_utilization == 0.4
        assert vm.demanded_mips == pytest.approx(400.0)

    def test_demand_out_of_range(self):
        vm = make_vm(0)
        with pytest.raises(ConfigurationError):
            vm.set_demand(1.5)
        with pytest.raises(ConfigurationError):
            vm.set_demand(-0.1)

    def test_inactive_vm_demands_nothing(self):
        vm = make_vm(0)
        vm.set_demand(0.8)
        vm.set_active(False)
        assert not vm.is_active
        assert vm.demanded_utilization == 0.0
        assert vm.delivered_utilization == 0.0

    def test_reactivation(self):
        vm = make_vm(0)
        vm.set_active(False)
        vm.set_active(True)
        assert vm.is_active

    def test_migration_time(self):
        # 1024 MB at 100 Mbps: 1024 * 8 / 100 = 81.92 s.
        vm = make_vm(0, ram_mb=1024.0)
        assert vm.migration_time_seconds() == pytest.approx(81.92)

    def test_delivered_mips(self):
        vm = make_vm(0, mips=2000.0)
        vm.delivered_utilization = 0.25
        assert vm.delivered_mips == pytest.approx(500.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vm_id": -1},
            {"mips": 0.0},
            {"ram_mb": 0.0},
            {"bandwidth_mbps": 0.0},
        ],
    )
    def test_invalid_construction(self, kwargs):
        base = dict(vm_id=0, mips=1000.0, ram_mb=1024.0, bandwidth_mbps=100.0)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            VirtualMachine(**base)


class TestPhysicalMachine:
    def test_power_follows_model(self):
        pm = make_pm(0)
        assert pm.power(0.0) == HP_PROLIANT_G4.power(0.0)
        assert pm.power(1.0) == HP_PROLIANT_G4.power(1.0)

    def test_sleeping_pm_draws_nothing(self):
        pm = make_pm(0)
        pm.sleep()
        assert pm.asleep
        assert pm.power(0.5) == 0.0

    def test_wake_restores_power(self):
        pm = make_pm(0)
        pm.sleep()
        pm.wake()
        assert pm.power(0.5) > 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pm_id": -1},
            {"mips": 0.0},
            {"ram_mb": -1.0},
            {"bandwidth_mbps": 0.0},
        ],
    )
    def test_invalid_construction(self, kwargs):
        base = dict(
            pm_id=0,
            mips=4000.0,
            ram_mb=4096.0,
            bandwidth_mbps=1000.0,
            power_model=HP_PROLIANT_G4,
        )
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            PhysicalMachine(**base)
