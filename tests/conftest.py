"""Shared fixtures: small deterministic fleets, workloads, simulations."""

from __future__ import annotations

import os

import pytest

# Runtime numerical contracts (Sherman–Morrison drift audits, finiteness
# checks) and per-step datacenter invariant validation are part of the
# default *test* configuration; benchmarks leave them off so timings stay
# clean.  ``setdefault`` keeps an explicit REPRO_CONTRACTS=0 honoured.
os.environ.setdefault("REPRO_CONTRACTS", "1")

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.pm import PhysicalMachine
from repro.cloudsim.power import HP_PROLIANT_G4, HP_PROLIANT_G5
from repro.cloudsim.vm import VirtualMachine
from repro.config import SimulationConfig
from repro.cloudsim.simulation import Simulation
from repro.workloads.synthetic import constant_workload


def make_pm(pm_id: int, mips: float = 4000.0, ram_mb: float = 4096.0):
    model = HP_PROLIANT_G4 if pm_id % 2 == 0 else HP_PROLIANT_G5
    return PhysicalMachine(
        pm_id=pm_id,
        mips=mips,
        ram_mb=ram_mb,
        bandwidth_mbps=1000.0,
        power_model=model,
    )


def make_vm(vm_id: int, mips: float = 1000.0, ram_mb: float = 1024.0):
    return VirtualMachine(
        vm_id=vm_id, mips=mips, ram_mb=ram_mb, bandwidth_mbps=100.0
    )


@pytest.fixture
def small_datacenter() -> Datacenter:
    """4 PMs x 6 VMs, unplaced."""
    pms = [make_pm(i) for i in range(4)]
    vms = [make_vm(j) for j in range(6)]
    return Datacenter(pms, vms)


@pytest.fixture
def placed_datacenter(small_datacenter: Datacenter) -> Datacenter:
    """4 PMs x 6 VMs with VMs spread 2-2-1-1."""
    layout = {0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 3}
    for vm_id, pm_id in layout.items():
        small_datacenter.place(vm_id, pm_id)
    return small_datacenter


@pytest.fixture
def tiny_simulation() -> Simulation:
    """3 PMs x 4 VMs with a constant 30 % workload, 20 steps."""
    pms = [make_pm(i) for i in range(3)]
    vms = [make_vm(j) for j in range(4)]
    datacenter = Datacenter(pms, vms)
    for vm_id in range(4):
        datacenter.place(vm_id, vm_id % 3)
    workload = constant_workload(num_vms=4, num_steps=20, level=0.3)
    config = SimulationConfig(num_steps=20, seed=7)
    return Simulation(datacenter, workload, config)
