"""Golden decision-trace scenarios shared by the recorder and the tests.

A *golden trace* pins down the exact sequence of migrations a fixed-seed
Megh run produces on the synthetic PlanetLab workload.  The committed
fixtures under ``tests/core/fixtures/`` were recorded with the
dict-of-dicts numerical core that predates the vectorized
``SparseMatrix``/``SparseLstd`` rewrite; the regression tests assert the
vectorized core reproduces them *decision for decision*, which is the
strongest observable-behaviour guarantee available — every Q-value the
agent ranks feeds into this sequence.

Re-record (only when a deliberate behaviour change is intended) with::

    PYTHONPATH=src python -m tests.core.golden_scenarios --record
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, List

GOLDEN_SEEDS = (0, 1, 2)

#: One scenario: small enough to replay in seconds, big enough that the
#: agent performs dozens of migrations and ``B`` accumulates fill-in.
SCENARIO = {
    "workload": "planetlab-synthetic",
    "num_pms": 10,
    "num_vms": 14,
    "num_steps": 150,
}

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture_path(seed: int) -> str:
    return os.path.join(FIXTURE_DIR, f"golden_trace_seed{seed}.json")


def run_golden_scenario(seed: int) -> Dict:
    """Run the fixed-seed scenario and flatten its decision trace.

    Contracts are explicitly disabled so the payload is independent of
    the ``REPRO_CONTRACTS`` environment toggle (a separate integration
    test proves contracts never perturb trajectories).
    """
    from repro.core.agent import MeghScheduler
    from repro.core.trace import DecisionTrace
    from repro.harness.builders import build_planetlab_simulation
    from repro.harness.runner import run_scheduler

    simulation = build_planetlab_simulation(
        num_pms=SCENARIO["num_pms"],
        num_vms=SCENARIO["num_vms"],
        num_steps=SCENARIO["num_steps"],
        seed=seed,
    )
    scheduler = MeghScheduler.from_simulation(
        simulation, seed=seed, contracts=False
    )
    scheduler.trace = DecisionTrace()
    result = run_scheduler(simulation, scheduler)
    migrations: List[List[int]] = []
    for record in scheduler.trace.records:
        for vm_id, dest_pm_id in record.chosen:
            migrations.append([record.step, vm_id, dest_pm_id])
    return {
        "scenario": dict(SCENARIO),
        "seed": seed,
        "migrations": migrations,
        "total_migrations": result.total_migrations,
        "total_cost_usd": result.total_cost_usd,
        "q_table_nonzeros": scheduler.lstd.q_table_nonzeros,
    }


def record_fixtures() -> None:
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    for seed in GOLDEN_SEEDS:
        payload = run_golden_scenario(seed)
        path = fixture_path(seed)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(
            f"recorded {path}: {payload['total_migrations']} migrations, "
            f"{payload['q_table_nonzeros']} B non-zeros"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--record",
        action="store_true",
        help="re-record the committed golden fixtures in place",
    )
    arguments = parser.parse_args()
    if arguments.record:
        record_fixtures()
    else:
        parser.print_help()
