"""Tests for the Megh scheduler (Algorithm 1 wired into the simulator)."""

import pytest

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.simulation import Simulation
from repro.config import MeghConfig, SimulationConfig
from repro.core.agent import MeghScheduler
from repro.errors import ConfigurationError
from repro.mdp.interfaces import Observation
from repro.mdp.state import observe_state
from repro.cloudsim.monitor import UtilizationMonitor
from repro.workloads.synthetic import constant_workload, spike_workload

from tests.conftest import make_pm, make_vm


def build_observation(datacenter, step=0, last_cost=0.0):
    monitor = UtilizationMonitor()
    monitor.observe(datacenter)
    return Observation(
        step=step,
        state=observe_state(datacenter, step),
        datacenter=datacenter,
        monitor=monitor,
        last_step_cost_usd=last_cost,
        interval_seconds=300.0,
    )


@pytest.fixture
def overloaded_dc():
    """Host 0 overloaded (demand 95 %), hosts 1-2 nearly empty."""
    pms = [make_pm(i) for i in range(3)]
    vms = [make_vm(j, mips=2000.0, ram_mb=512.0) for j in range(4)]
    dc = Datacenter(pms, vms)
    dc.place(0, 0)
    dc.place(1, 0)
    dc.place(2, 1)
    dc.place(3, 2)
    dc.vm(0).set_demand(0.95)
    dc.vm(1).set_demand(0.95)
    dc.vm(2).set_demand(0.05)
    dc.vm(3).set_demand(0.05)
    return dc


class TestConstruction:
    def test_dimension_matches_fleet(self):
        agent = MeghScheduler(num_vms=5, num_pms=3)
        assert agent.action_space.dimension == 15

    def test_invalid_beta(self):
        with pytest.raises(ConfigurationError):
            MeghScheduler(num_vms=2, num_pms=2, beta=0.0)

    def test_from_simulation(self, tiny_simulation):
        agent = MeghScheduler.from_simulation(tiny_simulation)
        assert agent.action_space.num_vms == 4
        assert agent.action_space.num_pms == 3
        assert agent.beta == pytest.approx(0.70)


class TestOverloadRelief:
    def test_relieves_overloaded_host(self, overloaded_dc):
        agent = MeghScheduler(num_vms=4, num_pms=3, seed=0)
        migrations = agent.decide(build_observation(overloaded_dc))
        # Host 0 demands (0.95+0.95)*2000 / 4000 = 95 % > beta; one VM
        # must move off it (cap is max(1, 2% of 4) = 1).
        assert len(migrations) == 1
        assert overloaded_dc.host_of(migrations[0].vm_id) == 0
        assert migrations[0].dest_pm_id != 0

    def test_relief_capped_by_budget(self, overloaded_dc):
        config = MeghConfig(max_migration_fraction=0.5)
        agent = MeghScheduler(num_vms=4, num_pms=3, config=config, seed=0)
        migrations = agent.decide(build_observation(overloaded_dc))
        assert len(migrations) <= 2

    def test_no_candidates_no_migrations(self):
        pms = [make_pm(i) for i in range(2)]
        vms = [make_vm(0)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        dc.vm(0).set_demand(0.5)  # 500/4000: neither over- nor underloaded
        config = MeghConfig(underload_threshold=0.05)
        agent = MeghScheduler(num_vms=1, num_pms=2, config=config, seed=0)
        assert agent.decide(build_observation(dc)) == []

    def test_migrations_target_feasible_hosts(self, overloaded_dc):
        agent = MeghScheduler(num_vms=4, num_pms=3, seed=0)
        for trial in range(5):
            dc_obs = build_observation(overloaded_dc, step=trial)
            for migration in agent.decide(dc_obs):
                assert overloaded_dc.fits(
                    migration.vm_id, migration.dest_pm_id
                )


class TestLearningLoop:
    def test_temperature_decays_each_step(self, overloaded_dc):
        agent = MeghScheduler(num_vms=4, num_pms=3, seed=0)
        before = agent.temperature
        agent.decide(build_observation(overloaded_dc))
        assert agent.temperature < before

    def test_qtable_tracked_per_step(self, overloaded_dc):
        agent = MeghScheduler(num_vms=4, num_pms=3, seed=0)
        agent.decide(build_observation(overloaded_dc, step=0))
        agent.decide(build_observation(overloaded_dc, step=1, last_cost=1.0))
        assert len(agent.qtable.samples) == 2

    def test_learns_from_last_step_cost(self, overloaded_dc):
        agent = MeghScheduler(num_vms=4, num_pms=3, seed=0)
        agent.decide(build_observation(overloaded_dc, step=0))
        before = agent.lstd.updates_applied
        agent.decide(build_observation(overloaded_dc, step=1, last_cost=2.0))
        assert agent.lstd.updates_applied > before

    def test_cost_normalization_centers_signal(self):
        agent = MeghScheduler(num_vms=2, num_pms=2)
        values = [agent._normalize_cost(c) for c in (1.0, 1.0, 1.0)]
        # With a constant cost stream the centered signal goes to zero.
        assert values[-1] == pytest.approx(0.0)

    def test_cost_scale_override(self):
        config = MeghConfig(cost_scale=10.0, baseline_subtraction=False)
        agent = MeghScheduler(num_vms=2, num_pms=2, config=config)
        assert agent._normalize_cost(5.0) == pytest.approx(0.5)


class TestEndToEnd:
    def _run(self, workload, steps, config=None, seed=0):
        pms = [make_pm(i) for i in range(4)]
        vms = [make_vm(j, ram_mb=512.0) for j in range(6)]
        dc = Datacenter(pms, vms)
        for j in range(6):
            dc.place(j, j % 4)
        sim = Simulation(dc, workload, SimulationConfig(num_steps=steps))
        agent = MeghScheduler.from_simulation(sim, config=config, seed=seed)
        return sim.run(agent), agent

    def test_full_run_is_stable(self):
        workload = spike_workload(6, 60, base=0.2, spike=0.9, seed=0)
        result, agent = self._run(workload, 60)
        assert len(result.metrics.steps) == 60
        assert agent.q_table_nonzeros >= agent.action_space.dimension

    def test_migration_budget_respected_every_step(self):
        workload = spike_workload(6, 40, base=0.3, spike=0.95, seed=1)
        result, _ = self._run(workload, 40)
        cap = max(1, int(0.02 * 6))
        assert all(
            s.num_migrations_started <= cap for s in result.metrics.steps
        )

    def test_constant_workload_converges_to_no_migrations(self):
        # Nothing ever overloads and Q-values stabilize: late-run
        # migrations must stop (the hysteresis margin prevents ping-pong).
        workload = constant_workload(6, 120, level=0.3)
        result, _ = self._run(workload, 120)
        late = [s.num_migrations_started for s in result.metrics.steps[-30:]]
        assert sum(late) <= 2

    def test_deterministic_given_seed(self):
        workload = spike_workload(6, 50, base=0.2, spike=0.9, seed=2)
        result_a, _ = self._run(workload, 50, seed=9)
        result_b, _ = self._run(workload, 50, seed=9)
        assert result_a.total_migrations == result_b.total_migrations
        assert result_a.total_cost_usd == pytest.approx(
            result_b.total_cost_usd
        )

    def test_consolidation_disabled(self):
        config = MeghConfig(consolidate_underloaded=False)
        workload = constant_workload(6, 30, level=0.05)
        result, _ = self._run(workload, 30, config=config)
        # Underloaded everywhere, but consolidation is off and nothing
        # overloads: no migrations at all.
        assert result.total_migrations == 0
