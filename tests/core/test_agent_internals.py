"""Focused tests for MeghScheduler's internal mechanisms."""

import pytest

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.monitor import UtilizationMonitor
from repro.config import MeghConfig
from repro.core.agent import MeghScheduler
from repro.mdp.action import MigrationAction
from repro.mdp.interfaces import Observation
from repro.mdp.state import observe_state

from tests.conftest import make_pm, make_vm


def build_observation(datacenter, step=0, last_cost=0.0):
    monitor = UtilizationMonitor()
    monitor.observe(datacenter)
    return Observation(
        step=step,
        state=observe_state(datacenter, step),
        datacenter=datacenter,
        monitor=monitor,
        last_step_cost_usd=last_cost,
        interval_seconds=300.0,
    )


class TestDestinationProposals:
    def _dc(self, num_pms=4, num_vms=4, vm_mips=2000.0):
        pms = [make_pm(i) for i in range(num_pms)]
        vms = [make_vm(j, mips=vm_mips, ram_mb=512.0) for j in range(num_vms)]
        dc = Datacenter(pms, vms)
        return dc

    def test_consolidation_skips_empty_hosts(self):
        dc = self._dc()
        dc.place(0, 0)
        dc.place(1, 1)
        dc.vm(0).set_demand(0.1)
        dc.vm(1).set_demand(0.1)
        agent = MeghScheduler(num_vms=4, num_pms=4, seed=0)
        observation = build_observation(dc)
        dests = agent._destinations_for(observation, 0, current=0)
        # Hosts 2 and 3 are empty: not consolidation targets.
        assert set(dests) <= {1}

    def test_relief_may_wake_empty_hosts(self):
        dc = self._dc()
        dc.place(0, 0)
        dc.place(1, 0)
        dc.vm(0).set_demand(0.9)
        dc.vm(1).set_demand(0.9)
        agent = MeghScheduler(num_vms=4, num_pms=4, seed=0)
        observation = build_observation(dc)
        dests = agent._destinations_for(observation, 0, current=0, relief=True)
        assert set(dests) & {1, 2, 3}

    def test_relief_falls_back_to_full_beta_budget(self):
        # VM demand 1900 MIPS; headroom budget = 0.6*0.7*4000 = 1680 is
        # too small, but the full beta budget 2800 admits it.
        dc = self._dc(vm_mips=2000.0)
        dc.place(0, 0)
        dc.vm(0).set_demand(0.95)
        agent = MeghScheduler(num_vms=4, num_pms=4, seed=0)
        observation = build_observation(dc)
        constrained = agent._feasible_destinations(
            dc, 0, current=0, headroom=0.6, allow_empty_hosts=True
        )
        assert constrained == []
        dests = agent._destinations_for(observation, 0, current=0, relief=True)
        assert dests, "relief must fall back to the full beta budget"

    def test_candidate_destinations_limit_prefers_loaded(self):
        dc = self._dc(num_pms=6, num_vms=6, vm_mips=1000.0)
        for j in range(6):
            dc.place(j, j % 3 + 1)  # hosts 1-3 busy, 0/4/5 empty
        dc.vm(0).set_demand(0.05)
        for j in range(1, 6):
            dc.vm(j).set_demand(0.3)
        config = MeghConfig(candidate_destinations=1)
        agent = MeghScheduler(num_vms=6, num_pms=6, config=config, seed=0)
        observation = build_observation(dc)
        dests = agent._destinations_for(
            observation, 0, current=dc.host_of(0)
        )
        assert len(dests) == 1
        # The single proposal is the most-utilized feasible host.
        utils = {
            pm.pm_id: dc.demanded_utilization(pm.pm_id)
            for pm in dc.pms
            if dc.vms_on(pm.pm_id) and pm.pm_id != dc.host_of(0)
        }
        assert dests[0] == max(utils, key=utils.get)

    def test_bandwidth_filter_excludes_saturated_links(self):
        dc = self._dc(num_pms=3, num_vms=3, vm_mips=500.0)
        for vm in dc.vms:
            vm.bandwidth_mbps = 800.0
        dc.place(0, 0)
        dc.place(1, 1)
        dc.place(2, 2)
        dc.vm(0).set_demand(0.05)
        dc.vm(0).set_bandwidth_demand(0.3)  # 240 Mbps of traffic
        dc.vm(1).set_demand(0.3)
        dc.vm(1).set_bandwidth_demand(0.5)  # host 1 already at 400 Mbps
        dc.vm(2).set_demand(0.3)
        dc.vm(2).set_bandwidth_demand(0.0)
        agent = MeghScheduler(
            num_vms=3, num_pms=3, seed=0, bandwidth_beta=0.7
        )
        observation = build_observation(dc)
        dests = agent._destinations_for(observation, 0, current=0)
        # Consolidation traffic budget: headroom * 0.7 * 1000 Mbps.
        budget = agent.config.destination_headroom * 0.7 * 1000.0
        assert 400.0 + 240.0 > budget  # host 1 would blow its link
        assert 0.0 + 240.0 <= budget  # host 2 has room
        assert 1 not in dests
        assert 2 in dests


class TestCostNormalization:
    def test_running_mean_tracks_stream(self):
        agent = MeghScheduler(num_vms=2, num_pms=2)
        for cost in (1.0, 2.0, 3.0):
            agent._normalize_cost(cost)
        assert agent._cost_running_mean == pytest.approx(2.0)

    def test_below_average_cost_goes_negative(self):
        agent = MeghScheduler(num_vms=2, num_pms=2)
        agent._normalize_cost(10.0)
        assert agent._normalize_cost(1.0) < 0.0

    def test_scale_is_running_mean_magnitude(self):
        agent = MeghScheduler(num_vms=2, num_pms=2)
        agent._normalize_cost(4.0)
        # second cost 8: mean becomes 6; signal = (8-6)/6.
        assert agent._normalize_cost(8.0) == pytest.approx((8 - 6) / 6)


class TestSelectionMechanics:
    def _relief_dc(self):
        pms = [make_pm(i) for i in range(3)]
        vms = [make_vm(j, mips=2000.0, ram_mb=512.0) for j in range(4)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        dc.place(1, 0)
        dc.place(2, 1)
        dc.place(3, 2)
        dc.vm(0).set_demand(0.9)
        dc.vm(1).set_demand(0.9)
        dc.vm(2).set_demand(0.3)
        dc.vm(3).set_demand(0.3)
        return dc

    def test_noop_excluded_for_overloaded_sources(self):
        dc = self._relief_dc()
        agent = MeghScheduler(num_vms=4, num_pms=3, seed=0)
        candidates = agent._candidate_actions(build_observation(dc))
        overloaded_vm_lists = [
            actions
            for actions in candidates
            if dc.host_of(actions[0].vm_id) == 0
        ]
        assert overloaded_vm_lists
        for actions in overloaded_vm_lists:
            assert all(a.dest_pm_id != 0 for a in actions)

    def test_noop_kept_when_no_destination_exists(self):
        # Single host: nothing can move, the no-op must survive.
        pms = [make_pm(0)]
        vms = [make_vm(0, mips=4000.0, ram_mb=512.0)]
        dc = Datacenter(pms, vms)
        dc.place(0, 0)
        dc.vm(0).set_demand(0.9)
        agent = MeghScheduler(num_vms=1, num_pms=1, seed=0)
        candidates = agent._candidate_actions(build_observation(dc))
        assert candidates == [[MigrationAction(vm_id=0, dest_pm_id=0)]]

    def test_candidate_vm_cap(self):
        pms = [make_pm(i) for i in range(2)]
        vms = [make_vm(j, mips=500.0, ram_mb=256.0) for j in range(10)]
        dc = Datacenter(pms, vms)
        for j in range(10):
            dc.place(j, j % 2)
            dc.vm(j).set_demand(0.1)  # everyone underloaded
        config = MeghConfig(max_candidate_vms=3)
        agent = MeghScheduler(num_vms=10, num_pms=2, config=config, seed=0)
        candidates = agent._candidate_actions(build_observation(dc))
        assert len(candidates) <= 3

    def test_recorded_updates_bounded_by_moves(self):
        dc = self._relief_dc()
        agent = MeghScheduler(num_vms=4, num_pms=3, seed=0)
        agent.decide(build_observation(dc, step=0))
        # moves <= cap (1) and recorded <= moves + noop budget (1 + 1).
        assert len(agent._previous_action_indices) <= 2


class TestPreferredHosts:
    def test_learned_preferences_surface(self):
        agent = MeghScheduler(num_vms=2, num_pms=3, seed=0)
        # Teach the agent that VM 0 -> PM 2 is cheap, PM 1 expensive.
        cheap = agent.basis.index_of(MigrationAction(0, 2))
        costly = agent.basis.index_of(MigrationAction(0, 1))
        for _ in range(5):
            agent.lstd.update(cheap, cheap, cost=-1.0)
            agent.lstd.update(costly, costly, cost=1.0)
        ranking = agent.preferred_hosts(0, top_k=3)
        assert ranking[0][0] == 2
        assert ranking[-1][0] == 1
        qs = [q for _, q in ranking]
        assert qs == sorted(qs)

    def test_top_k_bounds(self):
        agent = MeghScheduler(num_vms=2, num_pms=5, seed=0)
        assert len(agent.preferred_hosts(0, top_k=2)) == 2
        assert len(agent.preferred_hosts(0, top_k=99)) == 5

    def test_invalid_args(self):
        import pytest as _pytest
        from repro.errors import ConfigurationError

        agent = MeghScheduler(num_vms=2, num_pms=2, seed=0)
        with _pytest.raises(ConfigurationError):
            agent.preferred_hosts(9)
        with _pytest.raises(ConfigurationError):
            agent.preferred_hosts(0, top_k=0)


class TestTraceQReuse:
    """Satellite: the trace branch reuses selection's Q values instead of
    recomputing them through the LSTD core."""

    @staticmethod
    def _run(trace):
        from repro.harness.builders import build_planetlab_simulation
        from repro.harness.runner import run_scheduler

        simulation = build_planetlab_simulation(
            num_pms=6, num_vms=9, num_steps=40, seed=5
        )
        scheduler = MeghScheduler.from_simulation(
            simulation, seed=5, contracts=False
        )
        scheduler.trace = trace
        result = run_scheduler(simulation, scheduler)
        evaluations = (
            scheduler.lstd.theta_cache_hits
            + scheduler.lstd.theta_cache_misses
        )
        return scheduler, result, evaluations

    def test_tracing_adds_no_q_evaluations(self):
        from repro.core.trace import DecisionTrace

        _, result_off, evals_off = self._run(trace=None)
        scheduler, result_on, evals_on = self._run(trace=DecisionTrace())
        # Identical runs (same seed), so identical behaviour...
        assert result_on.total_migrations == result_off.total_migrations
        assert result_on.total_cost_usd == result_off.total_cost_usd
        # ...and tracing must be observation-only: zero extra Q lookups.
        assert evals_on == evals_off

    def test_traced_q_matches_selection_values(self):
        from repro.core.trace import DecisionTrace

        scheduler, _, _ = self._run(trace=DecisionTrace())
        records = scheduler.trace.records
        assert any(record.chosen for record in records)
        for record in records:
            assert len(record.chosen_q) == len(record.chosen)
            for value in record.chosen_q:
                assert isinstance(value, float)
