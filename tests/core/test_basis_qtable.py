"""Tests for the sparse basis (Theorem 1) and the Q-table tracker (Fig 7)."""

import pytest

from repro.core.basis import SparseBasis
from repro.core.qtable import QTableTracker
from repro.errors import ConfigurationError
from repro.mdp.action import ActionSpace, MigrationAction


@pytest.fixture
def basis():
    return SparseBasis(ActionSpace(num_vms=3, num_pms=4))


class TestSparseBasis:
    def test_dimension(self, basis):
        assert basis.dimension == 12

    def test_one_hot_vector(self, basis):
        action = MigrationAction(vm_id=1, dest_pm_id=2)
        assert basis.vector(action) == {6: 1.0}

    def test_combination_distinct_actions(self, basis):
        a = MigrationAction(vm_id=0, dest_pm_id=0)
        b = MigrationAction(vm_id=2, dest_pm_id=3)
        combo = basis.combination(a, b, gamma=0.5)
        assert combo == {0: 1.0, 11: -0.5}

    def test_combination_same_action_merges(self, basis):
        a = MigrationAction(vm_id=1, dest_pm_id=1)
        combo = basis.combination(a, a, gamma=0.5)
        assert combo == {5: 0.5}

    def test_combination_gamma_zero(self, basis):
        a = MigrationAction(vm_id=0, dest_pm_id=0)
        b = MigrationAction(vm_id=0, dest_pm_id=1)
        assert basis.combination(a, b, gamma=0.0) == {0: 1.0}

    def test_combination_invalid_gamma(self, basis):
        a = MigrationAction(vm_id=0, dest_pm_id=0)
        with pytest.raises(ConfigurationError):
            basis.combination(a, a, gamma=1.0)

    def test_every_basis_vector_distinct(self, basis):
        indices = set()
        for j in range(3):
            for k in range(4):
                indices.add(basis.index_of(MigrationAction(j, k)))
        assert len(indices) == 12


class TestQTableTracker:
    def test_record_and_series(self):
        tracker = QTableTracker()
        tracker.record(1, 10)
        tracker.record(2, 14)
        assert tracker.steps == [1, 2]
        assert tracker.nonzeros == [10, 14]

    def test_growth_rate_linear_series(self):
        tracker = QTableTracker()
        for step in range(10):
            tracker.record(step, 100 + 3 * step)
        assert tracker.growth_rate() == pytest.approx(3.0)
        assert tracker.intercept() == pytest.approx(100.0)

    def test_growth_rate_constant_series(self):
        tracker = QTableTracker()
        for step in range(5):
            tracker.record(step, 42)
        assert tracker.growth_rate() == pytest.approx(0.0)
        assert tracker.intercept() == pytest.approx(42.0)

    def test_empty_tracker(self):
        tracker = QTableTracker()
        assert tracker.growth_rate() == 0.0
        assert tracker.intercept() == 0.0

    def test_single_sample(self):
        tracker = QTableTracker()
        tracker.record(0, 5)
        assert tracker.growth_rate() == 0.0
