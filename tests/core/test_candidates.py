"""Differential oracle for the array-native candidate pipeline.

The vectorized :class:`~repro.core.candidates.CandidateIndex` must
produce the *same ordered candidate lists element for element* as the
retained scalar generator (``MeghScheduler._candidate_actions``) — on
randomized fleets covering churned/retired slots, bandwidth betas on and
off, and the candidate caps on and off — and routing ``decide()``
through either generator must leave whole-run decision traces
identical.  Also pins satellite fixes: exactly one overload-predicate
evaluation per ``decide()``.
"""

import numpy as np
import pytest

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.soa import DatacenterArrays
from repro.config import MeghConfig
from repro.core.agent import MeghScheduler
from repro.core.candidates import CandidateIndex

from tests.conftest import make_pm, make_vm
from tests.core.test_agent_internals import build_observation


def random_datacenter(seed, num_pms=8, num_vms=20, churn=False):
    """A randomized placed fleet; ``churn`` retires some slots."""
    rng = np.random.default_rng(seed)
    pms = [make_pm(i) for i in range(num_pms)]
    vms = [make_vm(j, mips=1000.0, ram_mb=256.0) for j in range(num_vms)]
    dc = Datacenter(pms, vms)
    for j in range(num_vms):
        dc.place(j, int(rng.integers(0, num_pms)))
        dc.vm(j).set_demand(float(rng.uniform(0.0, 1.0)))
        dc.vm(j).set_bandwidth_demand(float(rng.uniform(0.0, 0.8)))
    if churn:
        # Service-style retirement: remove, deactivate, placeholder
        # capacities on the object, cleared slot in the arrays — the
        # state where object and array views deliberately diverge.
        for j in rng.choice(num_vms, size=num_vms // 4, replace=False):
            slot = int(j)
            dc.remove(slot)
            dc.vm(slot).set_active(False)
            dc.vm(slot).mips = 1.0
            dc.vm(slot).ram_mb = 1.0
            dc.vm(slot).bandwidth_mbps = 1.0
            dc.arrays.clear_vm_slot(slot)
    return dc


def assert_plan_matches_oracle(agent, dc):
    """Vectorized plan == scalar lists, element for element."""
    observation = build_observation(dc)
    oracle = agent._candidate_actions(observation)
    plan = agent.candidate_index.plan(dc)
    assert plan.to_action_lists() == oracle
    # Structural invariants of the flat encoding.
    num_pms = dc.num_pms
    assert plan.num_rows == len(oracle)
    assert plan.num_actions == sum(len(actions) for actions in oracle)
    for r in range(plan.num_rows):
        assert int(plan.sources[r]) == dc.host_of(int(plan.vm_ids[r]))
    np.testing.assert_array_equal(
        plan.action_indices, plan.vm_ids.repeat(np.diff(plan.offsets)) * num_pms + plan.dest_pm
    )


class TestDifferentialOracle:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_fleets(self, seed):
        dc = random_datacenter(seed)
        agent = MeghScheduler(num_vms=20, num_pms=8, seed=seed)
        assert_plan_matches_oracle(agent, dc)

    @pytest.mark.parametrize("seed", range(4))
    def test_churned_fleets(self, seed):
        # Retired slots: object attrs hold placeholders (ram_mb=1.0)
        # while the arrays hold zeros — candidates must come only from
        # placed+active VMs, where the views agree.
        dc = random_datacenter(seed, churn=True)
        agent = MeghScheduler(num_vms=20, num_pms=8, seed=seed)
        assert_plan_matches_oracle(agent, dc)

    @pytest.mark.parametrize("seed", range(4))
    def test_bandwidth_beta_on(self, seed):
        dc = random_datacenter(seed + 100)
        agent = MeghScheduler(
            num_vms=20, num_pms=8, seed=seed, bandwidth_beta=0.7
        )
        assert_plan_matches_oracle(agent, dc)

    @pytest.mark.parametrize(
        "config",
        [
            MeghConfig(max_candidate_vms=0, candidate_destinations=0),
            MeghConfig(max_candidate_vms=5, candidate_destinations=2),
            MeghConfig(consolidate_underloaded=False),
            MeghConfig(underload_threshold=0.6),
            MeghConfig(destination_headroom=1.0),
        ],
        ids=["caps-off", "caps-tight", "no-consolidation",
             "wide-underload", "full-headroom"],
    )
    def test_config_axes(self, config):
        for seed in range(3):
            dc = random_datacenter(seed + 200)
            agent = MeghScheduler(
                num_vms=20, num_pms=8, config=config, seed=seed
            )
            assert_plan_matches_oracle(agent, dc)

    def test_empty_fleet_plan(self):
        dc = random_datacenter(0)
        for j in range(20):
            dc.remove(j)
            dc.vm(j).set_active(False)
            dc.arrays.clear_vm_slot(j)
        agent = MeghScheduler(num_vms=20, num_pms=8, seed=0)
        plan = agent.candidate_index.plan(dc)
        assert plan.num_rows == 0
        assert plan.num_actions == 0
        assert agent._candidate_actions(build_observation(dc)) == []

    def test_index_rebinds_across_datacenters(self):
        agent = MeghScheduler(num_vms=20, num_pms=8, seed=0)
        for seed in (300, 301):
            dc = random_datacenter(seed)
            assert_plan_matches_oracle(agent, dc)


class TestFullRunEquivalence:
    """decide() routed through either generator is trace-identical."""

    @staticmethod
    def _run(seed, scalar):
        from repro.core.trace import DecisionTrace
        from repro.harness.builders import build_planetlab_simulation
        from repro.harness.runner import run_scheduler

        simulation = build_planetlab_simulation(
            num_pms=10, num_vms=16, num_steps=60, seed=seed
        )
        scheduler = MeghScheduler.from_simulation(
            simulation, seed=seed, contracts=False
        )
        scheduler.scalar_candidates = scalar
        scheduler.trace = DecisionTrace()
        result = run_scheduler(simulation, scheduler)
        return scheduler, result

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_scalar_and_vectorized_traces_identical(self, seed):
        vec_agent, vec_result = self._run(seed, scalar=False)
        sca_agent, sca_result = self._run(seed, scalar=True)
        assert vec_result.total_migrations == sca_result.total_migrations
        assert vec_result.total_cost_usd == sca_result.total_cost_usd
        assert vec_agent.trace.records == sca_agent.trace.records
        assert (
            vec_agent.lstd.theta_cache_hits
            == sca_agent.lstd.theta_cache_hits
        )
        assert (
            vec_agent.lstd.theta_cache_misses
            == sca_agent.lstd.theta_cache_misses
        )


class TestSingleOverloadEvaluation:
    """Satellite: the overload predicate runs once per decide()."""

    def _counting_datacenter(self, dc):
        calls = {"mask": 0, "ids": 0}
        original_mask = DatacenterArrays.overloaded_pm_mask
        original_ids = Datacenter.overloaded_pm_ids

        def counting_mask(arrays_self, beta, bandwidth_threshold=None):
            calls["mask"] += 1
            return original_mask(arrays_self, beta, bandwidth_threshold)

        def counting_ids(dc_self, beta, bandwidth_threshold=None):
            calls["ids"] += 1
            return original_ids(dc_self, beta, bandwidth_threshold)

        return calls, counting_mask, counting_ids

    @pytest.mark.parametrize("scalar", [False, True])
    def test_one_evaluation_per_decide(self, scalar, monkeypatch):
        dc = random_datacenter(7)
        calls, counting_mask, counting_ids = self._counting_datacenter(dc)
        monkeypatch.setattr(
            DatacenterArrays, "overloaded_pm_mask", counting_mask
        )
        monkeypatch.setattr(Datacenter, "overloaded_pm_ids", counting_ids)
        agent = MeghScheduler(
            num_vms=20, num_pms=8, seed=7, scalar_candidates=scalar
        )
        agent.decide(build_observation(dc))
        # Vectorized: one mask query.  Scalar oracle: one
        # overloaded_pm_ids call (which itself reads the mask once).
        # Historically the scalar pipeline evaluated the predicate four
        # times per decide (source ordering, relief membership, margin
        # exemption, move prioritisation).
        total = calls["mask"] if not scalar else calls["ids"]
        assert total == 1


class TestScratchReuse:
    def test_broadcast_buffers_are_reused(self):
        dc = random_datacenter(11)
        index = CandidateIndex(
            beta=0.7, bandwidth_beta=None, config=MeghConfig()
        )
        index.plan(dc)
        first = index._feas
        index.plan(dc)
        assert index._feas is first

    def test_scalar_mode_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_CANDIDATES", "1")
        agent = MeghScheduler(num_vms=4, num_pms=2, seed=0)
        assert agent.scalar_candidates
        monkeypatch.setenv("REPRO_SCALAR_CANDIDATES", "0")
        agent = MeghScheduler(num_vms=4, num_pms=2, seed=0)
        assert not agent.scalar_candidates
