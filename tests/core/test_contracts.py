"""Runtime numerical contracts: Sherman–Morrison drift audit and toggles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.agent import MeghScheduler
from repro.core.contracts import (
    ContractConfig,
    NumericalContractError,
    ShermanMorrisonAuditor,
    contracts_enabled,
    require_finite,
)
from repro.core.dense import DenseLstd
from repro.core.lstd import SparseLstd
from repro.errors import ConfigurationError
from repro.harness.runner import run_scheduler


def drive(lstd, auditor, updates=50, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(updates):
        a = int(rng.integers(0, lstd.dimension))
        b = int(rng.integers(0, lstd.dimension))
        lstd.update(a, b, float(rng.normal()))
        auditor.after_update(a, b)


class TestConfig:
    def test_defaults_valid(self):
        config = ContractConfig()
        assert config.audit_every >= 1
        assert config.tolerance > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"audit_every": 0},
            {"tolerance": 0.0},
            {"max_audit_dimension": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ContractConfig(**kwargs)

    def test_toggle_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_CONTRACTS", raising=False)
        assert contracts_enabled() is False
        assert contracts_enabled(default=True) is True
        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        assert contracts_enabled() is True
        monkeypatch.setenv("REPRO_CONTRACTS", "off")
        assert contracts_enabled() is False


class TestRequireFinite:
    def test_passes_through_finite(self):
        assert require_finite("x", 1.25) == 1.25

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_raises_on_non_finite(self, bad):
        with pytest.raises(NumericalContractError):
            require_finite("cost", bad)


class TestShermanMorrisonAudit:
    def test_clean_incremental_inverse_passes(self):
        lstd = SparseLstd(dimension=10, gamma=0.5)
        auditor = ShermanMorrisonAuditor(
            lstd, ContractConfig(audit_every=10_000)
        )
        drive(lstd, auditor, updates=80)
        assert auditor.audit() == []
        assert auditor.last_drift is not None
        assert auditor.last_drift < 1e-9

    def test_corrupted_inverse_is_caught(self):
        lstd = SparseLstd(dimension=8, gamma=0.5)
        auditor = ShermanMorrisonAuditor(
            lstd, ContractConfig(audit_every=10_000)
        )
        drive(lstd, auditor, updates=40)
        lstd.B.set(2, 3, lstd.B.get(2, 3) + 1e-3)  # deliberate corruption
        with pytest.raises(NumericalContractError, match="drift"):
            auditor.audit()

    def test_periodic_audit_fires_on_schedule(self):
        lstd = SparseLstd(dimension=6, gamma=0.5)
        auditor = ShermanMorrisonAuditor(
            lstd, ContractConfig(audit_every=10)
        )
        drive(lstd, auditor, updates=35)
        assert auditor.audits_run == 3

    def test_record_only_mode_collects_instead_of_raising(self):
        lstd = SparseLstd(dimension=6, gamma=0.5)
        auditor = ShermanMorrisonAuditor(
            lstd,
            ContractConfig(audit_every=10_000, raise_on_violation=False),
        )
        drive(lstd, auditor, updates=20)
        lstd.B.set(0, 0, lstd.B.get(0, 0) + 1.0)
        violations = auditor.audit()
        assert violations and auditor.violations

    def test_skipped_updates_stay_consistent(self):
        # gamma=0 with a == a' makes the denominator 1 + B[a,a]; driving
        # B[a,a] toward -1 exercises the skip path without blowing up.
        lstd = SparseLstd(dimension=4, gamma=0.0)
        auditor = ShermanMorrisonAuditor(
            lstd, ContractConfig(audit_every=10_000)
        )
        drive(lstd, auditor, updates=60, seed=3)
        assert auditor.audit() == []

    def test_dense_lstd_supported(self):
        lstd = DenseLstd(dimension=7, gamma=0.4)
        auditor = ShermanMorrisonAuditor(
            lstd, ContractConfig(audit_every=10_000)
        )
        drive(lstd, auditor, updates=50, seed=5)
        assert auditor.audit() == []

    def test_sparse_and_dense_agree_under_audit(self):
        sparse = SparseLstd(dimension=6, gamma=0.5)
        dense = DenseLstd(dimension=6, gamma=0.5)
        rng = np.random.default_rng(11)
        for _ in range(40):
            a = int(rng.integers(0, 6))
            b = int(rng.integers(0, 6))
            cost = float(rng.normal())
            sparse.update(a, b, cost)
            dense.update(a, b, cost)
        np.testing.assert_allclose(
            sparse.B.to_dense(), dense.B, atol=1e-10
        )

    def test_large_dimension_disables_dense_mirror(self):
        lstd = SparseLstd(dimension=50, gamma=0.5)
        auditor = ShermanMorrisonAuditor(
            lstd, ContractConfig(max_audit_dimension=10)
        )
        assert auditor.dense_mirror_active is False
        drive(lstd, auditor, updates=20)
        assert auditor.audit() == []  # finiteness/shape checks still run
        assert auditor.last_drift is None

    def test_non_finite_theta_is_caught(self):
        lstd = SparseLstd(dimension=5, gamma=0.5)
        auditor = ShermanMorrisonAuditor(
            lstd, ContractConfig(audit_every=10_000)
        )
        lstd.z[0] = float("nan")
        with pytest.raises(NumericalContractError, match="finite"):
            auditor.audit()


class TestAgentIntegration:
    def test_agent_enables_auditor_under_test_config(self):
        # tests/conftest.py sets REPRO_CONTRACTS=1 for the whole suite.
        scheduler = MeghScheduler(num_vms=4, num_pms=3)
        assert scheduler.auditor is not None
        assert scheduler.auditor.dense_mirror_active

    def test_agent_contracts_opt_out(self):
        scheduler = MeghScheduler(num_vms=4, num_pms=3, contracts=False)
        assert scheduler.auditor is None

    def test_agent_run_observes_updates_and_stays_clean(
        self, tiny_simulation
    ):
        config = ContractConfig(audit_every=5, tolerance=1e-8)
        scheduler = MeghScheduler.from_simulation(
            tiny_simulation, seed=0, contracts=config
        )
        run_scheduler(tiny_simulation, scheduler, num_steps=15)
        assert scheduler.auditor is not None
        assert scheduler.auditor.updates_observed > 0
        assert scheduler.auditor.violations == []
        # End-of-run audit against a fresh solve still passes.
        assert scheduler.auditor.audit() == []
