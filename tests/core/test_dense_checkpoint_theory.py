"""Tests for the dense LSTD reference, checkpointing, and theory checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MeghConfig
from repro.core.agent import MeghScheduler
from repro.core.checkpoint import load_agent, save_agent
from repro.core.dense import DenseLstd
from repro.core.exploration import EpsilonGreedyPolicy
from repro.core.lstd import SparseLstd
from repro.core.theory import (
    bellman_operator,
    fixed_point_iteration,
    projection_matrix,
    random_reachability,
    verify_contraction,
    verify_unique_projection,
)
from repro.errors import ConfigurationError
from repro.harness.builders import build_planetlab_simulation
from repro.mdp.action import ActionSpace, MigrationAction


class TestDenseMatchesSparse:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.lists(
            st.tuples(
                st.integers(0, 7), st.integers(0, 7),
                st.floats(-3, 3, allow_nan=False),
            ),
            min_size=1,
            max_size=20,
        ),
    )
    def test_q_values_agree(self, dim, raw_updates):
        sparse = SparseLstd(dimension=dim, gamma=0.5)
        dense = DenseLstd(dimension=dim, gamma=0.5)
        for a, b, cost in raw_updates:
            sparse.update(a % dim, b % dim, cost)
            dense.update(a % dim, b % dim, cost)
        for action in range(dim):
            assert sparse.q_value(action) == pytest.approx(
                dense.q_value(action), abs=1e-8
            )

    def test_theta_agrees(self):
        sparse = SparseLstd(dimension=5, gamma=0.5)
        dense = DenseLstd(dimension=5, gamma=0.5)
        for a, b, c in [(0, 1, 1.0), (1, 2, -0.5), (4, 0, 2.0)]:
            sparse.update(a, b, c)
            dense.update(a, b, c)
        assert np.allclose(sparse.theta(), dense.theta(), atol=1e-9)

    def test_dense_nnz_is_d_squared(self):
        assert DenseLstd(dimension=6, gamma=0.5).q_table_nonzeros == 36

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            DenseLstd(dimension=0, gamma=0.5)
        with pytest.raises(ConfigurationError):
            DenseLstd(dimension=3, gamma=1.0)


class TestEpsilonGreedy:
    def test_decay(self):
        policy = EpsilonGreedyPolicy(epsilon=0.5, decay=0.1)
        policy.step()
        assert policy.epsilon == pytest.approx(0.5 * np.exp(-0.1))

    def test_floor(self):
        policy = EpsilonGreedyPolicy(epsilon=0.5, decay=10.0, min_epsilon=0.05)
        policy.step()
        assert policy.epsilon == 0.05

    def test_probabilities(self):
        policy = EpsilonGreedyPolicy(epsilon=0.4)
        probs = policy.probabilities([2.0, 1.0])
        assert probs[1] == pytest.approx(0.6 + 0.2)
        assert probs[0] == pytest.approx(0.2)
        assert sum(probs) == pytest.approx(1.0)

    def test_greedy_at_zero_epsilon(self):
        policy = EpsilonGreedyPolicy(epsilon=0.0)
        action, index = policy.select(["a", "b"], [2.0, 1.0])
        assert action == "b"

    def test_select_greedy(self):
        policy = EpsilonGreedyPolicy(epsilon=1.0)
        assert policy.select_greedy(["a", "b"], [2.0, 1.0])[0] == "b"

    def test_usable_in_megh(self):
        sim = build_planetlab_simulation(num_pms=4, num_vms=6, num_steps=15)
        agent = MeghScheduler(
            num_vms=6,
            num_pms=4,
            policy=EpsilonGreedyPolicy(epsilon=0.3, seed=0),
        )
        result = sim.run(agent)
        assert len(result.metrics.steps) == 15

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            EpsilonGreedyPolicy(epsilon=1.5)
        with pytest.raises(ConfigurationError):
            EpsilonGreedyPolicy(decay=-1.0)


class TestCheckpoint:
    def _trained_agent(self, steps=40):
        sim = build_planetlab_simulation(num_pms=6, num_vms=8, num_steps=steps)
        agent = MeghScheduler.from_simulation(sim, seed=3)
        sim.run(agent)
        return agent

    def test_roundtrip_preserves_learning(self, tmp_path):
        agent = self._trained_agent()
        path = str(tmp_path / "agent.npz")
        save_agent(agent, path)
        restored = load_agent(path, seed=3)
        assert restored.action_space.dimension == agent.action_space.dimension
        for action in range(0, agent.action_space.dimension, 5):
            assert restored.lstd.q_value(action) == pytest.approx(
                agent.lstd.q_value(action)
            )
        assert restored.policy.temperature == pytest.approx(
            agent.policy.temperature
        )
        assert restored.q_table_nonzeros == agent.q_table_nonzeros

    def test_restored_agent_continues(self, tmp_path):
        agent = self._trained_agent()
        path = str(tmp_path / "agent.npz")
        save_agent(agent, path)
        restored = load_agent(path, seed=3)
        sim = build_planetlab_simulation(num_pms=6, num_vms=8, num_steps=20, seed=9)
        result = sim.run(restored)
        assert len(result.metrics.steps) == 20

    def test_gamma_mismatch_rejected(self, tmp_path):
        agent = self._trained_agent()
        path = str(tmp_path / "agent.npz")
        save_agent(agent, path)
        with pytest.raises(ConfigurationError):
            load_agent(path, config=MeghConfig(gamma=0.9))

    def test_missing_file(self):
        with pytest.raises(ConfigurationError):
            load_agent("/nonexistent.npz")

    def test_wrong_npz(self, tmp_path):
        path = str(tmp_path / "other.npz")
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_agent(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"garbage")
        with pytest.raises(ConfigurationError):
            load_agent(str(path))


class TestTheorem1:
    def test_distinct_actions_unique_projection(self):
        space = ActionSpace(num_vms=3, num_pms=3)
        actions = [
            MigrationAction(0, 1),
            MigrationAction(1, 2),
            MigrationAction(2, 0),
        ]
        values = [1.5, -0.5, 2.0]
        unique, theta = verify_unique_projection(space, actions, values)
        assert unique
        psi = projection_matrix(space, actions)
        assert np.allclose(psi @ theta, values)

    def test_theta_entries_land_on_action_indices(self):
        space = ActionSpace(num_vms=2, num_pms=2)
        actions = [MigrationAction(0, 0), MigrationAction(1, 1)]
        unique, theta = verify_unique_projection(space, actions, [3.0, 4.0])
        assert unique
        assert theta[space.index(actions[0])] == pytest.approx(3.0)
        assert theta[space.index(actions[1])] == pytest.approx(4.0)

    def test_repeated_action_breaks_uniqueness(self):
        space = ActionSpace(num_vms=2, num_pms=2)
        actions = [MigrationAction(0, 0), MigrationAction(0, 0)]
        unique, _ = verify_unique_projection(space, actions, [1.0, 2.0])
        assert not unique

    def test_value_length_checked(self):
        space = ActionSpace(num_vms=2, num_pms=2)
        with pytest.raises(ConfigurationError):
            verify_unique_projection(space, [MigrationAction(0, 0)], [1.0, 2.0])


class TestTheorem2:
    @pytest.mark.parametrize("gamma", [0.3, 0.5, 0.9])
    def test_bellman_is_gamma_contraction(self, gamma):
        worst = verify_contraction(gamma=gamma, trials=80, seed=1)
        assert worst <= gamma + 1e-9

    def test_fixed_point_residuals_decay_geometrically(self):
        _, residuals = fixed_point_iteration(gamma=0.5, iterations=40)
        # After warm-up each residual shrinks by at least gamma.
        for before, after in zip(residuals[1:-1], residuals[2:]):
            if before < 1e-12:
                break
            assert after <= 0.5 * before + 1e-9

    def test_fixed_point_is_stationary(self):
        values, _ = fixed_point_iteration(gamma=0.5, iterations=80, seed=2)
        rng = np.random.default_rng(2)
        successors = random_reachability(12, 4, rng)
        costs = rng.uniform(0.1, 2.0, size=(12, 12))
        again = bellman_operator(values, costs, successors, gamma=0.5)
        assert np.allclose(again, values, atol=1e-8)

    def test_invalid_gamma(self):
        with pytest.raises(ConfigurationError):
            bellman_operator(
                np.zeros(2), np.zeros((2, 2)), [[0], [1]], gamma=1.0
            )

    def test_invalid_reachability(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            random_reachability(0, 1, rng)
