"""Tests for the Boltzmann policy calculator (Algorithm 2)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.exploration import BoltzmannPolicy
from repro.errors import ConfigurationError


class TestTemperature:
    def test_decay_factor(self):
        policy = BoltzmannPolicy(initial_temperature=3.0, decay=0.01)
        policy.step()
        assert policy.temperature == pytest.approx(3.0 * math.exp(-0.01))

    def test_decay_floor(self):
        policy = BoltzmannPolicy(
            initial_temperature=1.0, decay=5.0, min_temperature=0.1
        )
        for _ in range(10):
            policy.step()
        assert policy.temperature == pytest.approx(0.1)

    def test_zero_decay_keeps_temperature(self):
        policy = BoltzmannPolicy(initial_temperature=2.0, decay=0.0)
        policy.step()
        assert policy.temperature == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"initial_temperature": 0.0},
            {"decay": -1.0},
            {"min_temperature": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            BoltzmannPolicy(**kwargs)


class TestWeights:
    def test_minimum_gets_weight_one(self):
        policy = BoltzmannPolicy(initial_temperature=1.0)
        weights = policy.weights([3.0, 1.0, 2.0])
        assert weights[1] == pytest.approx(1.0)
        assert all(w <= 1.0 for w in weights)

    def test_algorithm2_formula(self):
        policy = BoltzmannPolicy(initial_temperature=2.0)
        weights = policy.weights([0.0, 4.0])
        assert weights[1] == pytest.approx(math.exp(-2.0))

    def test_empty(self):
        policy = BoltzmannPolicy()
        assert policy.weights([]) == []

    def test_high_temperature_near_uniform(self):
        policy = BoltzmannPolicy(initial_temperature=1e6)
        probs = policy.probabilities([1.0, 2.0, 3.0])
        assert max(probs) - min(probs) < 1e-5

    def test_low_temperature_near_greedy(self):
        policy = BoltzmannPolicy(
            initial_temperature=1e-3, min_temperature=1e-3
        )
        probs = policy.probabilities([1.0, 2.0, 3.0])
        assert probs[0] > 0.999

    def test_underflow_falls_back_to_greedy_uniform(self):
        policy = BoltzmannPolicy(
            initial_temperature=1e-9, min_temperature=1e-9
        )
        probs = policy.probabilities([0.0, 0.0, 1e9])
        assert probs[0] == pytest.approx(0.5)
        assert probs[1] == pytest.approx(0.5)
        assert probs[2] == 0.0

    @given(
        st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=10)
    )
    def test_probabilities_sum_to_one(self, q_values):
        policy = BoltzmannPolicy(initial_temperature=1.5)
        probs = policy.probabilities(q_values)
        assert sum(probs) == pytest.approx(1.0)
        assert all(p >= 0.0 for p in probs)


class TestSelection:
    def test_select_deterministic_seed(self):
        a = BoltzmannPolicy(seed=5)
        b = BoltzmannPolicy(seed=5)
        actions = ["x", "y", "z"]
        qs = [1.0, 2.0, 3.0]
        assert a.select(actions, qs) == b.select(actions, qs)

    def test_select_biased_to_minimum(self):
        policy = BoltzmannPolicy(initial_temperature=0.5, seed=0)
        counts = {"low": 0, "high": 0}
        for _ in range(300):
            action, _ = policy.select(["low", "high"], [0.0, 3.0])
            counts[action] += 1
        assert counts["low"] > counts["high"]

    def test_select_greedy(self):
        policy = BoltzmannPolicy()
        action, index = policy.select_greedy(["a", "b", "c"], [2.0, 0.5, 1.0])
        assert action == "b"
        assert index == 1

    def test_length_mismatch(self):
        policy = BoltzmannPolicy()
        with pytest.raises(ConfigurationError):
            policy.select(["a"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            policy.select_greedy(["a"], [])

    def test_empty_selection_rejected(self):
        policy = BoltzmannPolicy()
        with pytest.raises(ConfigurationError):
            policy.select([], [])

    def test_exploration_rate_decreases_over_time(self):
        # Early: spread choices; late: concentrated on the minimum.
        policy = BoltzmannPolicy(initial_temperature=5.0, decay=0.05, seed=1)
        early = [policy.select([0, 1, 2], [0.0, 1.0, 2.0])[1] for _ in range(200)]
        for _ in range(200):
            policy.step()
        late = [policy.select([0, 1, 2], [0.0, 1.0, 2.0])[1] for _ in range(200)]
        assert np.mean([i != 0 for i in late]) < np.mean([i != 0 for i in early])
