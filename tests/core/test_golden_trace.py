"""Golden decision-trace regression tests (the rewrite's behaviour fence).

The fixtures were recorded with the pre-vectorization dict-of-dicts
numerical core; these tests prove the array-backed ``SparseMatrix`` +
cached ``SparseLstd`` reproduce the *identical* migration sequence on
fixed-seed synthetic-PlanetLab runs.  Every Q-value the agent ranks, the
Boltzmann sampling stream, and the noop-budget sampling all feed into
this sequence, so agreement here is the strongest end-to-end equivalence
check the repo has.
"""

from __future__ import annotations

import json

import pytest

from tests.core.golden_scenarios import (
    GOLDEN_SEEDS,
    fixture_path,
    run_golden_scenario,
)


def _load_fixture(seed: int) -> dict:
    with open(fixture_path(seed), "r", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_migration_sequence_is_reproduced_exactly(seed: int) -> None:
    expected = _load_fixture(seed)
    actual = run_golden_scenario(seed)
    assert actual["scenario"] == expected["scenario"]
    assert actual["migrations"] == expected["migrations"], (
        f"seed {seed}: vectorized core diverged from the recorded "
        f"decision trace (first difference at migration "
        f"{next(i for i, (a, b) in enumerate(zip(actual['migrations'], expected['migrations'])) if a != b) if actual['migrations'] and expected['migrations'] else 0})"
    )
    assert actual["total_migrations"] == expected["total_migrations"]
    assert actual["q_table_nonzeros"] == expected["q_table_nonzeros"]
    assert actual["total_cost_usd"] == pytest.approx(
        expected["total_cost_usd"], rel=0, abs=0
    )


def test_fixtures_exist_for_all_seeds() -> None:
    for seed in GOLDEN_SEEDS:
        payload = _load_fixture(seed)
        assert payload["seed"] == seed
        assert payload["migrations"], "fixture should contain migrations"
