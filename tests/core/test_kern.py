"""Tests for meghkern — the deferred rank-k Sherman–Morrison engine.

Covers backend selection (``REPRO_KERNEL`` / ``REPRO_KERNEL_WINDOW``),
staging semantics, cross-backend bit-identity, the compiled row-combine
helper, and a randomized differential oracle against a dense NumPy
replica of the eager scatter.  Backends are compared by *matrix state*
(bit equality), never by their internal applied/skipped counters — the
C kernel counts every scanned-and-skipped update while the NumPy
backend only scans candidates, so the stats legitimately differ.
"""

import numpy as np
import pytest

from repro.core import kern
from repro.core.kern import (
    DEFAULT_WINDOW,
    KernelUnavailableError,
    NumpyKernel,
    PendingUpdates,
)
from repro.core.lstd import _row_entry
from repro.core.sparse import PRUNE_EPSILON, SparseMatrix
from repro.errors import ConfigurationError

_HAS_COMPILER = kern._find_compiler() is not None

#: Every backend mode runnable in this environment.
KERNELS = ["off", "numpy"] + (["c"] if _HAS_COMPILER else [])
#: Deferred backends only (staging semantics tests).
DEFERRED = [mode for mode in KERNELS if mode != "off"]


def dense_of(matrix: SparseMatrix) -> np.ndarray:
    """Flush and densify — the bit-exact comparison form."""
    matrix.flush_pending()
    out = np.zeros((matrix.dimension, matrix.dimension))
    for i, j, value in matrix.items():
        out[i, j] = value
    return out


def oracle_apply(
    dense: np.ndarray,
    pivot: int,
    columns: np.ndarray,
    values: np.ndarray,
    scale: float,
) -> None:
    """Dense replica of the eager scatter, float-op for float-op.

    Weights are the *pre-update* column (snapshot first), each touched
    row adds ``(scale * w) * values`` with the same association as
    ``_scatter_add``, and entries at or below the prune epsilon become
    exact zeros — so a correct kernel matches bit for bit.
    """
    weights = dense[:, pivot].copy()
    for i in np.nonzero(weights)[0]:
        d = scale * float(weights[i])
        block = dense[i, columns] + d * values
        block[np.abs(block) <= PRUNE_EPSILON] = 0.0
        dense[i, columns] = block


def random_update(rng, dimension):
    """A normalized (sorted-unique, zero-free) random rank-1 right factor."""
    count = int(rng.integers(1, 6))
    columns = np.sort(
        rng.choice(dimension, size=count, replace=False)
    ).astype(np.int64)
    values = rng.normal(0.0, 1.0, size=count)
    scale = float(rng.normal(0.0, 1.0)) or 1.0
    return columns, values, scale


class TestBackendSelection:
    def test_resolve_mode_default_and_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert kern.resolve_mode() == "auto"
        monkeypatch.setenv("REPRO_KERNEL", "NumPy")
        assert kern.resolve_mode() == "numpy"
        monkeypatch.setenv("REPRO_KERNEL", "bogus")
        with pytest.raises(ConfigurationError):
            kern.resolve_mode()

    def test_window_env_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_WINDOW", raising=False)
        assert kern.resolve_window() == DEFAULT_WINDOW
        monkeypatch.setenv("REPRO_KERNEL_WINDOW", "7")
        assert kern.resolve_window() == 7
        monkeypatch.setenv("REPRO_KERNEL_WINDOW", "0")
        with pytest.raises(ConfigurationError):
            kern.resolve_window()
        monkeypatch.setenv("REPRO_KERNEL_WINDOW", "many")
        with pytest.raises(ConfigurationError):
            kern.resolve_window()

    def test_off_mode_is_eager(self):
        matrix = SparseMatrix(4, kernel="off")
        assert matrix.kernel_name == "off"
        assert matrix.kernel_backend is None

    def test_numpy_mode(self):
        matrix = SparseMatrix(4, kernel="numpy")
        assert matrix.kernel_name == "numpy"
        assert isinstance(matrix.kernel_backend, NumpyKernel)

    @pytest.mark.skipif(not _HAS_COMPILER, reason="no C compiler on PATH")
    def test_c_mode_compiles(self):
        matrix = SparseMatrix(4, kernel="c")
        assert matrix.kernel_name == "c"

    def test_c_mode_without_compiler_raises(self, monkeypatch, tmp_path):
        monkeypatch.setenv("PATH", str(tmp_path / "nothing-here"))
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path / "cache"))
        with pytest.raises(KernelUnavailableError):
            SparseMatrix(4, kernel="c")

    def test_auto_mode_falls_back_to_numpy(self, monkeypatch, tmp_path):
        monkeypatch.setenv("PATH", str(tmp_path / "nothing-here"))
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path / "cache"))
        matrix = SparseMatrix(4, kernel="auto")
        assert matrix.kernel_name == "numpy"


class TestStagingSemantics:
    @pytest.mark.parametrize("mode", DEFERRED)
    def test_enqueue_defers_and_read_flushes(self, mode):
        matrix = SparseMatrix.identity(8, scale=1.0, kernel=mode)
        pending = matrix._pending
        columns = np.array([3], dtype=np.int64)
        values = np.array([2.0])
        matrix.rank_one_update_from_column(0, columns, values, scale=1.0)
        assert pending.pending_count == 1
        assert pending.is_dirty(0)
        # Read-through resolution: the row read settles exactly row 0.
        assert matrix.get(0, 3) == 2.0
        assert not pending.is_dirty(0)

    @pytest.mark.parametrize("mode", DEFERRED)
    def test_flush_preserves_matrix_mutations(self, mode):
        matrix = SparseMatrix.identity(8, scale=1.0, kernel=mode)
        columns = np.array([3], dtype=np.int64)
        matrix.rank_one_update_from_column(0, columns, np.array([2.0]), 1.0)
        seen = matrix.mutations
        matrix.flush_pending()
        # Representation-preserving: the logical value did not change.
        assert matrix.mutations == seen
        # Each rank-1 bumps the matrix counter exactly once (at stage).
        matrix.rank_one_update_from_column(0, columns, np.array([1.0]), 1.0)
        assert matrix.mutations == seen + 1

    def test_window_triggers_full_flush(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_WINDOW", "3")
        matrix = SparseMatrix.identity(8, scale=1.0, kernel="numpy")
        pending = matrix._pending
        columns = np.array([4], dtype=np.int64)
        for k in range(3):
            matrix.rank_one_update_from_column(
                k, columns, np.array([1.0]), 1.0
            )
        assert pending.pending_count == 3
        # The fourth stage retires the full window first.
        matrix.rank_one_update_from_column(3, columns, np.array([1.0]), 1.0)
        assert pending.pending_count == 1
        assert pending.full_flushes == 1

    @pytest.mark.parametrize("mode", DEFERRED)
    def test_staged_only_reachable_rows_apply(self, mode):
        # Column 3 has NO stored support when the second update stages:
        # its only future entry comes from the still-staged first update.
        # The engine must stage it anyway and the replay must apply it.
        matrix = SparseMatrix(8, kernel=mode)
        matrix.set(0, 0, 1.0)
        matrix.rank_one_update_from_column(
            0, np.array([3], dtype=np.int64), np.array([1.0]), 1.0
        )
        matrix.rank_one_update_from_column(
            3, np.array([5], dtype=np.int64), np.array([1.0]), 1.0
        )
        assert matrix.get(0, 3) == 1.0
        assert matrix.get(0, 5) == 1.0

    @pytest.mark.parametrize("mode", DEFERRED)
    def test_window_boundary_support_is_settled(self, mode, monkeypatch):
        # Regression for the pre-flush ordering: when staging the third
        # update forces the window flush, the support read afterwards
        # must see the *settled* image (rows that gained a pivot entry
        # during that flush are clean again and must be re-marked).
        monkeypatch.setenv("REPRO_KERNEL_WINDOW", "2")
        matrix = SparseMatrix(8, kernel=mode)
        matrix.set(0, 0, 1.0)
        matrix.rank_one_update_from_column(
            0, np.array([3], dtype=np.int64), np.array([1.0]), 1.0
        )
        matrix.rank_one_update_from_column(
            0, np.array([4], dtype=np.int64), np.array([1.0]), 1.0
        )
        matrix.rank_one_update_from_column(
            3, np.array([5], dtype=np.int64), np.array([2.0]), 1.0
        )
        assert matrix.get(0, 5) == 2.0

    @pytest.mark.parametrize("mode", DEFERRED)
    def test_flush_rows_batch_matches_per_row(self, mode):
        rng = np.random.default_rng(11)
        streams = []
        for _ in range(2):
            matrix = SparseMatrix.identity(12, scale=1.0, kernel=mode)
            stream_rng = np.random.default_rng(99)
            for _ in range(40):
                pivot = int(stream_rng.integers(0, 12))
                columns, values, scale = random_update(stream_rng, 12)
                matrix.rank_one_update_from_column(
                    pivot, columns, values, scale
                )
            streams.append(matrix)
        batched, per_row = streams
        # Batched: duplicates included and > 4 rows (the grouped C path).
        batched.flush_rows(np.array([0, 1, 2, 3, 4, 5, 5, 0], dtype=np.int64))
        for i in (0, 1, 2, 3, 4, 5):
            per_row.row_view(i)
        assert np.array_equal(dense_of(batched), dense_of(per_row))

    def test_pending_updates_rejects_bad_config(self):
        backend = NumpyKernel()
        with pytest.raises(ConfigurationError):
            PendingUpdates(backend, dimension=0)
        with pytest.raises(ConfigurationError):
            PendingUpdates(backend, dimension=4, window=0)


class TestBackendParity:
    def test_backends_bit_identical(self):
        """Same stream + same forced flushes -> byte-equal matrices."""
        dimension = 24
        matrices = {
            mode: SparseMatrix.identity(dimension, scale=1.0, kernel=mode)
            for mode in KERNELS
        }
        rng = np.random.default_rng(5)
        for step in range(300):
            pivot = int(rng.integers(0, dimension))
            columns, values, scale = random_update(rng, dimension)
            probe = int(rng.integers(0, dimension))
            batch = rng.integers(0, dimension, size=6).astype(np.int64)
            for matrix in matrices.values():
                matrix.rank_one_update_from_column(
                    pivot, columns.copy(), values.copy(), scale
                )
                if step % 7 == 0:
                    matrix.row_view(probe)
                if step % 13 == 0:
                    matrix.flush_rows(batch)
        reference_mode, *other_modes = KERNELS
        reference = dense_of(matrices[reference_mode])
        for mode in other_modes:
            assert np.array_equal(reference, dense_of(matrices[mode])), mode
        for matrix in matrices.values():
            assert matrix.nnz == int(np.count_nonzero(reference))


class TestDifferentialOracle:
    @pytest.mark.parametrize("mode", KERNELS)
    def test_random_stream_matches_dense_oracle(self, mode):
        dimension = 32
        matrix = SparseMatrix.identity(dimension, scale=0.5, kernel=mode)
        oracle = np.zeros((dimension, dimension))
        np.fill_diagonal(oracle, 0.5)
        rng = np.random.default_rng(17)
        for step in range(250):
            pivot = int(rng.integers(0, dimension))
            columns, values, scale = random_update(rng, dimension)
            matrix.rank_one_update_from_column(pivot, columns, values, scale)
            oracle_apply(oracle, pivot, columns, values, scale)
            if step % 5 == 0:
                matrix.row_view(int(rng.integers(0, dimension)))
            if step % 11 == 0:
                matrix.flush_rows(
                    rng.integers(0, dimension, size=8).astype(np.int64)
                )
        assert np.array_equal(dense_of(matrix), oracle)
        assert matrix.nnz == int(np.count_nonzero(oracle))

    @pytest.mark.parametrize("mode", KERNELS)
    def test_dyadic_stream_forces_exact_prunes(self, mode):
        """Power-of-two data makes cancellations land on exact zeros,
        driving the prune/remove paths through every backend."""
        dimension = 16
        matrix = SparseMatrix.identity(dimension, scale=1.0, kernel=mode)
        oracle = np.eye(dimension)
        rng = np.random.default_rng(23)
        choices = np.array([-2.0, -1.0, -0.5, 0.5, 1.0, 2.0])
        for step in range(200):
            pivot = int(rng.integers(0, dimension))
            count = int(rng.integers(1, 5))
            columns = np.sort(
                rng.choice(dimension, size=count, replace=False)
            ).astype(np.int64)
            values = rng.choice(choices, size=count)
            scale = float(rng.choice(choices))
            matrix.rank_one_update_from_column(pivot, columns, values, scale)
            oracle_apply(oracle, pivot, columns, values, scale)
            if step % 3 == 0:
                matrix.row_view(int(rng.integers(0, dimension)))
        assert np.array_equal(dense_of(matrix), oracle)
        assert matrix.nnz == int(np.count_nonzero(oracle))


@pytest.mark.skipif(not _HAS_COMPILER, reason="no C compiler on PATH")
class TestCombineRows:
    def test_matches_numpy_construction(self):
        matrix = SparseMatrix(16, kernel="c")
        rng = np.random.default_rng(3)
        for j in sorted(rng.choice(16, size=7, replace=False).tolist()):
            matrix.set(2, int(j), float(rng.normal()))
        for j in sorted(rng.choice(16, size=5, replace=False).tolist()):
            matrix.set(9, int(j), float(rng.normal()))
        gamma = 0.5
        pivot = int(matrix.row_view(2)[0][0])
        idx_a, val_a = matrix.row_view(2)
        idx_b, val_b = matrix.row_view(9)
        backend = matrix.kernel_backend
        columns, values, entry_a, entry_b = backend.combine_rows(
            matrix._row_raw(2), matrix._row_raw(9), gamma, pivot
        )
        # NumPy replica (the fallback path in SparseLstd.update).
        merged = np.concatenate((idx_a, idx_b))
        merged.sort(kind="stable")
        keep = np.empty(merged.shape[0], dtype=bool)
        keep[0] = True
        np.not_equal(merged[1:], merged[:-1], out=keep[1:])
        expected_columns = merged[keep]
        expected_values = np.zeros(expected_columns.shape[0])
        expected_values[np.searchsorted(expected_columns, idx_a)] = val_a
        expected_values[
            np.searchsorted(expected_columns, idx_b)
        ] -= gamma * val_b
        nonzero = expected_values != 0.0
        assert np.array_equal(columns, expected_columns[nonzero])
        assert np.array_equal(values, expected_values[nonzero])
        assert entry_a == _row_entry(idx_a, val_a, pivot)
        assert entry_b == _row_entry(idx_b, val_b, pivot)

    def test_empty_and_disjoint_rows(self):
        matrix = SparseMatrix(8, kernel="c")
        matrix.set(0, 1, 2.0)
        matrix.set(0, 4, -1.0)
        matrix.set(5, 2, 8.0)
        backend = matrix.kernel_backend
        columns, values, entry_a, entry_b = backend.combine_rows(
            matrix._row_raw(0), matrix._row_raw(5), 0.5, 1
        )
        assert columns.tolist() == [1, 2, 4]
        assert values.tolist() == [2.0, 0.5 * -8.0, -1.0]
        assert entry_a == 2.0
        assert entry_b == 0.0

    def test_exact_cancellation_is_dropped(self):
        # Shared column where row_a - gamma * row_next is exactly zero:
        # the combine drops it, matching the staging zero filter.
        matrix = SparseMatrix(8, kernel="c")
        matrix.set(0, 3, 1.0)
        matrix.set(5, 3, 2.0)
        backend = matrix.kernel_backend
        columns, values, _, _ = backend.combine_rows(
            matrix._row_raw(0), matrix._row_raw(5), 0.5, 0
        )
        assert columns.shape[0] == 0
        assert values.shape[0] == 0


class TestRowDotBitEquality:
    def test_row_dot_matches_transparent_gather(self):
        matrix = SparseMatrix(16, kernel="off")
        rng = np.random.default_rng(29)
        for j in (1, 4, 7, 11, 15):
            matrix.set(3, j, float(rng.normal()))
        vector = {11: 0.25, 4: -1.5, 2: 3.0, 15: float(rng.normal())}
        idx, val = matrix.row_view(3)
        gathered = np.array([vector.get(int(j), 0.0) for j in idx])
        expected = float(np.dot(val, gathered))
        assert matrix.row_dot(3, vector) == expected

    def test_row_dot_matches_dense_dot_bitwise(self):
        dimension = 32
        matrix = SparseMatrix(dimension, kernel="off")
        rng = np.random.default_rng(31)
        for j in sorted(rng.choice(dimension, size=9, replace=False).tolist()):
            matrix.set(5, int(j), float(rng.normal()))
        dense = rng.normal(0.0, 1.0, size=dimension)
        sparse_vector = {int(j): float(dense[j]) for j in range(dimension)}
        assert matrix.row_dot(5, sparse_vector) == matrix.row_dot_dense(
            5, dense
        )

    def test_row_dot_empty_cases(self):
        matrix = SparseMatrix(4, kernel="off")
        assert matrix.row_dot(0, {1: 5.0}) == 0.0
        matrix.set(2, 2, 3.0)
        assert matrix.row_dot(2, {}) == 0.0


class TestScatterAddPruneBoundary:
    """Exact-epsilon regression tests for the eager scatter.

    ``2*eps - eps == eps`` is exact (Sterbenz), so these land the
    post-update magnitude exactly *on* the prune threshold — the
    ``<= PRUNE_EPSILON`` boundary must prune, one ulp above must not.
    """

    def test_hit_landing_on_epsilon_is_pruned(self):
        matrix = SparseMatrix(6, kernel="off")
        matrix.set(0, 3, 2 * PRUNE_EPSILON)
        matrix.rank_one_update({0: 1.0}, {3: -1.0}, scale=PRUNE_EPSILON)
        assert matrix.get(0, 3) == 0.0
        assert matrix.nnz == 0
        assert matrix.rows_with_column(3) == []

    def test_hit_above_epsilon_survives(self):
        matrix = SparseMatrix(6, kernel="off")
        matrix.set(0, 3, 2 * PRUNE_EPSILON)
        matrix.rank_one_update({0: 1.0}, {3: -0.5}, scale=PRUNE_EPSILON)
        assert matrix.get(0, 3) == 1.5 * PRUNE_EPSILON
        assert matrix.nnz == 1

    def test_fresh_insert_at_epsilon_is_dropped(self):
        matrix = SparseMatrix(6, kernel="off")
        matrix.rank_one_update({1: 1.0}, {4: 1.0}, scale=PRUNE_EPSILON)
        assert matrix.get(1, 4) == 0.0
        assert matrix.nnz == 0

    def test_row_pruned_empty_with_dead_inserts_cleans_up(self):
        # The single-exit path: the only live entry prunes to the
        # threshold while every fresh insert is dead — the row must be
        # fully cleaned up (storage, nnz, column index).
        matrix = SparseMatrix(6, kernel="off")
        matrix.set(2, 1, 2 * PRUNE_EPSILON)
        matrix.rank_one_update(
            {2: 1.0}, {1: -1.0, 5: 1.0}, scale=PRUNE_EPSILON
        )
        assert matrix.get(2, 1) == 0.0
        assert matrix.get(2, 5) == 0.0
        assert matrix.nnz == 0
        assert matrix.rows_with_column(1) == []
        assert matrix.rows_with_column(5) == []
