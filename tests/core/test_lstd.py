"""Tests for the Sherman-Morrison LSTD core (Algorithm 1, Eq. 11).

The crucial property: Megh's incrementally maintained ``B`` must equal the
directly computed inverse of ``T = delta*I + sum phi_a (phi_a - gamma
phi_a')^T`` after any update sequence — Sherman-Morrison is exact, not an
approximation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lstd import SparseLstd
from repro.errors import ConfigurationError


def dense_T(dim, gamma, delta, updates):
    """Direct construction of the transition operator."""
    T = delta * np.eye(dim)
    for a, a_next in updates:
        phi_a = np.zeros(dim)
        phi_a[a] = 1.0
        phi_next = np.zeros(dim)
        phi_next[a_next] = 1.0
        T += np.outer(phi_a, phi_a - gamma * phi_next)
    return T


class TestConstruction:
    def test_initial_B_is_scaled_identity(self):
        lstd = SparseLstd(dimension=4, gamma=0.5)
        dense = lstd.B.to_dense()
        assert np.allclose(dense, np.eye(4) / 4.0)

    def test_delta_defaults_to_dimension(self):
        lstd = SparseLstd(dimension=8, gamma=0.5)
        assert lstd.delta == 8.0

    def test_explicit_delta(self):
        lstd = SparseLstd(dimension=4, gamma=0.5, delta=100.0)
        assert lstd.B.get(0, 0) == pytest.approx(0.01)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dimension": 0, "gamma": 0.5},
            {"dimension": 4, "gamma": 1.0},
            {"dimension": 4, "gamma": -0.1},
            {"dimension": 4, "gamma": 0.5, "delta": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            SparseLstd(**kwargs)


class TestShermanMorrisonExactness:
    def test_single_update_matches_direct_inverse(self):
        lstd = SparseLstd(dimension=3, gamma=0.5, delta=3.0)
        lstd.update(0, 1, cost=1.0)
        expected = np.linalg.inv(dense_T(3, 0.5, 3.0, [(0, 1)]))
        assert np.allclose(lstd.B.to_dense(), expected, atol=1e-9)

    def test_self_transition_update(self):
        lstd = SparseLstd(dimension=3, gamma=0.5, delta=3.0)
        lstd.update(2, 2, cost=1.0)
        expected = np.linalg.inv(dense_T(3, 0.5, 3.0, [(2, 2)]))
        assert np.allclose(lstd.B.to_dense(), expected, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=1,
            max_size=25,
        ),
    )
    def test_update_sequences_match_direct_inverse(self, dim, raw_updates):
        updates = [(a % dim, b % dim) for a, b in raw_updates]
        gamma = 0.5
        lstd = SparseLstd(dimension=dim, gamma=gamma)
        for a, a_next in updates:
            lstd.update(a, a_next, cost=1.0)
        if lstd.updates_skipped:
            return  # a degenerate denominator was skipped; B diverges by design
        expected = np.linalg.inv(dense_T(dim, gamma, float(dim), updates))
        assert np.allclose(lstd.B.to_dense(), expected, atol=1e-6)

    def test_updates_applied_counter(self):
        lstd = SparseLstd(dimension=3, gamma=0.5)
        lstd.update(0, 1, 1.0)
        lstd.update(1, 2, 1.0)
        assert lstd.updates_applied == 2
        assert lstd.updates_skipped == 0


class TestThetaAndQ:
    def test_theta_is_B_times_z(self):
        lstd = SparseLstd(dimension=4, gamma=0.5)
        for a, a_next, cost in [(0, 1, 2.0), (1, 2, -1.0), (0, 0, 0.5)]:
            lstd.update(a, a_next, cost)
        z = np.zeros(4)
        z[0] = 2.5
        z[1] = -1.0
        expected = lstd.B.to_dense() @ z
        assert np.allclose(lstd.theta(), expected, atol=1e-9)

    def test_q_value_matches_theta_entry(self):
        lstd = SparseLstd(dimension=4, gamma=0.5)
        lstd.update(2, 3, cost=1.5)
        theta = lstd.theta()
        for a in range(4):
            assert lstd.q_value(a) == pytest.approx(theta[a])

    def test_unvisited_actions_have_zero_q(self):
        lstd = SparseLstd(dimension=4, gamma=0.5)
        lstd.update(0, 0, cost=5.0)
        assert lstd.q_value(3) == pytest.approx(0.0)

    def test_positive_cost_raises_q(self):
        lstd = SparseLstd(dimension=4, gamma=0.5)
        lstd.update(0, 0, cost=5.0)
        assert lstd.q_value(0) > 0.0

    def test_negative_cost_lowers_q(self):
        lstd = SparseLstd(dimension=4, gamma=0.5)
        lstd.update(0, 0, cost=-5.0)
        assert lstd.q_value(0) < 0.0

    def test_repeated_low_cost_action_preferred(self):
        # The action consistently followed by low cost must end with the
        # lower Q — the ordering Boltzmann exploitation relies on.
        lstd = SparseLstd(dimension=2, gamma=0.5)
        for _ in range(20):
            lstd.update(0, 0, cost=-1.0)
            lstd.update(1, 1, cost=1.0)
        assert lstd.q_value(0) < lstd.q_value(1)

    def test_action_bounds(self):
        lstd = SparseLstd(dimension=2, gamma=0.5)
        with pytest.raises(ConfigurationError):
            lstd.update(2, 0, 1.0)
        with pytest.raises(ConfigurationError):
            lstd.q_value(-1)


class TestQTableGrowth:
    def test_nnz_starts_at_dimension(self):
        lstd = SparseLstd(dimension=6, gamma=0.5)
        assert lstd.q_table_nonzeros == 6

    def test_nnz_grows_with_updates(self):
        lstd = SparseLstd(dimension=6, gamma=0.5)
        before = lstd.q_table_nonzeros
        lstd.update(0, 1, 1.0)
        assert lstd.q_table_nonzeros > before
