"""Dirty-row theta cache and batched ``q_values`` behaviour.

The cache is pure memoization: every test here asserts *bit-identical*
values between cached and freshly computed Q, because the golden-trace
fence (``test_golden_trace.py``) only holds if memoization never changes
a single ulp.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lstd import SparseLstd
from repro.errors import ConfigurationError


def filled_lstd(dimension: int = 64, updates: int = 120, seed: int = 3):
    rng = np.random.default_rng(seed)
    lstd = SparseLstd(dimension=dimension, gamma=0.5)
    for _ in range(updates):
        lstd.update(
            int(rng.integers(0, dimension)),
            int(rng.integers(0, dimension)),
            float(rng.normal()),
        )
    return lstd


class TestThetaCache:
    def test_repeated_q_value_hits_cache(self):
        lstd = filled_lstd()
        first = lstd.q_value(5)
        hits_before = lstd.theta_cache_hits
        second = lstd.q_value(5)
        assert second == first
        assert lstd.theta_cache_hits == hits_before + 1

    def test_cached_value_is_bit_identical_to_fresh(self):
        lstd = filled_lstd()
        cached = [lstd.q_value(i) for i in range(lstd.dimension)]
        lstd.invalidate_theta_cache()
        fresh = [lstd.q_value(i) for i in range(lstd.dimension)]
        assert cached == fresh

    def test_update_invalidates_touched_rows(self):
        lstd = filled_lstd()
        for i in range(lstd.dimension):
            lstd.q_value(i)
        lstd.update(3, 7, 0.25)
        # Every currently-fresh row must still agree with a recompute —
        # the dirty-row invariant, checked exactly.
        assert lstd.verify_theta_cache() == []

    def test_verify_after_many_interleaved_reads_and_updates(self):
        rng = np.random.default_rng(11)
        lstd = SparseLstd(dimension=48, gamma=0.5)
        for step in range(200):
            lstd.update(
                int(rng.integers(0, 48)),
                int(rng.integers(0, 48)),
                float(rng.normal()),
            )
            lstd.q_value(int(rng.integers(0, 48)))
            if step % 25 == 0:
                assert lstd.verify_theta_cache() == []
        assert lstd.verify_theta_cache() == []

    def test_skipped_update_still_invalidates_z_rows(self):
        # gamma=0 and a self-transition can't skip, so force a skip via
        # a near-singular denominator is hard to stage; instead check
        # the documented behaviour directly: after any update (applied
        # or skipped), the cache verifies clean.
        lstd = filled_lstd()
        for i in range(lstd.dimension):
            lstd.q_value(i)
        skipped_before = lstd.updates_skipped
        lstd.update(0, 0, 1.0)
        assert lstd.verify_theta_cache() == []
        assert lstd.updates_skipped >= skipped_before

    def test_external_b_write_invalidates(self):
        lstd = filled_lstd()
        for i in range(lstd.dimension):
            lstd.q_value(i)
        lstd.B.set(2, 3, lstd.B.get(2, 3) + 0.5)
        assert lstd.verify_theta_cache() == []
        lstd.invalidate_theta_cache()
        assert lstd.q_value(2) == lstd.B.row_dot(2, dict(lstd.z))

    def test_external_z_write_invalidates(self):
        lstd = filled_lstd()
        for i in range(lstd.dimension):
            lstd.q_value(i)
        lstd.z[4] = 123.0
        assert lstd.verify_theta_cache() == []
        expected = lstd.B.row_dot(7, dict(lstd.z))
        assert lstd.q_value(7) == expected


class TestBatchedQValues:
    def test_matches_scalar_q_value(self):
        lstd = filled_lstd()
        indices = [0, 5, 9, 5, 63]
        batch = lstd.q_values(indices)
        assert isinstance(batch, np.ndarray)
        assert batch.shape == (len(indices),)
        scalar = [lstd.q_value(i) for i in indices]
        assert batch.tolist() == scalar

    def test_empty_batch(self):
        lstd = filled_lstd()
        assert lstd.q_values([]).shape == (0,)

    def test_out_of_range_raises(self):
        lstd = filled_lstd()
        with pytest.raises(ConfigurationError, match="out of range"):
            lstd.q_values([0, lstd.dimension])
        with pytest.raises(ConfigurationError, match="out of range"):
            lstd.q_values([-1])

    def test_batch_result_is_a_copy(self):
        lstd = filled_lstd()
        batch = lstd.q_values([1, 2, 3])
        batch[0] = 999.0
        assert lstd.q_value(1) != 999.0 or lstd.q_values([1])[0] != 999.0

    def test_duplicate_indices_counted_once_as_miss(self):
        lstd = filled_lstd()
        lstd.invalidate_theta_cache()
        misses_before = lstd.theta_cache_misses
        lstd.q_values([8, 8, 8, 8])
        assert lstd.theta_cache_misses == misses_before + 1


class TestThetaSparseScan:
    def test_theta_matches_old_dense_loop_on_random_instance(self):
        """Satellite: the column-index scan equals the historical O(d)
        full-dimension loop, bitwise."""
        lstd = filled_lstd(dimension=96, updates=250, seed=17)
        sparse_scan = lstd.theta()
        dense_loop = np.zeros(lstd.dimension)
        z = dict(lstd.z)
        for i in range(lstd.dimension):
            dense_loop[i] = lstd.B.row_dot(i, z)
        assert sparse_scan.shape == dense_loop.shape
        assert np.array_equal(sparse_scan, dense_loop)

    def test_theta_on_fresh_learner_is_zero(self):
        lstd = SparseLstd(dimension=32, gamma=0.5)
        assert np.array_equal(lstd.theta(), np.zeros(32))

    def test_theta_after_single_update(self):
        lstd = SparseLstd(dimension=16, gamma=0.0)
        lstd.update(3, 3, 2.0)
        theta = lstd.theta()
        assert theta[3] == lstd.q_value(3)
        assert np.count_nonzero(theta) >= 1
