"""Tests for the sparse matrix behind Megh's B operator (Section 5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sparse import SparseMatrix
from repro.errors import ConfigurationError


class TestBasics:
    def test_identity(self):
        matrix = SparseMatrix.identity(3, scale=0.5)
        assert matrix.get(0, 0) == 0.5
        assert matrix.get(0, 1) == 0.0
        assert matrix.nnz == 3

    def test_set_get(self):
        matrix = SparseMatrix(4)
        matrix.set(1, 2, 3.5)
        assert matrix.get(1, 2) == 3.5
        assert matrix.nnz == 1

    def test_set_zero_erases(self):
        matrix = SparseMatrix(4)
        matrix.set(1, 2, 3.5)
        matrix.set(1, 2, 0.0)
        assert matrix.nnz == 0
        assert matrix.get(1, 2) == 0.0

    def test_add(self):
        matrix = SparseMatrix(4)
        matrix.add(0, 0, 1.0)
        matrix.add(0, 0, 2.0)
        assert matrix.get(0, 0) == 3.0

    def test_add_cancels_to_zero(self):
        matrix = SparseMatrix(4)
        matrix.add(0, 0, 1.0)
        matrix.add(0, 0, -1.0)
        assert matrix.nnz == 0

    def test_bounds_checked(self):
        matrix = SparseMatrix(2)
        with pytest.raises(ConfigurationError):
            matrix.get(2, 0)
        with pytest.raises(ConfigurationError):
            matrix.set(0, -1, 1.0)

    def test_invalid_dimension(self):
        with pytest.raises(ConfigurationError):
            SparseMatrix(0)


class TestRowColumn:
    def test_row_extraction(self):
        matrix = SparseMatrix(4)
        matrix.set(1, 0, 2.0)
        matrix.set(1, 3, 4.0)
        matrix.set(2, 0, 9.0)
        assert matrix.row(1) == {0: 2.0, 3: 4.0}
        assert matrix.row(0) == {}

    def test_column_extraction(self):
        matrix = SparseMatrix(4)
        matrix.set(0, 2, 1.0)
        matrix.set(3, 2, 5.0)
        matrix.set(3, 1, 7.0)
        assert matrix.column(2) == {0: 1.0, 3: 5.0}

    def test_column_index_tracks_erasure(self):
        matrix = SparseMatrix(3)
        matrix.set(0, 1, 1.0)
        matrix.set(0, 1, 0.0)
        assert matrix.column(1) == {}

    def test_row_returns_copy(self):
        matrix = SparseMatrix(3)
        matrix.set(0, 0, 1.0)
        row = matrix.row(0)
        row[0] = 99.0
        assert matrix.get(0, 0) == 1.0

    def test_row_dot(self):
        matrix = SparseMatrix(4)
        matrix.set(0, 1, 2.0)
        matrix.set(0, 2, 3.0)
        assert matrix.row_dot(0, {1: 10.0, 2: 1.0}) == pytest.approx(23.0)
        assert matrix.row_dot(3, {0: 1.0}) == 0.0

    def test_row_dot_sparse_vector_longer(self):
        matrix = SparseMatrix(4)
        matrix.set(0, 1, 2.0)
        vector = {i: 1.0 for i in range(4)}
        assert matrix.row_dot(0, vector) == pytest.approx(2.0)


class TestRankOneUpdate:
    def test_matches_dense_outer_product(self):
        matrix = SparseMatrix.identity(4, scale=1.0)
        col = {0: 2.0, 2: 1.0}
        row = {1: 3.0, 3: -1.0}
        matrix.rank_one_update(col, row, scale=0.5)
        dense = np.eye(4)
        col_vec = np.zeros(4)
        row_vec = np.zeros(4)
        col_vec[[0, 2]] = [2.0, 1.0]
        row_vec[[1, 3]] = [3.0, -1.0]
        dense += 0.5 * np.outer(col_vec, row_vec)
        assert np.allclose(matrix.to_dense(), dense)

    def test_zero_scale_noop(self):
        matrix = SparseMatrix.identity(3)
        matrix.rank_one_update({0: 1.0}, {1: 1.0}, scale=0.0)
        assert matrix.nnz == 3

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),
        st.data(),
    )
    def test_rank_one_property(self, dim, data):
        entries = data.draw(
            st.dictionaries(
                st.tuples(
                    st.integers(0, dim - 1), st.integers(0, dim - 1)
                ),
                st.floats(-5, 5, allow_nan=False),
                max_size=8,
            )
        )
        matrix = SparseMatrix(dim)
        dense = np.zeros((dim, dim))
        for (i, j), value in entries.items():
            matrix.set(i, j, value)
            dense[i, j] = value if abs(value) > 1e-14 else 0.0
        col = data.draw(
            st.dictionaries(
                st.integers(0, dim - 1), st.floats(-3, 3, allow_nan=False),
                max_size=dim,
            )
        )
        row = data.draw(
            st.dictionaries(
                st.integers(0, dim - 1), st.floats(-3, 3, allow_nan=False),
                max_size=dim,
            )
        )
        scale = data.draw(st.floats(-2, 2, allow_nan=False))
        matrix.rank_one_update(col, row, scale)
        col_vec = np.zeros(dim)
        row_vec = np.zeros(dim)
        for i, v in col.items():
            col_vec[i] = v
        for j, v in row.items():
            row_vec[j] = v
        dense += scale * np.outer(col_vec, row_vec)
        assert np.allclose(matrix.to_dense(), dense, atol=1e-9)


class TestMisc:
    def test_items_iteration(self):
        matrix = SparseMatrix(3)
        matrix.set(0, 1, 2.0)
        matrix.set(2, 2, 4.0)
        assert sorted(matrix.items()) == [(0, 1, 2.0), (2, 2, 4.0)]

    def test_copy_independent(self):
        matrix = SparseMatrix.identity(3)
        clone = matrix.copy()
        clone.set(0, 0, 99.0)
        assert matrix.get(0, 0) == 1.0

    def test_to_dense_shape(self):
        assert SparseMatrix(5).to_dense().shape == (5, 5)
