"""Tests for Megh decision tracing."""

import pytest

from repro.core.agent import MeghScheduler
from repro.core.trace import DecisionRecord, DecisionTrace
from repro.harness.builders import build_planetlab_simulation


@pytest.fixture
def traced_run():
    sim = build_planetlab_simulation(num_pms=6, num_vms=8, num_steps=40)
    trace = DecisionTrace()
    agent = MeghScheduler(
        num_vms=8,
        num_pms=6,
        beta=0.70,
        seed=0,
        trace=trace,
    )
    result = sim.run(agent)
    return trace, agent, result


class TestTraceCollection:
    def test_one_record_per_step(self, traced_run):
        trace, _, result = traced_run
        assert len(trace) == len(result.metrics.steps)

    def test_steps_sequential(self, traced_run):
        trace, _, _ = traced_run
        assert [r.step for r in trace.records] == list(range(40))

    def test_temperature_decays(self, traced_run):
        trace, _, _ = traced_run
        temps = trace.temperatures
        assert temps[0] > temps[-1]

    def test_first_step_has_no_cost_signal(self, traced_run):
        trace, _, _ = traced_run
        assert trace.records[0].normalized_cost is None
        # Later steps carry the normalized learning signal.
        assert any(
            r.normalized_cost is not None for r in trace.records[1:]
        )

    def test_chosen_matches_metrics(self, traced_run):
        trace, _, result = traced_run
        assert sum(trace.migrations_per_step) == result.total_migrations

    def test_q_table_nonzeros_monotone(self, traced_run):
        trace, _, _ = traced_run
        nnz = [r.q_table_nonzeros for r in trace.records]
        assert all(b >= a for a, b in zip(nnz, nnz[1:]))

    def test_chosen_q_parallel_to_chosen(self, traced_run):
        trace, _, _ = traced_run
        for record in trace.records:
            assert len(record.chosen) == len(record.chosen_q)

    def test_vm_move_counts(self, traced_run):
        trace, _, result = traced_run
        counts = trace.vm_move_counts()
        assert sum(counts.values()) == result.total_migrations
        assert all(0 <= vm_id < 8 for vm_id in counts)

    def test_no_trace_by_default(self):
        sim = build_planetlab_simulation(num_pms=4, num_vms=5, num_steps=10)
        agent = MeghScheduler.from_simulation(sim)
        sim.run(agent)
        assert agent.trace is None


class TestExplorationPhase:
    def test_short_trace(self):
        trace = DecisionTrace()
        assert trace.exploration_phase_end() == 0

    def test_settling_series(self):
        trace = DecisionTrace()
        # 30 busy steps then 30 quiet ones.
        for step in range(60):
            moves = ((0, 1),) if step < 30 else ()
            trace.append(
                DecisionRecord(
                    step=step,
                    temperature=1.0,
                    normalized_cost=0.0,
                    num_candidate_vms=1,
                    num_candidate_actions=2,
                    chosen=moves,
                    chosen_q=(0.0,) * len(moves),
                    q_table_nonzeros=10,
                )
            )
        end = trace.exploration_phase_end(quiet_steps=10)
        assert 20 <= end <= 35
