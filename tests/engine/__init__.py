"""Tests for the execution engine (:mod:`repro.engine`)."""
