"""Fault-injecting scheduler constructors for engine tests.

These are referenced by ``module:attr`` dotted paths (the registry's
escape hatch), so worker processes can import them by name.  Each
returns a scheduler whose ``decide`` misbehaves in a specific way,
exercising one failure path of the pool.
"""

from __future__ import annotations

import os
import signal
import time


class _RaisingScheduler:
    """Scheduler that raises deterministically on its first decision."""

    name = "raising"

    def decide(self, observation):
        raise RuntimeError("injected failure")


class _HangingScheduler:
    """Scheduler that sleeps far past any reasonable per-job timeout."""

    name = "hanging"

    def __init__(self, sleep_seconds: float):
        self.sleep_seconds = sleep_seconds

    def decide(self, observation):
        time.sleep(self.sleep_seconds)
        raise RuntimeError("should have been killed before waking")


class _SuicidalScheduler:
    """Scheduler that SIGKILLs its own process mid-job (simulated OOM)."""

    name = "suicidal"

    def decide(self, observation):
        os.kill(os.getpid(), signal.SIGKILL)


def make_raising(simulation):
    """Constructor for a job that fails deterministically."""
    del simulation
    return _RaisingScheduler()


def make_hanging(simulation, sleep_seconds: float = 60.0):
    """Constructor for a job that exceeds any small timeout."""
    del simulation
    return _HangingScheduler(sleep_seconds)


def make_crashing(simulation):
    """Constructor for a job whose worker dies without replying."""
    del simulation
    return _SuicidalScheduler()
