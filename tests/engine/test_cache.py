"""Tests for the content-addressed result cache."""

import pytest

from repro.baselines.noop import NoMigrationScheduler
from repro.engine.cache import CacheStats, ResultCache
from repro.harness.builders import build_planetlab_simulation

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


@pytest.fixture(scope="module")
def result():
    simulation = build_planetlab_simulation(
        num_pms=3, num_vms=4, num_steps=8, seed=0
    )
    return simulation.run(NoMigrationScheduler())


class TestResultCache:
    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(KEY) is None
        assert cache.stats() == CacheStats(hits=0, misses=1, stores=0)

    def test_put_then_get_hit(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, result)
        assert path.exists()
        assert path.parent.name == KEY[:2]
        cached = cache.get(KEY)
        assert cached is not None
        assert cached.to_dict() == result.to_dict()
        assert cache.stats() == CacheStats(hits=1, misses=0, stores=1)

    def test_entries_shared_across_instances(self, tmp_path, result):
        ResultCache(tmp_path).put(KEY, result)
        fresh = ResultCache(tmp_path)
        assert fresh.get(KEY) is not None
        assert fresh.hits == 1 and fresh.misses == 0

    def test_corrupt_entry_is_miss_and_evicted(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put(KEY, result)
        cache.path_for(KEY).write_text("{truncated", encoding="utf-8")
        assert cache.get(KEY) is None
        assert cache.misses == 1
        assert not cache.contains(KEY)

    def test_contains_without_counters(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        assert not cache.contains(KEY)
        cache.put(KEY, result)
        assert cache.contains(KEY)
        assert cache.stats().lookups == 0

    def test_clear(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put(KEY, result)
        cache.put(OTHER, result)
        assert cache.clear() == 2
        assert not cache.contains(KEY)
        assert not cache.contains(OTHER)

    def test_stats_str(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get(KEY)
        assert "1 misses" in str(cache.stats())
