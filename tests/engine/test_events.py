"""Tests for the engine's event journal."""

import json

from repro.engine import events as ev
from repro.engine.events import EngineEvent, EventJournal, read_journal


class TestEventJournal:
    def test_sequence_numbers_monotonic(self):
        journal = EventJournal()
        first = journal.emit(ev.QUEUED, "k1")
        second = journal.emit(ev.STARTED, "k1", attempt=1)
        third = journal.emit(ev.FINISHED, "k1", attempt=1, duration_seconds=0.5)
        assert (first.seq, second.seq, third.seq) == (0, 1, 2)
        assert [event.kind for event in journal.events] == [
            ev.QUEUED, ev.STARTED, ev.FINISHED,
        ]

    def test_counts_include_zero_kinds(self):
        journal = EventJournal()
        journal.emit(ev.QUEUED, "k")
        counts = journal.counts()
        assert counts[ev.QUEUED] == 1
        assert counts[ev.FAILED] == 0
        assert set(ev.ALL_KINDS) <= set(counts)
        assert journal.count(ev.QUEUED) == 1

    def test_jsonl_mirror_and_read_back(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            journal.emit(ev.QUEUED, "k1", tag="a")
            journal.emit(ev.FAILED, "k1", attempt=2, detail="boom")
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == ev.QUEUED
        events = read_journal(path)
        assert events == journal.events
        assert events[1].detail == "boom"
        assert events[1].attempt == 2

    def test_event_json_is_one_line(self):
        event = EngineEvent(seq=0, kind=ev.QUEUED, job="k", tag="t")
        text = event.to_json()
        assert "\n" not in text
        assert json.loads(text)["job"] == "k"

    def test_events_survive_close(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl")
        journal.emit(ev.QUEUED, "k")
        journal.close()
        assert journal.count(ev.QUEUED) == 1
        journal.close()  # idempotent
