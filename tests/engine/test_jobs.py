"""Tests for job specs, canonicalization, and content hashing."""

import pytest

from repro.engine.jobs import (
    CODE_VERSION,
    SALT_ENV_VAR,
    JobSpec,
    content_hash,
    engine_salt,
    freeze,
    freeze_params,
    thaw,
    thaw_params,
)
from repro.engine.registry import (
    BuilderSpec,
    SchedulerSpec,
    job_spec,
    resolve_builder,
    resolve_scheduler,
)
from repro.errors import ConfigurationError


class TestFreezeThaw:
    def test_scalars_pass_through(self):
        for value in (None, True, 0, 1.5, "x"):
            assert freeze(value) == value
            assert thaw(freeze(value)) == value

    def test_nested_containers_round_trip(self):
        value = {"b": [1, 2, {"c": 3.0}], "a": (4, 5), "d": None}
        thawed = thaw(freeze(value))
        assert thawed == {"b": [1, 2, {"c": 3.0}], "a": [4, 5], "d": None}

    def test_dict_order_canonicalized(self):
        assert freeze({"a": 1, "b": 2}) == freeze({"b": 2, "a": 1})

    def test_numpy_scalars_collapse(self):
        np = pytest.importorskip("numpy")
        assert freeze(np.float64(0.25)) == 0.25
        assert freeze(np.int64(7)) == 7

    def test_unfreezable_rejected(self):
        with pytest.raises(ConfigurationError):
            freeze(object())

    def test_params_round_trip(self):
        params = {"beta": 0.8, "grid": [1, 2], "cfg": {"x": 1}}
        assert thaw_params(freeze_params(params)) == params
        assert freeze_params(None) == ()
        assert thaw_params(()) == {}


class TestJobSpec:
    def test_create_requires_names(self):
        with pytest.raises(ConfigurationError):
            JobSpec.create("", "megh", seed=0)
        with pytest.raises(ConfigurationError):
            JobSpec.create("planetlab", "", seed=0)

    def test_param_order_insensitive(self):
        first = JobSpec.create(
            "planetlab", "megh", seed=0,
            builder_params={"num_pms": 4, "num_vms": 6},
        )
        second = JobSpec.create(
            "planetlab", "megh", seed=0,
            builder_params={"num_vms": 6, "num_pms": 4},
        )
        assert first == second
        assert content_hash(first) == content_hash(second)

    def test_default_tag(self):
        spec = JobSpec.create("planetlab", "megh", seed=3)
        assert spec.tag == "megh@seed3"

    def test_kwargs_thaw(self):
        spec = JobSpec.create(
            "planetlab", "megh", seed=0,
            scheduler_params={"config": {"epsilon": 0.1}},
        )
        assert spec.scheduler_kwargs() == {"config": {"epsilon": 0.1}}


class TestContentHash:
    BASE = dict(builder="planetlab", scheduler="megh", seed=0, num_steps=50)

    def _hash(self, **overrides):
        return content_hash(JobSpec.create(**{**self.BASE, **overrides}))

    def test_stable(self):
        assert self._hash() == self._hash()
        assert len(self._hash()) == 64

    def test_sensitive_to_every_computation_field(self):
        base = self._hash()
        assert self._hash(seed=1) != base
        assert self._hash(builder="google") != base
        assert self._hash(scheduler="madvm") != base
        assert self._hash(num_steps=51) != base
        assert self._hash(builder_params={"num_pms": 8}) != base
        assert self._hash(scheduler_params={"seed": 1}) != base

    def test_tag_excluded(self):
        assert self._hash(tag="a") == self._hash(tag="b")

    def test_salt_env_override(self, monkeypatch):
        base = self._hash()
        monkeypatch.setenv(SALT_ENV_VAR, "other-salt")
        assert engine_salt() == "other-salt"
        assert self._hash() != base
        monkeypatch.delenv(SALT_ENV_VAR)
        assert engine_salt() == CODE_VERSION
        assert self._hash() == base


class TestRegistry:
    def test_known_names_resolve(self):
        assert callable(resolve_builder("planetlab"))
        assert callable(resolve_scheduler("megh"))

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_builder("no-such-builder")
        with pytest.raises(ConfigurationError):
            resolve_scheduler("no-such-scheduler")

    def test_dotted_path_resolution(self):
        fn = resolve_scheduler("tests.engine.faulty:make_raising")
        assert fn.__name__ == "make_raising"

    def test_dotted_path_errors(self):
        with pytest.raises(ConfigurationError):
            resolve_scheduler("tests.engine.no_such_module:make_raising")
        with pytest.raises(ConfigurationError):
            resolve_scheduler("tests.engine.faulty:no_such_attr")

    def test_spec_callables_carry_structure(self):
        builder = BuilderSpec.create("planetlab", num_pms=4, num_vms=6)
        factory = SchedulerSpec.create("noop")
        spec = job_spec(builder, factory, seed=2, num_steps=10, tag="t")
        assert spec.builder == "planetlab"
        assert spec.scheduler == "noop"
        assert spec.seed == 2
        assert spec.builder_kwargs() == {"num_pms": 4, "num_vms": 6}
        assert spec.tag == "t"

    def test_builder_spec_builds_simulation(self):
        builder = BuilderSpec.create(
            "planetlab", num_pms=4, num_vms=6, num_steps=10
        )
        simulation = builder(0)
        assert simulation.datacenter.num_pms == 4
