"""End-to-end: run_multi_seed through the engine vs the legacy loop.

The tentpole guarantee: routing the seed × scheduler matrix through the
execution engine produces aggregates bit-identical to the serial
harness for every simulated metric, and a warm cache replays the whole
matrix without executing a single simulation.
"""

import pytest

from repro.engine import events as ev
from repro.engine.pool import ExecutionEngine
from repro.engine.registry import BuilderSpec, SchedulerSpec
from repro.harness.multiseed import run_multi_seed

SEEDS = [0, 1, 2]


@pytest.fixture(scope="module")
def builder():
    return BuilderSpec.create(
        "planetlab", num_pms=4, num_vms=6, num_steps=15
    )


@pytest.fixture(scope="module")
def factories():
    return {
        "NoMig": SchedulerSpec.create("noop"),
        "Random": SchedulerSpec.create(
            "random", migrations_per_step=1, seed=0
        ),
    }


def assert_aggregates_identical(legacy, engine_aggregates):
    assert list(legacy) == list(engine_aggregates)
    for name in legacy:
        a, b = legacy[name], engine_aggregates[name]
        assert a.total_cost_usd.values == b.total_cost_usd.values
        assert a.total_migrations.values == b.total_migrations.values
        assert a.mean_active_hosts.values == b.mean_active_hosts.values
        assert a.wins == b.wins


class TestEngineEquivalence:
    def test_engine_matches_legacy_loop(self, builder, factories):
        legacy = run_multi_seed(builder, factories, seeds=SEEDS)
        engine = ExecutionEngine(jobs=1)
        via_engine = run_multi_seed(
            builder, factories, seeds=SEEDS, engine=engine
        )
        assert_aggregates_identical(legacy, via_engine)
        assert engine.journal.count(ev.FINISHED) == len(SEEDS) * len(factories)

    def test_warm_cache_executes_nothing(self, builder, factories, tmp_path):
        cold = ExecutionEngine(jobs=1, cache_dir=tmp_path)
        first = run_multi_seed(builder, factories, seeds=SEEDS, engine=cold)
        expected_jobs = len(SEEDS) * len(factories)
        assert cold.cache.stats().stores == expected_jobs

        warm = ExecutionEngine(jobs=1, cache_dir=tmp_path)
        second = run_multi_seed(builder, factories, seeds=SEEDS, engine=warm)
        # Zero simulations executed: every job replayed from the cache.
        assert warm.journal.count(ev.STARTED) == 0
        assert warm.journal.count(ev.FINISHED) == 0
        assert warm.journal.count(ev.CACHE_HIT) == expected_jobs
        assert warm.cache.stats().hits == expected_jobs
        assert warm.cache.stats().misses == 0
        assert_aggregates_identical(first, second)
        # Cached replays are bit-exact down to the measured timings.
        for name in first:
            assert (
                first[name].mean_scheduler_ms.values
                == second[name].mean_scheduler_ms.values
            )

    def test_journal_file_written(self, builder, factories, tmp_path):
        path = tmp_path / "journal.jsonl"
        engine = ExecutionEngine(jobs=1, journal_path=path)
        run_multi_seed(builder, factories, seeds=[0], engine=engine)
        engine.close()
        from repro.engine.events import read_journal

        events = read_journal(path)
        assert [e.kind for e in events[:2]] == [ev.QUEUED, ev.QUEUED]
        assert events[-1].kind == ev.FINISHED
