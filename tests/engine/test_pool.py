"""Tests for the worker pool: determinism, ordering, and fault isolation.

The parallel tests spawn real worker processes, so the simulations are
kept tiny (a few PMs, a handful of steps) and the pool small (2 workers).
"""

import pytest

from repro.engine import events as ev
from repro.engine.cache import ResultCache
from repro.engine.events import EventJournal
from repro.engine.jobs import JobSpec, content_hash
from repro.engine.pool import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    ExecutionEngine,
    require_ok,
    run_jobs,
)
from repro.errors import ConfigurationError, EngineError

BUILDER_PARAMS = {"num_pms": 4, "num_vms": 6, "num_steps": 10}


def good_spec(seed, scheduler="noop", **scheduler_params):
    return JobSpec.create(
        "planetlab",
        scheduler,
        seed=seed,
        num_steps=10,
        builder_params=BUILDER_PARAMS,
        scheduler_params=scheduler_params,
    )


def faulty_spec(constructor, seed=0, **scheduler_params):
    return JobSpec.create(
        "planetlab",
        f"tests.engine.faulty:{constructor}",
        seed=seed,
        num_steps=10,
        builder_params=BUILDER_PARAMS,
        scheduler_params=scheduler_params,
    )


class TestValidation:
    def test_bad_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            run_jobs([], jobs=0)
        with pytest.raises(ConfigurationError):
            run_jobs([], retries=-1)
        with pytest.raises(ConfigurationError):
            run_jobs([], timeout_seconds=0)
        with pytest.raises(ConfigurationError):
            ExecutionEngine(jobs=0)


class TestSerialExecution:
    def test_results_in_submission_order(self):
        specs = [good_spec(seed) for seed in (3, 1, 2)]
        results = run_jobs(specs, jobs=1)
        assert [jr.spec.seed for jr in results] == [3, 1, 2]
        assert all(jr.ok for jr in results)
        assert all(jr.result.scheduler_name == "NoMigration" for jr in results)

    def test_failed_job_does_not_poison_siblings(self):
        journal = EventJournal()
        specs = [good_spec(0), faulty_spec("make_raising"), good_spec(1)]
        results = run_jobs(specs, jobs=1, journal=journal)
        assert [jr.status for jr in results] == [
            STATUS_OK, STATUS_FAILED, STATUS_OK,
        ]
        assert "injected failure" in results[1].error
        assert journal.count(ev.FAILED) == 1
        assert journal.count(ev.FINISHED) == 2

    def test_require_ok_raises_on_failure(self):
        results = run_jobs([faulty_spec("make_raising")], jobs=1)
        with pytest.raises(EngineError, match="1 of 1 jobs failed"):
            require_ok(results)

    def test_require_ok_unwraps_success(self):
        results = run_jobs([good_spec(0)], jobs=1)
        unwrapped = require_ok(results)
        assert unwrapped[0].scheduler_name == "NoMigration"


class TestParallelExecution:
    def test_parallel_matches_serial_bit_for_bit(self):
        specs = [
            good_spec(seed, scheduler=scheduler)
            for seed in (0, 1)
            for scheduler in ("noop", "random")
        ]
        serial = run_jobs(specs, jobs=1)
        parallel = run_jobs(specs, jobs=2)
        assert [jr.spec for jr in parallel] == specs
        for s, p in zip(serial, parallel):
            assert s.ok and p.ok
            assert s.result.total_cost_usd == p.result.total_cost_usd
            assert s.result.total_migrations == p.result.total_migrations
            assert s.result.mean_active_hosts == p.result.mean_active_hosts
            assert (
                s.result.metrics.per_step_cost_series()
                == p.result.metrics.per_step_cost_series()
            )

    def test_raising_job_fails_alone(self, tmp_path):
        cache = ResultCache(tmp_path)
        journal = EventJournal()
        specs = [good_spec(0), faulty_spec("make_raising"), good_spec(1)]
        results = run_jobs(
            specs, jobs=2, cache=cache, journal=journal, retries=0
        )
        assert [jr.status for jr in results] == [
            STATUS_OK, STATUS_FAILED, STATUS_OK,
        ]
        assert "injected failure" in results[1].error
        # Only the successes were cached; the failure never poisons it.
        assert cache.contains(content_hash(specs[0]))
        assert not cache.contains(content_hash(specs[1]))
        assert cache.contains(content_hash(specs[2]))
        assert journal.count(ev.FAILED) == 1

    def test_timeout_kills_worker_and_records(self):
        journal = EventJournal()
        specs = [
            faulty_spec("make_hanging", sleep_seconds=60.0),
            good_spec(0),
        ]
        results = run_jobs(
            specs, jobs=2, journal=journal, timeout_seconds=3.0, retries=0
        )
        assert results[0].status == STATUS_TIMEOUT
        assert "timeout" in results[0].error
        assert results[1].status == STATUS_OK
        assert journal.count(ev.TIMEOUT) == 1

    def test_killed_worker_retried_then_crashed(self):
        journal = EventJournal()
        specs = [faulty_spec("make_crashing"), good_spec(0)]
        results = run_jobs(specs, jobs=2, journal=journal, retries=1)
        assert results[0].status == STATUS_CRASHED
        assert results[0].attempts == 2  # original + one retry
        assert "worker died" in results[0].error
        assert results[1].status == STATUS_OK
        assert journal.count(ev.RETRIED) == 1

    def test_killed_worker_no_retries(self):
        results = run_jobs([faulty_spec("make_crashing")], jobs=2, retries=0)
        assert results[0].status == STATUS_CRASHED
        assert results[0].attempts == 1


class TestExecutionEngineFacade:
    def test_plain_callables_rejected_when_parallel(self):
        engine = ExecutionEngine(jobs=2)
        with pytest.raises(ConfigurationError, match="registry-backed"):
            engine.run_matrix(
                lambda seed: None, {"x": lambda sim: None}, [0]
            )

    def test_plain_callables_rejected_with_cache(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache_dir=tmp_path)
        with pytest.raises(ConfigurationError, match="registry-backed"):
            engine.run_matrix(
                lambda seed: None, {"x": lambda sim: None}, [0]
            )

    def test_summary_mentions_counters(self):
        engine = ExecutionEngine(jobs=1)
        assert "executed=0" in engine.summary()
        assert "jobs=1" in engine.summary()
