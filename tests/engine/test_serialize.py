"""Exact round-trip tests for SimulationResult serialization."""

import pytest

from repro.baselines.random_policy import RandomScheduler
from repro.engine.serialize import (
    RESULT_SCHEMA_VERSION,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from repro.errors import SerializationError
from repro.harness.builders import build_planetlab_simulation


@pytest.fixture(scope="module")
def result():
    simulation = build_planetlab_simulation(
        num_pms=4, num_vms=6, num_steps=12, seed=0
    )
    # RandomScheduler triggers migrations, SLA accrual, and host sleeps,
    # populating every serialized substructure.
    return simulation.run(RandomScheduler(migrations_per_step=1, seed=0))


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self, result):
        payload = result_to_dict(result)
        rebuilt = result_from_dict(payload)
        assert result_to_dict(rebuilt) == payload

    def test_json_round_trip_is_exact(self, result):
        text = result_to_json(result)
        rebuilt = result_from_json(text)
        assert result_to_json(rebuilt) == text

    def test_scalar_metrics_bit_identical(self, result):
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.scheduler_name == result.scheduler_name
        assert rebuilt.total_cost_usd == result.total_cost_usd
        assert rebuilt.total_migrations == result.total_migrations
        assert rebuilt.mean_active_hosts == result.mean_active_hosts
        assert rebuilt.mean_scheduler_ms == result.mean_scheduler_ms
        assert rebuilt.num_pms == result.num_pms
        assert rebuilt.num_vms == result.num_vms

    def test_series_bit_identical(self, result):
        rebuilt = result_from_dict(result_to_dict(result))
        assert (
            rebuilt.metrics.per_step_cost_series()
            == result.metrics.per_step_cost_series()
        )
        assert (
            rebuilt.metrics.active_host_series()
            == result.metrics.active_host_series()
        )

    def test_sla_state_preserved(self, result):
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.sla.beta == result.sla.beta
        assert rebuilt.sla.overall_sla_violation() == (
            result.sla.overall_sla_violation()
        )
        for vm_id, record in result.sla.vms.items():
            assert rebuilt.sla.vms[vm_id]._window == record._window

    def test_config_preserved(self, result):
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.config == result.config

    def test_result_methods_delegate(self, result):
        # The SimulationResult.to_dict/from_dict satellite API.
        payload = result.to_dict()
        rebuilt = type(result).from_dict(payload)
        assert rebuilt.to_dict() == payload


class TestErrors:
    def test_schema_version_checked(self, result):
        payload = result_to_dict(result)
        payload["schema"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(SerializationError):
            result_from_dict(payload)

    def test_malformed_payload_rejected(self):
        with pytest.raises(SerializationError):
            result_from_dict({"schema": RESULT_SCHEMA_VERSION})

    def test_malformed_json_rejected(self):
        with pytest.raises(SerializationError):
            result_from_json("{not json")
