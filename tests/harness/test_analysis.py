"""Tests for the paper-style claims analysis."""

import pytest

from repro.baselines.mmt.scheduler import MMTScheduler
from repro.baselines.noop import NoMigrationScheduler
from repro.core.agent import MeghScheduler
from repro.errors import ConfigurationError
from repro.harness.analysis import ComparativeClaims, claims_report, compare
from repro.harness.builders import build_planetlab_simulation
from repro.harness.runner import run_comparison


@pytest.fixture(scope="module")
def results():
    sim = build_planetlab_simulation(num_pms=8, num_vms=11, num_steps=60, seed=0)
    return run_comparison(
        sim,
        {
            "THR-MMT": lambda s: MMTScheduler("THR"),
            "Megh": lambda s: MeghScheduler.from_simulation(s, seed=0),
            "NoMig": lambda s: NoMigrationScheduler(),
        },
    )


class TestCompare:
    def test_cost_reduction_formula(self, results):
        claims = compare(results, "Megh", "THR-MMT")
        expected = (
            100.0
            * (
                results["THR-MMT"].total_cost_usd
                - results["Megh"].total_cost_usd
            )
            / results["THR-MMT"].total_cost_usd
        )
        assert claims.cost_reduction_percent == pytest.approx(expected)

    def test_migration_ratio(self, results):
        claims = compare(results, "Megh", "THR-MMT")
        assert claims.migration_ratio == pytest.approx(
            results["THR-MMT"].total_migrations
            / max(results["Megh"].total_migrations, 1)
        )

    def test_zero_migration_reference_safe(self, results):
        claims = compare(results, "NoMig", "THR-MMT")
        # NoMig has zero migrations; division guards against /0.
        assert claims.migration_ratio >= 0.0

    def test_unknown_algorithm(self, results):
        with pytest.raises(ConfigurationError):
            compare(results, "Megh", "nope")

    def test_sentences_phrasing(self, results):
        claims = compare(results, "Megh", "THR-MMT")
        text = "\n".join(claims.sentences())
        assert "reduces the expenditure by" in text or (
            "increases the expenditure by" in text
        )
        assert "times that of Megh" in text
        assert "converges in" in text

    def test_slowdown_phrasing(self):
        claims = ComparativeClaims(
            subject="A",
            reference="B",
            cost_reduction_percent=-5.0,
            migration_ratio=2.0,
            speedup=0.5,
            active_host_ratio=1.0,
            subject_convergence_step=10,
            reference_convergence_step=20,
        )
        text = "\n".join(claims.sentences())
        assert "increases the expenditure" in text
        assert "slower than" in text


class TestReport:
    def test_covers_every_reference(self, results):
        report = claims_report(results, subject="Megh")
        assert "THR-MMT" in report
        assert "NoMig" in report
        assert "Megh" in report

    def test_unknown_subject(self, results):
        with pytest.raises(ConfigurationError):
            claims_report(results, subject="nope")
