"""Tests for the terminal plotting helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.ascii_plot import (
    SPARK_LEVELS,
    labelled_sparklines,
    line_chart,
    sparkline,
)


class TestSparkline:
    def test_monotone_series_monotone_levels(self):
        spark = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        levels = [SPARK_LEVELS.index(c) for c in spark]
        assert levels == sorted(levels)
        assert levels[0] == 0
        assert levels[-1] == len(SPARK_LEVELS) - 1

    def test_constant_series(self):
        assert sparkline([3.0, 3.0, 3.0]) == SPARK_LEVELS[0] * 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_downsampling(self):
        spark = sparkline(list(range(100)), width=10)
        assert len(spark) == 10

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 2.0], width=10)) == 2

    def test_width_one(self):
        assert len(sparkline([1.0, 5.0, 2.0], width=1)) == 1


class TestLineChart:
    def test_contains_axes_and_legend(self):
        chart = line_chart({"cost": [1, 2, 3, 2, 1]}, width=20, height=5)
        assert "┤" in chart
        assert "└" in chart
        assert "* cost" in chart

    def test_title_included(self):
        chart = line_chart({"a": [1, 2]}, title="Figure X", width=20, height=5)
        assert chart.startswith("Figure X")

    def test_multiple_series_distinct_markers(self):
        chart = line_chart(
            {"a": [1, 2, 3], "b": [3, 2, 1]}, width=20, height=5
        )
        assert "* a" in chart
        assert "+ b" in chart

    def test_min_max_labels(self):
        chart = line_chart({"a": [0.0, 10.0]}, width=20, height=5)
        assert "10" in chart
        assert "0" in chart

    def test_empty_series(self):
        assert line_chart({"a": []}, title="t") == "t"

    def test_dimension_validation(self):
        with pytest.raises(ConfigurationError):
            line_chart({"a": [1]}, width=5, height=5)
        with pytest.raises(ConfigurationError):
            line_chart({"a": [1]}, width=20, height=2)

    def test_long_series_downsampled_to_width(self):
        chart = line_chart({"a": list(range(500))}, width=30, height=5)
        body_lines = [l for l in chart.splitlines() if "│" in l or "┤" in l]
        assert all(len(line) <= 12 + 30 for line in body_lines)


class TestLabelledSparklines:
    def test_alignment_and_ranges(self):
        text = labelled_sparklines(
            {"short": [1, 2, 3], "a-longer-name": [3, 2, 1]}, width=10
        )
        lines = text.splitlines()
        assert len(lines) == 2
        # Labels padded to the same width: sparkline starts aligned.
        assert lines[0].index(SPARK_LEVELS[0][0]) > 0
        assert "[1, 3]" in lines[0]

    def test_empty(self):
        assert labelled_sparklines({}) == ""
