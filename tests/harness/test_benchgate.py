"""``repro bench --check`` perf-regression gate.

``check_benchmarks`` is pure — synthetic fresh/committed documents
exercise floors, band scaling, schema drift, and the bit-identity hard
check without touching a benchmark.  The CLI tests feed the gate
pre-built JSON via ``--fresh-core``/``--fresh-sim`` so no subprocess
runs; the real end-to-end path (fresh ``--fast`` runs) belongs to the
warn-only CI step, not the unit suite.
"""

from __future__ import annotations

import json

from repro.cli import main as repro_main
from repro.harness.benchgate import METRIC_FLOORS, check_benchmarks, run


def _core_document(scale=1.0, oracle=True):
    return {
        "lstd": {
            "rank_one_update_ops_per_s": 1000.0 * scale,
            "q_value_cold_ops_per_s": 2000.0 * scale,
            "q_value_warm_ops_per_s": 8000.0 * scale,
            "q_values_batched_ops_per_s": 50000.0 * scale,
            "warm_over_cold_speedup": 4.0 * scale,
        },
        "decide": {
            "decide_ops_per_s": 250.0 * scale,
            "oracle_match": oracle,
        },
    }


def _sim_document(scale=1.0, identical=True):
    return {
        "sim_step": {
            "after": {"steps_per_s_non_scheduler": 300.0 * scale},
            "speedup_non_scheduler": 5.0 * scale,
            "identical_results_soa_vs_reference": identical,
        }
    }


def _service_document(scale=1.0):
    return {
        "service_churn": {
            "steps_per_s": 900.0 * scale,
            "events_per_s": 2500.0 * scale,
            "retirements_per_s": 700.0 * scale,
        }
    }


def _documents(scale=1.0, identical=True, oracle=True):
    return {
        "core": _core_document(scale, oracle=oracle),
        "sim": _sim_document(scale, identical=identical),
        "service": _service_document(scale),
    }


class TestCheckBenchmarks:
    def test_identical_documents_pass(self):
        findings, hard = check_benchmarks(_documents(), _documents())
        assert hard == []
        assert len(findings) == len(METRIC_FLOORS)
        assert all(finding.ok for finding in findings)

    def test_collapse_is_a_regression(self):
        findings, hard = check_benchmarks(
            _documents(scale=0.001), _documents()
        )
        assert hard == []
        bad = [finding for finding in findings if not finding.ok]
        assert len(bad) == len(METRIC_FLOORS)
        assert "REGRESSION" in bad[0].format()

    def test_floors_tolerate_fast_mode_scale(self):
        # Fast mode legitimately runs the batched kernel far below
        # paper-scale throughput; every committed floor must accept a
        # fresh/committed ratio well above its calibration headroom.
        findings, hard = check_benchmarks(
            _documents(scale=3.0), _documents()
        )
        assert hard == []
        assert all(finding.ok for finding in findings)

    def test_band_scales_every_floor(self):
        fresh = _documents(scale=0.09)  # below the 0.30 core floor...
        strict, _ = check_benchmarks(fresh, _documents())
        relaxed, _ = check_benchmarks(fresh, _documents(), band=0.08)
        assert any(not finding.ok for finding in strict)
        assert all(finding.ok for finding in relaxed)

    def test_bit_identity_break_is_a_hard_failure(self):
        findings, hard = check_benchmarks(
            _documents(identical=False), _documents()
        )
        assert all(finding.ok for finding in findings)
        assert len(hard) == 1
        assert "identical_results_soa_vs_reference" in hard[0]

    def test_candidate_oracle_break_is_a_hard_failure(self):
        findings, hard = check_benchmarks(
            _documents(oracle=False), _documents()
        )
        assert all(finding.ok for finding in findings)
        assert len(hard) == 1
        assert "oracle_match" in hard[0]

    def test_missing_metric_reports_schema_drift(self):
        fresh = _documents()
        del fresh["core"]["lstd"]["warm_over_cold_speedup"]
        findings, hard = check_benchmarks(fresh, _documents())
        assert any("schema drift" in message for message in hard)
        assert len(findings) == len(METRIC_FLOORS) - 1


def _write_documents(tmp_path, scale=1.0, identical=True, oracle=True):
    paths = {}
    for key, document in (
        ("committed_core", _core_document()),
        ("committed_sim", _sim_document()),
        ("committed_service", _service_document()),
        ("fresh_core", _core_document(scale, oracle=oracle)),
        ("fresh_sim", _sim_document(scale, identical=identical)),
        ("fresh_service", _service_document(scale)),
    ):
        target = tmp_path / f"{key}.json"
        target.write_text(json.dumps(document))
        paths[key] = str(target)
    return paths


def _argv(paths, *extra):
    return [
        "--check",
        "--committed-core",
        paths["committed_core"],
        "--committed-sim",
        paths["committed_sim"],
        "--committed-service",
        paths["committed_service"],
        "--fresh-core",
        paths["fresh_core"],
        "--fresh-sim",
        paths["fresh_sim"],
        "--fresh-service",
        paths["fresh_service"],
        *extra,
    ]


class TestCli:
    def test_ok_run_exits_zero(self, tmp_path, capsys):
        assert run(_argv(_write_documents(tmp_path))) == 0
        assert "bench-gate: ok" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        paths = _write_documents(tmp_path, scale=0.001)
        assert run(_argv(paths)) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "bench-gate: FAIL" in out

    def test_band_flag_relaxes_the_gate(self, tmp_path):
        paths = _write_documents(tmp_path, scale=0.09)
        assert run(_argv(paths)) == 1
        assert run(_argv(paths, "--band", "0.08")) == 0

    def test_bit_identity_break_fails_despite_good_throughput(
        self, tmp_path, capsys
    ):
        paths = _write_documents(tmp_path, identical=False)
        assert run(_argv(paths)) == 1
        assert "bit-identity" in capsys.readouterr().out

    def test_oracle_break_fails_despite_good_throughput(
        self, tmp_path, capsys
    ):
        paths = _write_documents(tmp_path, oracle=False)
        assert run(_argv(paths)) == 1
        assert "oracle_match" in capsys.readouterr().out

    def test_no_check_is_a_usage_error(self, capsys):
        assert run([]) == 2
        assert "--check" in capsys.readouterr().out

    def test_missing_committed_record_exits_two(self, tmp_path, capsys):
        paths = _write_documents(tmp_path)
        paths["committed_core"] = str(tmp_path / "absent.json")
        assert run(_argv(paths)) == 2
        assert "repro bench: error" in capsys.readouterr().out

    def test_repro_cli_dispatches_bench(self, tmp_path, capsys):
        paths = _write_documents(tmp_path)
        assert repro_main(["bench", *_argv(paths)]) == 0
        assert "bench-gate: ok" in capsys.readouterr().out
