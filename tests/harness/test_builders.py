"""Tests for the fleet and simulation builders."""

import pytest

from repro.cloudsim.power import SpecPowerModel
from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.harness.builders import (
    G4_MIPS,
    G5_MIPS,
    build_google_simulation,
    build_planetlab_simulation,
    build_simulation,
    make_planetlab_fleet,
    make_uniform_fleet,
)
from repro.workloads.synthetic import constant_workload


class TestPlanetLabFleet:
    def test_fifty_fifty_server_mix(self):
        pms, _ = make_planetlab_fleet(num_pms=10, num_vms=5)
        g4 = [pm for pm in pms if pm.mips == G4_MIPS]
        g5 = [pm for pm in pms if pm.mips == G5_MIPS]
        assert len(g4) == 5
        assert len(g5) == 5

    def test_vm_ranges(self):
        _, vms = make_planetlab_fleet(num_pms=4, num_vms=50, seed=0)
        for vm in vms:
            assert 500.0 <= vm.mips <= 2500.0
            assert 613.0 <= vm.ram_mb <= 1740.0
            assert vm.bandwidth_mbps == 100.0

    def test_deterministic(self):
        _, a = make_planetlab_fleet(4, 10, seed=1)
        _, b = make_planetlab_fleet(4, 10, seed=1)
        assert [vm.mips for vm in a] == [vm.mips for vm in b]

    def test_custom_ram_range(self):
        _, vms = make_planetlab_fleet(
            2, 20, vm_ram_range_mb=(100.0, 200.0)
        )
        assert all(100.0 <= vm.ram_mb <= 200.0 for vm in vms)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            make_planetlab_fleet(0, 1)


class TestUniformFleet:
    def test_homogeneous(self):
        pms, vms = make_uniform_fleet(3, 5, pm_mips=4000.0, vm_mips=800.0)
        assert all(pm.mips == 4000.0 for pm in pms)
        assert all(vm.mips == 800.0 for vm in vms)

    def test_custom_power_model(self):
        flat = SpecPowerModel(name="flat", watts=tuple([100.0] * 11))
        pms, _ = make_uniform_fleet(2, 2, power_model=flat)
        assert pms[0].power(0.9) == 100.0


class TestBuilders:
    def test_planetlab_simulation_ready_to_run(self):
        sim = build_planetlab_simulation(num_pms=5, num_vms=8, num_steps=10)
        assert sim.datacenter.num_pms == 5
        assert sim.datacenter.num_vms == 8
        assert all(sim.datacenter.is_placed(j) for j in range(8))

    def test_google_simulation_uses_small_vms(self):
        sim = build_google_simulation(num_pms=5, num_vms=15, num_steps=10)
        assert all(vm.ram_mb <= 1024.0 for vm in sim.datacenter.vms)

    def test_placement_policy_selected(self):
        rr = build_planetlab_simulation(
            num_pms=6, num_vms=6, num_steps=5, placement="round-robin"
        )
        hosts = {rr.datacenter.host_of(j) for j in range(6)}
        assert len(hosts) == 6

    def test_unknown_placement(self):
        workload = constant_workload(2, 5)
        with pytest.raises(ConfigurationError):
            build_simulation(workload, num_pms=2, placement="nope")

    def test_unknown_fleet_style(self):
        workload = constant_workload(2, 5)
        with pytest.raises(ConfigurationError):
            build_simulation(workload, num_pms=2, fleet_style="azure")

    def test_config_passthrough(self):
        config = SimulationConfig(num_steps=7, seed=3)
        sim = build_planetlab_simulation(
            num_pms=3, num_vms=4, num_steps=10, config=config
        )
        assert sim.config.num_steps == 7

    def test_num_vms_defaults_to_workload(self):
        workload = constant_workload(4, 5)
        sim = build_simulation(workload, num_pms=3)
        assert sim.datacenter.num_vms == 4
