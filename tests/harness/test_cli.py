"""Tests for the megh-repro command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("table2", "table3", "fig4", "fig6", "fig7", "fig8"):
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_fig7_small(self, capsys):
        assert main(["fig7", "--steps", "10"]) == 0
        out = capsys.readouterr().out
        assert "Q-table" in out
        assert "slope" in out

    def test_fig6_small(self, capsys):
        # The default grid is too slow for a unit test; patch via steps.
        assert main(["fig6", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "Megh" in out

    @pytest.mark.slow
    def test_table2_runs(self, capsys):
        assert main(["table2", "--steps", "30"]) == 0
        out = capsys.readouterr().out
        assert "Total cost (USD)" in out
        assert "Megh" in out


class TestCliClaims:
    def test_compare_with_claims(self, capsys):
        code = main(
            [
                "compare",
                "--pms", "4",
                "--vms", "6",
                "--steps", "10",
                "--claims",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Findings (Section 6.3 style)" in out
        assert "expenditure" in out
