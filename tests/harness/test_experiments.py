"""Tests for the experiment presets (scaled way down for test speed)."""

import pytest

from repro.harness.experiments import (
    ExperimentPreset,
    PRESETS,
    run_epsilon_sensitivity,
    run_megh_vs_madvm,
    run_megh_vs_thr,
    run_qtable_growth,
    run_scalability_grid,
    run_table_experiment,
    run_temperature_sensitivity,
)


def tiny(preset: ExperimentPreset, **overrides) -> ExperimentPreset:
    """Shrink a preset so a test finishes in well under a second."""
    params = dict(preset.__dict__)
    params.update(
        {"num_pms": 5, "num_vms": 8, "num_steps": 12, **overrides}
    )
    return ExperimentPreset(**params)


class TestPresets:
    def test_all_paper_experiments_present(self):
        assert set(PRESETS) == {
            "table2",
            "table3",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
        }

    def test_presets_carry_paper_scale(self):
        for preset in PRESETS.values():
            assert preset.paper_scale

    def test_build_produces_runnable_simulation(self):
        sim = tiny(PRESETS["table2"]).build()
        assert sim.datacenter.num_pms == 5

    def test_google_preset_builds_google_fleet(self):
        sim = tiny(PRESETS["table3"]).build()
        assert all(vm.ram_mb <= 1024.0 for vm in sim.datacenter.vms)


class TestTableExperiments:
    def test_table_lineup(self):
        results = run_table_experiment(tiny(PRESETS["table2"]))
        assert set(results) == {
            "THR-MMT",
            "IQR-MMT",
            "MAD-MMT",
            "LR-MMT",
            "LRR-MMT",
            "Megh",
        }

    def test_madvm_optional(self):
        results = run_table_experiment(
            tiny(PRESETS["table2"]), include_madvm=True, num_steps=8
        )
        assert "MadVM" in results

    def test_seed_override(self):
        a = run_table_experiment(tiny(PRESETS["table2"]), seed=1)
        b = run_table_experiment(tiny(PRESETS["table2"]), seed=1)
        assert a["Megh"].total_cost_usd == pytest.approx(
            b["Megh"].total_cost_usd
        )


class TestFigurePairs:
    def test_megh_vs_thr(self):
        results = run_megh_vs_thr(tiny(PRESETS["fig2"]))
        assert set(results) == {"THR-MMT", "Megh"}

    def test_megh_vs_madvm(self):
        results = run_megh_vs_madvm(tiny(PRESETS["fig4"]))
        assert set(results) == {"Megh", "MadVM"}


class TestScalability:
    def test_grid_points(self):
        points = run_scalability_grid(
            sizes=((4, 5), (8, 10)), num_steps=8
        )
        assert len(points) == 4  # 2 sizes x 2 algorithms
        assert {p.algorithm for p in points} == {"THR-MMT", "Megh"}
        assert all(p.mean_step_ms >= 0.0 for p in points)

    def test_single_algorithm(self):
        points = run_scalability_grid(
            sizes=((4, 5),), num_steps=5, algorithms=("Megh",)
        )
        assert len(points) == 1


class TestQTableGrowth:
    def test_growth_recorded(self):
        growths = run_qtable_growth(pm_counts=(4, 6), num_steps=20)
        assert [g.num_pms for g in growths] == [4, 6]
        for growth in growths:
            assert len(growth.steps) == 20
            assert growth.nonzeros[-1] >= growth.nonzeros[0]

    def test_larger_fleet_larger_table(self):
        growths = run_qtable_growth(pm_counts=(4, 8), num_steps=20)
        assert growths[1].nonzeros[0] > growths[0].nonzeros[0]


class TestSensitivity:
    def test_temperature_sweep_shape(self):
        points = run_temperature_sensitivity(
            temperatures=(1.0, 3.0),
            repeats=1,
            num_pms=4,
            num_vms=6,
            num_steps=10,
        )
        assert [p.value for p in points] == [1.0, 3.0]
        for point in points:
            assert point.parameter == "Temp0"
            assert point.p10_cost <= point.median_cost <= point.p90_cost

    def test_epsilon_sweep_shape(self):
        points = run_epsilon_sensitivity(
            epsilons=(0.01, 0.1),
            repeats=1,
            num_pms=4,
            num_vms=6,
            num_steps=10,
        )
        assert [p.value for p in points] == [0.01, 0.1]
        assert all(p.parameter == "epsilon" for p in points)
