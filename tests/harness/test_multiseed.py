"""Tests for multi-seed aggregation."""

import pytest

from repro.baselines.noop import NoMigrationScheduler
from repro.baselines.random_policy import RandomScheduler
from repro.errors import ConfigurationError
from repro.harness.builders import build_planetlab_simulation
from repro.harness.multiseed import (
    MetricSummary,
    cheapest_algorithm,
    run_multi_seed,
    render_aggregates,
)


def builder(seed: int):
    return build_planetlab_simulation(
        num_pms=4, num_vms=6, num_steps=15, seed=seed
    )


FACTORIES = {
    "NoMig": lambda sim: NoMigrationScheduler(),
    "Random": lambda sim: RandomScheduler(migrations_per_step=1, seed=0),
}


class TestMetricSummary:
    def test_mean_std(self):
        summary = MetricSummary((1.0, 2.0, 3.0))
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.min == 1.0
        assert summary.max == 3.0

    def test_single_value_zero_std(self):
        assert MetricSummary((5.0,)).std == 0.0

    def test_str_format(self):
        assert "±" in str(MetricSummary((1.0, 2.0)))


class TestRunMultiSeed:
    @pytest.fixture(scope="class")
    def aggregates(self):
        return run_multi_seed(builder, FACTORIES, seeds=[0, 1, 2])

    def test_all_algorithms_present(self, aggregates):
        assert set(aggregates) == {"NoMig", "Random"}

    def test_per_seed_values_collected(self, aggregates):
        assert len(aggregates["NoMig"].total_cost_usd.values) == 3
        assert len(aggregates["NoMig"].results) == 3

    def test_wins_sum_to_seed_count(self, aggregates):
        assert sum(a.wins for a in aggregates.values()) == 3

    def test_migrations_aggregate(self, aggregates):
        assert aggregates["NoMig"].total_migrations.mean == 0.0
        assert aggregates["Random"].total_migrations.mean > 0.0

    def test_seed_variation_reflected(self, aggregates):
        # Different seeds give different workloads, so cost varies.
        assert aggregates["NoMig"].total_cost_usd.std > 0.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            run_multi_seed(builder, FACTORIES, seeds=[])

    def test_empty_factories_rejected(self):
        with pytest.raises(ConfigurationError):
            run_multi_seed(builder, {}, seeds=[0])

    def test_equal_cost_tie_broken_by_name(self):
        # Two factories producing *identical* runs (same scheduler, same
        # seed) tie exactly on total cost; the win must go to the
        # lexicographically smaller name regardless of insertion order.
        def noop(sim):
            return NoMigrationScheduler()

        forward = run_multi_seed(
            builder, {"Alpha": noop, "Beta": noop}, seeds=[0]
        )
        reverse = run_multi_seed(
            builder, {"Beta": noop, "Alpha": noop}, seeds=[0]
        )
        assert (
            forward["Alpha"].total_cost_usd.values
            == forward["Beta"].total_cost_usd.values
        )
        assert forward["Alpha"].wins == 1 and forward["Beta"].wins == 0
        assert reverse["Alpha"].wins == 1 and reverse["Beta"].wins == 0

    def test_cheapest_algorithm_prefers_lower_cost(self, aggregates):
        results = {
            name: aggregate.results[0]
            for name, aggregate in aggregates.items()
        }
        winner = cheapest_algorithm(results)
        assert results[winner].total_cost_usd == min(
            r.total_cost_usd for r in results.values()
        )

    def test_render(self, aggregates):
        text = render_aggregates(aggregates, title="sweep")
        assert text.startswith("sweep")
        assert "NoMig" in text
        assert "±" in text
        assert "wins" in text
