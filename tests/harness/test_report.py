"""Tests for the markdown report generator and the CLI compare command."""

import pytest

from repro.baselines.noop import NoMigrationScheduler
from repro.cli import main
from repro.harness.builders import build_planetlab_simulation
from repro.harness.report import (
    comparison_report,
    markdown_table,
    save_report,
)
from repro.harness.runner import megh_factory, run_comparison


@pytest.fixture(scope="module")
def results():
    sim = build_planetlab_simulation(num_pms=4, num_vms=6, num_steps=20)
    return run_comparison(
        sim,
        {
            "NoMig": lambda s: NoMigrationScheduler(),
            "Megh": megh_factory(seed=0),
        },
    )


class TestMarkdownTable:
    def test_render(self):
        table = markdown_table([["a", "b"], ["1", "2"]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_empty(self):
        assert markdown_table([]) == ""


class TestComparisonReport:
    def test_contains_all_algorithms(self, results):
        report = comparison_report(results, title="Test Run")
        assert report.startswith("# Test Run")
        assert "| NoMig |" in report
        assert "| Megh |" in report

    def test_contains_fleet_line(self, results):
        report = comparison_report(results)
        assert "4 PMs / 6 VMs, 20 steps" in report

    def test_winner_lines(self, results):
        report = comparison_report(results)
        assert "cheapest total:" in report
        assert "cheapest converged rate:" in report
        assert "fewest migrations: **NoMig** (0)" in report

    def test_empty_results(self):
        assert "(no results)" in comparison_report({})

    def test_save_report(self, results, tmp_path):
        path = str(tmp_path / "report.md")
        save_report(results, path, title="Saved")
        content = open(path).read()
        assert content.startswith("# Saved")
        assert content.endswith("\n")


class TestCliCompare:
    def test_compare_prints_report(self, capsys):
        code = main(
            [
                "compare",
                "--pms", "4",
                "--vms", "6",
                "--steps", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Scheduler comparison" in out
        assert "Megh" in out
        assert "THR-MMT" in out

    def test_compare_writes_report_file(self, tmp_path, capsys):
        path = str(tmp_path / "out.md")
        code = main(
            [
                "compare",
                "--pms", "4",
                "--vms", "6",
                "--steps", "10",
                "--workload", "google",
                "--report", path,
            ]
        )
        assert code == 0
        assert "google" in open(path).read()
