"""Tests for the experiment runner, table rendering, and figure series."""

import pytest

from repro.baselines.noop import NoMigrationScheduler
from repro.harness.builders import build_planetlab_simulation
from repro.harness.figures import (
    downsample,
    figure_series,
    render_figure,
    render_panel,
)
from repro.harness.runner import (
    comparison_rows,
    madvm_factory,
    megh_factory,
    mmt_factories,
    paper_factories,
    run_comparison,
    run_scheduler,
)
from repro.harness.tables import comparison_table, format_table, render_comparison


@pytest.fixture(scope="module")
def small_results():
    sim = build_planetlab_simulation(num_pms=5, num_vms=7, num_steps=15)
    factories = {
        "NoMig": lambda s: NoMigrationScheduler(),
        "Megh": megh_factory(seed=0),
    }
    return run_comparison(sim, factories)


class TestRunner:
    def test_run_scheduler_resets_first(self):
        sim = build_planetlab_simulation(num_pms=4, num_vms=5, num_steps=10)
        result_a = run_scheduler(sim, NoMigrationScheduler())
        result_b = run_scheduler(sim, NoMigrationScheduler())
        assert result_a.total_cost_usd == pytest.approx(
            result_b.total_cost_usd
        )

    def test_comparison_covers_all_factories(self, small_results):
        assert set(small_results) == {"NoMig", "Megh"}

    def test_identical_replay_across_schedulers(self, small_results):
        # Both runs simulated the same steps.
        lengths = {len(r.metrics.steps) for r in small_results.values()}
        assert lengths == {15}

    def test_mmt_factories_cover_paper_variants(self):
        assert set(mmt_factories()) == {
            "THR-MMT",
            "IQR-MMT",
            "MAD-MMT",
            "LR-MMT",
            "LRR-MMT",
        }

    def test_paper_factories_include_megh(self):
        factories = paper_factories(include_madvm=True)
        assert "Megh" in factories
        assert "MadVM" in factories

    def test_factories_build_named_schedulers(self):
        sim = build_planetlab_simulation(num_pms=3, num_vms=4, num_steps=5)
        assert mmt_factories()["THR-MMT"](sim).name == "THR-MMT"
        assert megh_factory()(sim).name == "Megh"
        assert madvm_factory()(sim).name == "MadVM"

    def test_comparison_rows(self, small_results):
        rows = comparison_rows(small_results)
        assert len(rows) == 2
        assert {row["algorithm"] for row in rows} == {"NoMig", "Megh"}
        for row in rows:
            assert row["total_cost_usd"] >= 0.0


class TestTables:
    def test_grid_shape(self, small_results):
        grid = comparison_table(small_results, title="t")
        assert grid[0] == ["t"]
        assert grid[1][0] == "Algorithm"
        assert len(grid) == 6  # title + header + 4 metric rows

    def test_format_alignment(self, small_results):
        text = render_comparison(small_results, title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "Total cost (USD)" in text
        assert "Execution time (ms)" in text

    def test_format_title_only(self):
        assert format_table([["just a title"]]) == "just a title"


class TestFigures:
    def test_series_extraction(self, small_results):
        series = figure_series(small_results["Megh"])
        assert series.algorithm == "Megh"
        assert series.num_steps == 15
        assert len(series.cumulative_migrations) == 15
        assert series.cumulative_migrations == sorted(
            series.cumulative_migrations
        )

    def test_downsample_shorter_than_points(self):
        assert downsample([1.0, 2.0], points=10) == [1.0, 2.0]

    def test_downsample_keeps_endpoints(self):
        values = list(range(100))
        sampled = downsample(values, points=5)
        assert sampled[0] == 0
        assert sampled[-1] == 99
        assert len(sampled) == 5

    def test_downsample_empty(self):
        assert downsample([], points=5) == []
        assert downsample([1.0], points=0) == []

    def test_render_panel(self):
        text = render_panel("cost", {"A": [1.0, 2.0], "B": [3.0, 4.0]})
        assert "-- cost --" in text
        assert "A" in text and "B" in text

    def test_render_figure_contains_all_panels(self, small_results):
        series = [figure_series(r) for r in small_results.values()]
        text = render_figure(series, title="fig-test")
        for panel in ("(a)", "(b)", "(c)", "(d)", "convergence"):
            assert panel in text
