"""Tests for the generic Megh parameter-sweep engine."""

import pytest

from repro.config import MeghConfig
from repro.errors import ConfigurationError
from repro.harness.builders import build_planetlab_simulation
from repro.harness.sweeps import best_cell, render_sweep, sweep_megh


def builder(seed: int):
    return build_planetlab_simulation(
        num_pms=4, num_vms=6, num_steps=12, seed=seed
    )


class TestSweep:
    @pytest.fixture(scope="class")
    def cells(self):
        return sweep_megh(
            builder,
            grid={
                "gamma": [0.3, 0.7],
                "initial_temperature": [1.0, 3.0],
            },
            seeds=[0],
        )

    def test_full_grid_covered(self, cells):
        assert len(cells) == 4
        combos = {
            (cell.parameter_dict()["gamma"],
             cell.parameter_dict()["initial_temperature"])
            for cell in cells
        }
        assert combos == {(0.3, 1.0), (0.3, 3.0), (0.7, 1.0), (0.7, 3.0)}

    def test_quantiles_ordered(self, cells):
        for cell in cells:
            assert cell.p10_step_cost <= cell.median_step_cost
            assert cell.median_step_cost <= cell.p90_step_cost

    def test_repeats_recorded(self, cells):
        assert all(cell.repeats == 1 for cell in cells)

    def test_multi_seed_pooling(self):
        cells = sweep_megh(
            builder, grid={"gamma": [0.5]}, seeds=[0, 1]
        )
        assert cells[0].repeats == 2

    def test_base_config_respected(self):
        base = MeghConfig(max_migration_fraction=0.5)
        cells = sweep_megh(
            builder, grid={"gamma": [0.5]}, base_config=base, seeds=[0]
        )
        # No crash and one cell: the override path composed with base.
        assert len(cells) == 1

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_megh(builder, grid={"not_a_field": [1]})

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_megh(builder, grid={})

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_megh(builder, grid={"gamma": [0.5]}, seeds=[])


class TestHelpers:
    def test_best_cell(self):
        cells = sweep_megh(
            builder, grid={"gamma": [0.3, 0.7]}, seeds=[0]
        )
        best = best_cell(cells)
        assert best.mean_total_cost == min(
            cell.mean_total_cost for cell in cells
        )

    def test_best_cell_empty(self):
        with pytest.raises(ConfigurationError):
            best_cell([])

    def test_render(self):
        cells = sweep_megh(builder, grid={"gamma": [0.5]}, seeds=[0])
        text = render_sweep(cells, title="sweep")
        assert text.startswith("sweep")
        assert "gamma=0.5" in text
        assert "median/step=" in text
