"""Bit-determinism under contracts — the learn-as-you-go acceptance gate.

Two runs with the same seed must produce *identical* (not merely close)
metrics even with the contract layer and per-step validation enabled:
the contracts are pure observers and must never perturb the RNG streams
or the learned state.
"""

from __future__ import annotations

from repro.core.agent import MeghScheduler
from repro.core.contracts import ContractConfig
from repro.harness.builders import build_planetlab_simulation
from repro.harness.runner import run_scheduler


def _run_once(seed: int):
    simulation = build_planetlab_simulation(
        num_pms=6, num_vms=8, num_steps=40, seed=seed
    )
    scheduler = MeghScheduler.from_simulation(
        simulation,
        seed=seed,
        contracts=ContractConfig(audit_every=25),
    )
    result = run_scheduler(simulation, scheduler)
    return result, scheduler


def test_same_seed_runs_are_bit_identical_with_contracts_on():
    first, scheduler_a = _run_once(seed=42)
    second, scheduler_b = _run_once(seed=42)
    # Exact float equality on every per-step series is intentional here:
    # determinism means byte-identical trajectories, not "close".
    assert (
        first.metrics.per_step_cost_series()
        == second.metrics.per_step_cost_series()
    )
    assert (
        first.metrics.active_host_series()
        == second.metrics.active_host_series()
    )
    assert first.total_migrations == second.total_migrations
    assert first.sla.overall_sla_violation() == second.sla.overall_sla_violation()
    assert (
        scheduler_a.lstd.q_table_nonzeros
        == scheduler_b.lstd.q_table_nonzeros
    )
    # The contract layer actually ran.
    assert scheduler_a.auditor is not None
    assert scheduler_a.auditor.audits_run > 0
    assert scheduler_a.auditor.violations == []


def test_different_seeds_diverge():
    first, _ = _run_once(seed=1)
    second, _ = _run_once(seed=2)
    assert (
        first.metrics.per_step_cost_series()
        != second.metrics.per_step_cost_series()
    )
