"""End-to-end integration tests: every scheduler against shared workloads.

These tests run the complete stack (workload -> datacenter -> scheduler ->
migration engine -> SLA accounting -> cost model) and assert both
mechanical invariants (placement validity, RAM capacity) and the paper's
qualitative orderings at small scale.
"""

import pytest

from repro.baselines.madvm import MadVMScheduler
from repro.baselines.maxweight import MaxWeightScheduler
from repro.baselines.oracle import OracleScheduler
from repro.baselines.mmt.scheduler import MMTScheduler
from repro.baselines.noop import NoMigrationScheduler
from repro.baselines.qlearning import QLearningScheduler
from repro.baselines.random_policy import RandomScheduler
from repro.core.agent import MeghScheduler
from repro.harness.builders import (
    build_google_simulation,
    build_planetlab_simulation,
)
from repro.harness.runner import run_comparison, run_scheduler


@pytest.fixture(scope="module")
def planetlab_sim():
    return build_planetlab_simulation(num_pms=8, num_vms=11, num_steps=80, seed=0)


ALL_SCHEDULER_FACTORIES = {
    "NoMig": lambda sim: NoMigrationScheduler(),
    "Random": lambda sim: RandomScheduler(migrations_per_step=1, seed=0),
    "THR-MMT": lambda sim: MMTScheduler("THR"),
    "IQR-MMT": lambda sim: MMTScheduler("IQR"),
    "MAD-MMT": lambda sim: MMTScheduler("MAD"),
    "LR-MMT": lambda sim: MMTScheduler("LR"),
    "LRR-MMT": lambda sim: MMTScheduler("LRR"),
    "Megh": lambda sim: MeghScheduler.from_simulation(sim, seed=0),
    "MaxWeight": lambda sim: MaxWeightScheduler(),
    "Oracle": lambda sim: OracleScheduler.from_simulation(sim),
    "MadVM": lambda sim: MadVMScheduler.from_simulation(sim, seed=0),
    "Q-learning": lambda sim: QLearningScheduler(seed=0),
}


class TestEveryScheduler:
    @pytest.mark.parametrize("name", sorted(ALL_SCHEDULER_FACTORIES))
    def test_runs_to_completion(self, planetlab_sim, name):
        scheduler = ALL_SCHEDULER_FACTORIES[name](planetlab_sim)
        result = run_scheduler(planetlab_sim, scheduler, num_steps=30)
        assert len(result.metrics.steps) == 30
        assert result.total_cost_usd > 0.0

    @pytest.mark.parametrize("name", sorted(ALL_SCHEDULER_FACTORIES))
    def test_placement_stays_valid(self, planetlab_sim, name):
        scheduler = ALL_SCHEDULER_FACTORIES[name](planetlab_sim)
        run_scheduler(planetlab_sim, scheduler, num_steps=30)
        dc = planetlab_sim.datacenter
        # Every VM placed exactly once; RAM never oversubscribed.
        assert sorted(dc.placement()) == list(range(dc.num_vms))
        for pm in dc.pms:
            assert dc.ram_used_mb(pm.pm_id) <= pm.ram_mb + 1e-9


class TestQualitativeOrderings:
    """The paper's headline comparisons, at smoke-test scale."""

    @pytest.fixture(scope="class")
    def results(self):
        sim = build_planetlab_simulation(
            num_pms=16, num_vms=21, num_steps=1000, seed=1
        )
        return run_comparison(
            sim,
            {
                "THR-MMT": lambda s: MMTScheduler("THR"),
                "Megh": lambda s: MeghScheduler.from_simulation(s, seed=1),
                "MadVM": lambda s: MadVMScheduler.from_simulation(s, seed=1),
            },
        )

    @staticmethod
    def _steady_state_cost(result, tail=200):
        costs = result.metrics.per_step_cost_series()
        return sum(costs[-tail:]) / tail

    @pytest.mark.slow
    def test_megh_beats_thr_on_total_cost(self, results):
        assert (
            results["Megh"].total_cost_usd
            < results["THR-MMT"].total_cost_usd
        )

    @pytest.mark.slow
    def test_megh_cheapest_converged_per_step_cost(self, results):
        # Figures 2(a)/4(a): after convergence Megh's per-step cost is
        # below both contenders (its transient is exploration-priced).
        megh = self._steady_state_cost(results["Megh"])
        assert megh < self._steady_state_cost(results["THR-MMT"])
        assert megh < self._steady_state_cost(results["MadVM"])

    @pytest.mark.slow
    def test_megh_fewest_migrations(self, results):
        megh = results["Megh"].total_migrations
        assert megh < results["THR-MMT"].total_migrations
        assert megh < results["MadVM"].total_migrations

    @pytest.mark.slow
    def test_madvm_slowest_execution(self, results):
        assert (
            results["MadVM"].mean_scheduler_ms
            > results["Megh"].mean_scheduler_ms
        )

    @pytest.mark.slow
    def test_megh_respects_migration_cap(self, results):
        cap = max(1, int(0.02 * 21))
        assert all(
            s.num_migrations_started <= cap
            for s in results["Megh"].metrics.steps
        )


class TestGoogleWorkloadPath:
    def test_full_stack_on_google_trace(self):
        sim = build_google_simulation(num_pms=6, num_vms=18, num_steps=60, seed=0)
        megh = MeghScheduler.from_simulation(sim, seed=0)
        result = sim.run(megh)
        assert len(result.metrics.steps) == 60
        # Google VMs go idle between tasks; the SLA accountant must not
        # bill inactive VMs.
        assert result.sla.overall_sla_violation() < 0.5

    def test_inactive_vms_demand_nothing(self):
        sim = build_google_simulation(num_pms=4, num_vms=12, num_steps=30, seed=1)
        sim.run(NoMigrationScheduler())
        for vm in sim.datacenter.vms:
            if not vm.is_active:
                assert vm.demanded_utilization == 0.0


class TestQLearningWorkflow:
    def test_offline_training_then_deployment(self):
        sim = build_planetlab_simulation(
            num_pms=6, num_vms=8, num_steps=40, seed=2
        )
        agent = QLearningScheduler(seed=2)
        agent.train(sim, episodes=2)
        trained_table = {k: v.copy() for k, v in agent.q_table.items()}
        result = run_scheduler(sim, agent)
        assert len(result.metrics.steps) == 40
        # Deployment is greedy: the table must not change after training.
        for key, row in agent.q_table.items():
            if key in trained_table:
                assert (row == trained_table[key]).all()
