"""Property-based tests: simulator invariants under random failures."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.random_policy import RandomScheduler
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.faults import FaultInjector, FaultTolerantScheduler
from repro.cloudsim.simulation import Simulation
from repro.config import SimulationConfig
from repro.core.agent import MeghScheduler
from repro.workloads.base import ArrayWorkload

from tests.conftest import make_pm, make_vm

NUM_PMS = 4
NUM_VMS = 5
NUM_STEPS = 25


def build_sim(matrix_seed: int) -> Simulation:
    rng = np.random.default_rng(matrix_seed)
    matrix = rng.uniform(0.0, 0.6, size=(NUM_VMS, NUM_STEPS))
    pms = [make_pm(i) for i in range(NUM_PMS)]
    vms = [make_vm(j, ram_mb=512.0) for j in range(NUM_VMS)]
    dc = Datacenter(pms, vms)
    for j in range(NUM_VMS):
        dc.place(j, j % NUM_PMS)
    return Simulation(
        dc, ArrayWorkload(matrix), SimulationConfig(num_steps=NUM_STEPS)
    )


fault_params = st.tuples(
    st.integers(min_value=0, max_value=10),  # workload seed
    st.floats(min_value=0.0, max_value=0.05),  # failure probability
    st.integers(min_value=0, max_value=5),  # fault schedule seed
)


class TestInvariantsUnderFaults:
    @settings(max_examples=15, deadline=None)
    @given(fault_params)
    def test_random_scheduler_survives_random_faults(self, params):
        workload_seed, probability, fault_seed = params
        sim = build_sim(workload_seed)
        injector = FaultInjector.random_schedule(
            NUM_PMS,
            NUM_STEPS,
            failure_probability=probability,
            mean_repair_steps=4.0,
            seed=fault_seed,
        )
        wrapped = FaultTolerantScheduler(
            RandomScheduler(migrations_per_step=1, seed=0), injector
        )
        result = sim.run(wrapped)
        assert len(result.metrics.steps) == NUM_STEPS
        dc = sim.datacenter
        # RAM never oversubscribed despite crash re-placement.
        for pm in dc.pms:
            assert dc.ram_used_mb(pm.pm_id) <= pm.ram_mb + 1e-9
        # Every VM is placed or known to be stranded — never lost.
        for vm in dc.vms:
            assert dc.is_placed(vm.vm_id) or (
                vm.vm_id in injector.stranded_vm_ids
            )

    @settings(max_examples=8, deadline=None)
    @given(fault_params)
    def test_megh_survives_random_faults(self, params):
        workload_seed, probability, fault_seed = params
        sim = build_sim(workload_seed)
        injector = FaultInjector.random_schedule(
            NUM_PMS,
            NUM_STEPS,
            failure_probability=probability,
            mean_repair_steps=4.0,
            seed=fault_seed,
        )
        agent = MeghScheduler.from_simulation(sim, seed=0)
        wrapped = FaultTolerantScheduler(agent, injector)
        result = sim.run(wrapped)
        assert len(result.metrics.steps) == NUM_STEPS
        for step in result.metrics.steps:
            assert np.isfinite(step.total_cost_usd)

    @settings(max_examples=10, deadline=None)
    @given(fault_params)
    def test_no_vm_on_a_downed_host(self, params):
        workload_seed, probability, fault_seed = params
        sim = build_sim(workload_seed)
        injector = FaultInjector.random_schedule(
            NUM_PMS,
            NUM_STEPS,
            failure_probability=probability,
            mean_repair_steps=6.0,
            seed=fault_seed,
        )
        violations = []

        class Probe:
            name = "probe"

            def decide(self, observation):
                for pm_id in injector.down_pm_ids:
                    if observation.datacenter.vms_on(pm_id):
                        violations.append((observation.step, pm_id))
                return []

        sim.run(FaultTolerantScheduler(Probe(), injector))
        assert violations == []
