"""Property-based tests on whole-simulator invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.random_policy import RandomScheduler
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.simulation import Simulation
from repro.config import SimulationConfig
from repro.core.agent import MeghScheduler
from repro.workloads.base import ArrayWorkload

from tests.conftest import make_pm, make_vm


def build_sim(matrix: np.ndarray, num_pms: int, seed: int = 0) -> Simulation:
    num_vms, num_steps = matrix.shape
    pms = [make_pm(i) for i in range(num_pms)]
    vms = [make_vm(j, ram_mb=512.0) for j in range(num_vms)]
    dc = Datacenter(pms, vms)
    for j in range(num_vms):
        dc.place(j, j % num_pms)
    workload = ArrayWorkload(matrix)
    return Simulation(
        dc, workload, SimulationConfig(num_steps=num_steps, seed=seed)
    )


workload_matrices = st.integers(min_value=2, max_value=5).flatmap(
    lambda vms: st.integers(min_value=3, max_value=12).flatmap(
        lambda steps: st.lists(
            st.lists(
                st.floats(0.0, 1.0, allow_nan=False),
                min_size=steps,
                max_size=steps,
            ),
            min_size=vms,
            max_size=vms,
        ).map(np.array)
    )
)


class TestSimulatorInvariants:
    @settings(max_examples=15, deadline=None)
    @given(workload_matrices)
    def test_costs_are_nonnegative_and_finite(self, matrix):
        sim = build_sim(matrix, num_pms=3)
        result = sim.run(RandomScheduler(migrations_per_step=1, seed=0))
        for step in result.metrics.steps:
            assert step.energy_cost_usd >= 0.0
            assert step.sla_cost_usd >= 0.0
            assert np.isfinite(step.total_cost_usd)

    @settings(max_examples=15, deadline=None)
    @given(workload_matrices)
    def test_every_vm_stays_placed(self, matrix):
        sim = build_sim(matrix, num_pms=3)
        sim.run(RandomScheduler(migrations_per_step=2, seed=1))
        dc = sim.datacenter
        assert sorted(dc.placement()) == list(range(dc.num_vms))

    @settings(max_examples=15, deadline=None)
    @given(workload_matrices)
    def test_ram_never_oversubscribed(self, matrix):
        sim = build_sim(matrix, num_pms=2)
        sim.run(RandomScheduler(migrations_per_step=2, seed=2))
        dc = sim.datacenter
        for pm in dc.pms:
            assert dc.ram_used_mb(pm.pm_id) <= pm.ram_mb + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(workload_matrices)
    def test_megh_q_table_never_shrinks(self, matrix):
        sim = build_sim(matrix, num_pms=3)
        agent = MeghScheduler.from_simulation(sim, seed=0)
        sim.run(agent)
        nnz = agent.qtable.nonzeros
        assert all(b >= a - 2 for a, b in zip(nnz, nnz[1:]))

    @settings(max_examples=10, deadline=None)
    @given(workload_matrices)
    def test_megh_cap_invariant(self, matrix):
        sim = build_sim(matrix, num_pms=3)
        agent = MeghScheduler.from_simulation(sim, seed=0)
        result = sim.run(agent)
        cap = max(1, int(0.02 * matrix.shape[0]))
        assert all(
            s.num_migrations_started <= cap for s in result.metrics.steps
        )

    @settings(max_examples=10, deadline=None)
    @given(workload_matrices, st.integers(min_value=0, max_value=3))
    def test_deterministic_under_seed(self, matrix, seed):
        result_a = build_sim(matrix, num_pms=3).run(
            RandomScheduler(migrations_per_step=1, seed=seed)
        )
        result_b = build_sim(matrix, num_pms=3).run(
            RandomScheduler(migrations_per_step=1, seed=seed)
        )
        assert result_a.total_cost_usd == pytest.approx(
            result_b.total_cost_usd
        )
        assert result_a.total_migrations == result_b.total_migrations

    @settings(max_examples=15, deadline=None)
    @given(workload_matrices)
    def test_sla_downtime_fractions_bounded(self, matrix):
        sim = build_sim(matrix, num_pms=2)
        result = sim.run(RandomScheduler(migrations_per_step=1, seed=3))
        for vm_id in range(matrix.shape[0]):
            fraction = result.sla.downtime_fraction(vm_id)
            assert 0.0 <= fraction <= 1.0 + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(workload_matrices)
    def test_energy_bracketed_by_idle_and_peak(self, matrix):
        sim = build_sim(matrix, num_pms=3)
        result = sim.run(RandomScheduler(migrations_per_step=0))
        config = sim.config
        price = config.costs.energy_price_usd_per_watt_second
        peak_watts = sum(pm.power_model.max_power for pm in sim.datacenter.pms)
        upper = peak_watts * config.interval_seconds * price
        for step in result.metrics.steps:
            assert step.energy_cost_usd <= upper + 1e-12
