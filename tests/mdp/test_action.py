"""Tests for the action-space indexing (d = N x M, Theorem 1 basis)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.mdp.action import ActionSpace, MigrationAction


class TestActionSpace:
    def test_dimension(self):
        assert ActionSpace(num_vms=3, num_pms=4).dimension == 12

    def test_index_formula(self):
        space = ActionSpace(num_vms=3, num_pms=4)
        assert space.index(MigrationAction(vm_id=2, dest_pm_id=3)) == 11
        assert space.index(MigrationAction(vm_id=0, dest_pm_id=0)) == 0
        assert space.index(MigrationAction(vm_id=1, dest_pm_id=2)) == 6

    def test_roundtrip(self):
        space = ActionSpace(num_vms=5, num_pms=7)
        for index in range(space.dimension):
            assert space.index(space.action(index)) == index

    def test_out_of_range_action(self):
        space = ActionSpace(num_vms=2, num_pms=2)
        with pytest.raises(ConfigurationError):
            space.index(MigrationAction(vm_id=2, dest_pm_id=0))
        with pytest.raises(ConfigurationError):
            space.index(MigrationAction(vm_id=0, dest_pm_id=5))

    def test_out_of_range_index(self):
        space = ActionSpace(num_vms=2, num_pms=2)
        with pytest.raises(ConfigurationError):
            space.action(4)
        with pytest.raises(ConfigurationError):
            space.action(-1)

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            ActionSpace(num_vms=0, num_pms=1)

    def test_noop_detection(self):
        space = ActionSpace(num_vms=2, num_pms=3)
        action = MigrationAction(vm_id=0, dest_pm_id=1)
        assert space.is_noop(action, current_host=1)
        assert not space.is_noop(action, current_host=0)

    def test_actions_for_vm(self):
        space = ActionSpace(num_vms=2, num_pms=3)
        actions = list(space.actions_for_vm(1))
        assert len(actions) == 3
        assert all(a.vm_id == 1 for a in actions)
        assert [a.dest_pm_id for a in actions] == [0, 1, 2]

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
    )
    def test_index_is_bijection(self, num_vms, num_pms):
        space = ActionSpace(num_vms=num_vms, num_pms=num_pms)
        indices = {
            space.index(MigrationAction(vm_id=j, dest_pm_id=k))
            for j in range(num_vms)
            for k in range(num_pms)
        }
        assert indices == set(range(space.dimension))

    def test_action_ordering(self):
        a = MigrationAction(vm_id=0, dest_pm_id=1)
        b = MigrationAction(vm_id=1, dest_pm_id=0)
        assert a < b
