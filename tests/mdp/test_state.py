"""Tests for MDP state snapshots."""

import pytest

from repro.mdp.state import observe_state


class TestObserveState:
    def test_snapshot_fields(self, placed_datacenter):
        placed_datacenter.vm(0).set_demand(0.5)
        state = observe_state(placed_datacenter, step=7)
        assert state.step == 7
        assert state.num_vms == 6
        assert state.num_pms == 4
        assert state.workloads[0] == pytest.approx(0.5)
        assert dict(state.placement)[0] == 0

    def test_host_of(self, placed_datacenter):
        state = observe_state(placed_datacenter, step=0)
        assert state.host_of(4) == 2
        assert state.host_of(99) is None

    def test_placement_map_copy(self, placed_datacenter):
        state = observe_state(placed_datacenter, step=0)
        mapping = state.placement_map()
        mapping[0] = 99
        assert state.host_of(0) == 0

    def test_immutable_after_mutation(self, placed_datacenter):
        state = observe_state(placed_datacenter, step=0)
        placed_datacenter.move(0, 3)
        assert state.host_of(0) == 0  # snapshot unaffected

    def test_active_vms(self, placed_datacenter):
        placed_datacenter.vm(2).set_active(False)
        state = observe_state(placed_datacenter, step=0)
        assert 2 not in state.active_vms
        assert 0 in state.active_vms

    def test_host_utilization(self, placed_datacenter):
        placed_datacenter.vm(0).set_demand(0.8)
        placed_datacenter.vm(1).set_demand(0.8)
        state = observe_state(placed_datacenter, step=0)
        assert state.host_utilization[0] == pytest.approx(0.4)

    def test_configuration_key_hashable(self, placed_datacenter):
        state = observe_state(placed_datacenter, step=0)
        assert hash(state.configuration_key()) == hash(state.placement)
