"""Tests for the churn-driven service loop (``repro.service``)."""
