"""Checkpoint/restart: bit-identity, periodic cadence, v1 compatibility."""

import json

import numpy as np
import pytest

from repro.cloudsim.events import EventLog
from repro.core.agent import MeghScheduler
from repro.core.checkpoint import (
    CHECKPOINT_VERSION,
    load_agent,
    load_service,
    save_agent,
    save_service,
)
from repro.errors import ConfigurationError
from repro.harness.builders import build_planetlab_simulation
from repro.service.builders import build_churn_service


def _result_key(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def _run_full(seed: int, steps: int = 48):
    service = build_churn_service(seed=seed, num_steps=steps)
    agent = MeghScheduler.from_simulation(service, seed=seed)
    log = EventLog()
    result = service.run(agent, event_log=log)
    return result, log, agent


class TestResumeBitIdentity:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_interrupted_run_resumes_byte_identically(self, tmp_path, seed):
        """The PR's acceptance criterion, across three seeds.

        Contracts are on in the test suite, so the Sherman–Morrison
        auditor validates every update *and every slot retirement* on
        both halves of the interrupted run — any drift raises.
        """
        steps = 48
        full_result, full_log, full_agent = _run_full(seed, steps)
        assert full_agent.lstd.retirements_applied > 0

        path = str(tmp_path / f"service-{seed}.npz")
        service = build_churn_service(seed=seed, num_steps=steps)
        agent = MeghScheduler.from_simulation(service, seed=seed)
        log = EventLog()
        stopped = service.run(
            agent,
            event_log=log,
            checkpoint_path=path,
            stop_after_step=steps // 2,
        )
        assert stopped is None

        resumed_service, resumed_agent = load_service(path)
        resumed_log = EventLog()
        resumed = resumed_service.run(resumed_agent, event_log=resumed_log)
        assert _result_key(full_result) == _result_key(resumed)
        assert [e.to_json() for e in full_log] == [
            e.to_json() for e in resumed_log
        ]
        assert (
            resumed_agent.lstd.retirements_applied
            == full_agent.lstd.retirements_applied
        )

    def test_periodic_checkpoint_resumes_byte_identically(self, tmp_path):
        steps = 40
        full_result, _, _ = _run_full(7, steps)

        path = str(tmp_path / "periodic.npz")
        service = build_churn_service(seed=7, num_steps=steps)
        agent = MeghScheduler.from_simulation(service, seed=7)
        service.run(
            agent, checkpoint_every=16, checkpoint_path=path
        )  # last boundary checkpoint is at step 32, mid-run

        resumed_service, resumed_agent = load_service(path)
        resumed = resumed_service.run(resumed_agent)
        assert _result_key(full_result) == _result_key(resumed)

    def test_resume_rejects_different_horizon(self, tmp_path):
        path = str(tmp_path / "svc.npz")
        service = build_churn_service(seed=0, num_steps=30)
        agent = MeghScheduler.from_simulation(service, seed=0)
        service.run(agent, checkpoint_path=path, stop_after_step=10)
        resumed_service, resumed_agent = load_service(path)
        with pytest.raises(ConfigurationError):
            resumed_service.run(resumed_agent, num_steps=25)


class TestServiceCheckpointFormat:
    def test_service_checkpoint_is_version_2(self, tmp_path):
        path = str(tmp_path / "svc.npz")
        service = build_churn_service(seed=0, num_steps=20)
        agent = MeghScheduler.from_simulation(service, seed=0)
        service.run(agent, checkpoint_path=path, stop_after_step=9)
        with np.load(path, allow_pickle=False) as data:
            assert int(data["version"]) == CHECKPOINT_VERSION == 2
            assert "agent_rng_state" in data.files
            assert "service_state" in data.files
            state = json.loads(str(data["service_state"][()]))
        assert state["next_step"] == 10
        assert state["spec"]["builder"] == "churn"

    def test_agent_only_checkpoint_rejected_by_load_service(self, tmp_path):
        sim = build_planetlab_simulation(num_pms=4, num_vms=6, num_steps=10)
        agent = MeghScheduler.from_simulation(sim, seed=0)
        sim.run(agent)
        path = str(tmp_path / "agent.npz")
        save_agent(agent, path)
        with pytest.raises(ConfigurationError):
            load_service(path)

    def test_save_service_requires_learner(self, tmp_path):
        from repro.baselines.noop import NoMigrationScheduler

        with pytest.raises(ConfigurationError):
            save_service(
                NoMigrationScheduler(), str(tmp_path / "x.npz"), {}
            )


class TestAgentCheckpointV2:
    def _trained(self, seed=4):
        sim = build_planetlab_simulation(
            num_pms=6, num_vms=8, num_steps=30, seed=seed
        )
        agent = MeghScheduler.from_simulation(sim, seed=seed)
        sim.run(agent)
        return agent

    def test_rng_states_round_trip(self, tmp_path):
        agent = self._trained()
        path = str(tmp_path / "agent.npz")
        save_agent(agent, path)
        restored = load_agent(path, seed=999)  # seed must not matter in v2
        assert (
            restored._rng.bit_generator.state
            == agent._rng.bit_generator.state
        )
        assert (
            restored.policy._rng.bit_generator.state
            == agent.policy._rng.bit_generator.state
        )
        assert (
            restored._previous_action_indices
            == agent._previous_action_indices
        )
        assert restored._last_normalized_cost == agent._last_normalized_cost
        assert restored.lstd.updates_applied == agent.lstd.updates_applied
        assert restored.qtable.samples == agent.qtable.samples

    def test_operator_tracker_round_trips(self, tmp_path):
        service = build_churn_service(seed=2, num_steps=25)
        agent = MeghScheduler.from_simulation(service, seed=2)
        service.run(agent)
        path = str(tmp_path / "dynamic.npz")
        save_agent(agent, path)
        restored = load_agent(path)
        assert restored.dynamic_slots
        assert (
            restored.lstd.operator_entries()
            == agent.lstd.operator_entries()
        )
        assert (
            restored.lstd.retirements_applied
            == agent.lstd.retirements_applied
        )


class TestV1Compatibility:
    """Version-1 checkpoints load with a documented fresh-RNG caveat."""

    def _v1_payload(self, agent):
        rows, cols, values = [], [], []
        for i, j, value in agent.lstd.B.items():
            rows.append(i)
            cols.append(j)
            values.append(value)
        z_indices = list(agent.lstd.z.keys())
        return {
            "version": np.array(1),
            "num_vms": np.array(agent.action_space.num_vms),
            "num_pms": np.array(agent.action_space.num_pms),
            "beta": np.array(agent.beta),
            "b_rows": np.array(rows, dtype=np.int64),
            "b_cols": np.array(cols, dtype=np.int64),
            "b_values": np.array(values, dtype=np.float64),
            "z_indices": np.array(z_indices, dtype=np.int64),
            "z_values": np.array(
                [agent.lstd.z[i] for i in z_indices], dtype=np.float64
            ),
            "temperature": np.array(agent.policy.temperature),
            "steps_seen": np.array(agent._steps_seen),
            "cost_running_mean": np.array(agent._cost_running_mean),
            "costs_seen": np.array(agent._costs_seen),
            "gamma": np.array(agent.config.gamma),
            "config_repr": np.array(repr(agent.config)),
        }

    def _trained(self):
        sim = build_planetlab_simulation(
            num_pms=6, num_vms=8, num_steps=30, seed=5
        )
        agent = MeghScheduler.from_simulation(sim, seed=5)
        sim.run(agent)
        return agent

    def test_v1_loads_with_fresh_rng_warning(self, tmp_path):
        agent = self._trained()
        path = str(tmp_path / "v1.npz")
        np.savez_compressed(path, **self._v1_payload(agent))
        with pytest.warns(UserWarning, match="fresh RNGs"):
            restored = load_agent(path, seed=5)
        # Learned state survives ...
        for action in range(0, agent.action_space.dimension, 7):
            assert restored.lstd.q_value(action) == pytest.approx(
                agent.lstd.q_value(action)
            )
        assert restored.policy.temperature == pytest.approx(
            agent.policy.temperature
        )
        # ... but the decision context does not: v1 never stored it.
        assert restored._previous_action_indices == []
        assert restored._last_normalized_cost is None
        assert not restored.dynamic_slots

    def test_unsupported_version_rejected(self, tmp_path):
        agent = self._trained()
        payload = self._v1_payload(agent)
        payload["version"] = np.array(99)
        path = str(tmp_path / "v99.npz")
        np.savez_compressed(path, **payload)
        with pytest.raises(ConfigurationError):
            load_agent(path)
