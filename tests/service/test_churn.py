"""Unit tests for churn generation and lifecycle-trace replay."""

import pytest

from repro.cloudsim.events import EventKind, EventLog
from repro.errors import ConfigurationError
from repro.service.churn import (
    CREATE,
    DELETE,
    RESIZE,
    ChurnConfig,
    ChurnEvent,
    ChurnModel,
    TraceChurnModel,
)

_KIND_ORDER = {DELETE: 0, RESIZE: 1, CREATE: 2}


class TestChurnModel:
    def test_same_seed_same_schedule(self):
        config = ChurnConfig()
        a = ChurnModel(config, num_steps=50, seed=4)
        b = ChurnModel(config, num_steps=50, seed=4)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        config = ChurnConfig()
        a = ChurnModel(config, num_steps=50, seed=4)
        b = ChurnModel(config, num_steps=50, seed=5)
        assert a.events != b.events

    def test_initial_fleet_arrives_at_step_zero(self):
        model = ChurnModel(ChurnConfig(initial_vms=5), num_steps=30, seed=0)
        first = [e for e in model.events if e.step == 0]
        assert len(first) >= 5
        assert all(e.kind == CREATE for e in first[:5])

    def test_schedule_is_sorted_with_deletes_first(self):
        model = ChurnModel(
            ChurnConfig(arrival_rate=2.0, mean_lifetime_steps=4.0),
            num_steps=60,
            seed=1,
        )
        keys = [(e.step, _KIND_ORDER[e.kind]) for e in model.events]
        assert keys == sorted(keys)

    def test_uids_unique_and_dense(self):
        model = ChurnModel(ChurnConfig(), num_steps=40, seed=2)
        uids = [e.uid for e in model.events if e.kind == CREATE]
        assert uids == list(range(len(uids)))

    def test_every_delete_and_resize_follows_its_create(self):
        model = ChurnModel(
            ChurnConfig(arrival_rate=2.0, mean_lifetime_steps=5.0),
            num_steps=60,
            seed=3,
        )
        created_at = {
            e.uid: e.step for e in model.events if e.kind == CREATE
        }
        for event in model.events:
            if event.kind in (DELETE, RESIZE):
                assert event.step > created_at[event.uid]

    def test_invalid_num_steps(self):
        with pytest.raises(ConfigurationError):
            ChurnModel(ChurnConfig(), num_steps=0)


class TestChurnConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"arrival_rate": -0.1},
            {"mean_lifetime_steps": 0.5},
            {"initial_vms": -1},
            {"resize_probability": 1.5},
            {"vm_mips_range": (0.0, 100.0)},
            {"vm_ram_range_mb": (200.0, 100.0)},
            {"resize_factor_range": (-1.0, 2.0)},
            {"vm_bandwidth_mbps": 0.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChurnConfig(**kwargs)

    def test_defaults_valid(self):
        ChurnConfig()


class TestChurnEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnEvent(step=0, kind="explode", uid=0)

    def test_negative_step_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnEvent(step=-1, kind=CREATE, uid=0)


class TestTraceChurnModel:
    def _lifecycle_log(self) -> EventLog:
        log = EventLog()
        log.emit(
            0,
            EventKind.VM_CREATED,
            uid=0,
            vm_id=0,
            mips=900.0,
            ram_mb=700.0,
            bandwidth_mbps=100.0,
        )
        log.emit(2, EventKind.VM_RESIZED, uid=0, vm_id=0, mips=1200.0)
        # A non-lifecycle line the parser must skip.
        log.emit(2, EventKind.HOST_OVERLOADED, pm_id=1)
        log.emit(4, EventKind.VM_DELETED, uid=0, vm_id=0)
        return log

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        self._lifecycle_log().save_jsonl(path)
        model = TraceChurnModel.from_jsonl(path, num_steps=10)
        assert [e.kind for e in model.events] == [CREATE, RESIZE, DELETE]
        create = model.events[0]
        assert (create.uid, create.mips, create.ram_mb) == (0, 900.0, 700.0)
        assert model.events[1].mips == 1200.0
        assert model.events[2].step == 4

    def test_orders_same_step_deletes_before_creates(self):
        events = [
            ChurnEvent(step=3, kind=CREATE, uid=1, mips=1.0, ram_mb=1.0,
                       bandwidth_mbps=1.0),
            ChurnEvent(step=3, kind=DELETE, uid=0),
        ]
        model = TraceChurnModel(events, num_steps=5)
        assert [e.kind for e in model.events] == [DELETE, CREATE]

    def test_event_beyond_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceChurnModel(
                [ChurnEvent(step=7, kind=DELETE, uid=0)], num_steps=5
            )

    def test_missing_uid_rejected(self, tmp_path):
        log = EventLog()
        log.emit(0, EventKind.VM_CREATED, vm_id=0, mips=1.0, ram_mb=1.0,
                 bandwidth_mbps=1.0)
        path = str(tmp_path / "bad.jsonl")
        log.save_jsonl(path)
        with pytest.raises(ConfigurationError):
            TraceChurnModel.from_jsonl(path, num_steps=5)

    def test_create_missing_capacity_rejected(self, tmp_path):
        log = EventLog()
        log.emit(0, EventKind.VM_CREATED, uid=0, vm_id=0)
        path = str(tmp_path / "bad.jsonl")
        log.save_jsonl(path)
        with pytest.raises(ConfigurationError):
            TraceChurnModel.from_jsonl(path, num_steps=5)

    def test_resize_missing_mips_rejected(self, tmp_path):
        log = EventLog()
        log.emit(0, EventKind.VM_RESIZED, uid=0, vm_id=0)
        path = str(tmp_path / "bad.jsonl")
        log.save_jsonl(path)
        with pytest.raises(ConfigurationError):
            TraceChurnModel.from_jsonl(path, num_steps=5)
