"""Slot-retirement edge cases, verified against a fresh dense solve.

Each scenario drives a real Megh agent over a live datacenter — built on
either placement backend — then retires a slot and checks the learner's
incremental inverse ``B`` against the oracle ``inv(delta I + T_tracked)``
recomputed densely from the forward-operator record.  The rank-1
clearing path is only correct if the two agree to numerical noise.
"""

import numpy as np
import pytest

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.migration import Migration, MigrationEngine
from repro.cloudsim.monitor import UtilizationMonitor
from repro.cloudsim.reference import ReferenceDatacenter
from repro.core.agent import MeghScheduler
from repro.errors import ConfigurationError
from repro.mdp.interfaces import Observation
from repro.mdp.state import observe_state

from tests.conftest import make_pm, make_vm

BACKENDS = {"soa": Datacenter, "reference": ReferenceDatacenter}

_NUM_PMS = 3
_NUM_VMS = 4
_INTERVAL = 300.0


def _dense_oracle(lstd) -> np.ndarray:
    """``inv(T)`` recomputed from scratch off the tracked operator."""
    T = np.eye(lstd.dimension) * lstd.delta
    for i, j, value in lstd.operator_entries():
        T[i, j] += value
    return np.linalg.inv(T)


def _assert_matches_oracle(lstd) -> None:
    np.testing.assert_allclose(
        lstd.B.to_dense(), _dense_oracle(lstd), rtol=0.0, atol=1e-10
    )


@pytest.fixture(params=sorted(BACKENDS))
def scenario(request):
    """An agent trained for a few steps on the requested backend."""
    cls = BACKENDS[request.param]
    pms = [make_pm(i, mips=3000.0) for i in range(_NUM_PMS)]
    vms = [make_vm(j, mips=2000.0, ram_mb=512.0) for j in range(_NUM_VMS)]
    datacenter = cls(pms, vms)
    for vm_id in range(_NUM_VMS):
        datacenter.place(vm_id, vm_id % 2)  # crowd PMs 0 and 1; PM 2 free
    engine = MigrationEngine(datacenter, overhead_fraction=0.10, alpha=0.30)
    agent = MeghScheduler(
        num_vms=_NUM_VMS, num_pms=_NUM_PMS, seed=9, dynamic_slots=True
    )
    monitor = UtilizationMonitor(history_length=6)
    _drive(datacenter, engine, agent, monitor, steps=6)
    assert agent.lstd.updates_applied > 0
    return datacenter, engine, agent, monitor


def _drive(datacenter, engine, agent, monitor, steps, start=0):
    """A minimal per-step pipeline: demand, decide, migrate, advance."""
    rng = np.random.default_rng(17)
    for step in range(start, start + steps):
        for vm in datacenter.vms:
            if vm.is_active:
                vm.set_demand(float(rng.uniform(0.75, 1.0)))
        monitor.observe(datacenter)
        observation = Observation(
            step=step,
            state=observe_state(datacenter, step),
            datacenter=datacenter,
            monitor=monitor,
            last_step_cost_usd=0.4,
            interval_seconds=_INTERVAL,
        )
        engine.start(agent.decide(observation))
        datacenter.share_cpu()
        engine.advance(_INTERVAL)


def _delete_vm(datacenter, engine, agent, slot):
    """The service loop's departure path, spelled out."""
    engine.cancel(slot)
    if datacenter.is_placed(slot):
        datacenter.remove(slot)
    datacenter.vm(slot).set_active(False)
    agent.retire_vm(slot)


class TestRetirementOracle:
    def test_retire_then_reuse(self, scenario):
        datacenter, engine, agent, monitor = scenario
        _delete_vm(datacenter, engine, agent, 1)
        _assert_matches_oracle(agent.lstd)
        # The retired block reverts to the never-observed state.
        num_pms = agent.action_space.num_pms
        for index in range(1 * num_pms, 2 * num_pms):
            assert agent.lstd.q_value(index) == 0.0
            assert index not in agent.lstd.z

        # A new tenant reuses slot 1 and learning continues cleanly.
        vm = datacenter.vm(1)
        vm.set_active(True)
        datacenter.place(1, 0)
        before = agent.lstd.updates_applied
        _drive(datacenter, engine, agent, monitor, steps=6, start=6)
        assert agent.lstd.updates_applied > before
        _assert_matches_oracle(agent.lstd)

    def test_retire_mid_migration(self, scenario):
        datacenter, engine, agent, monitor = scenario
        # Force a transfer involving slot 0, then delete mid-flight.
        if not engine.is_migrating(0):
            dest = (datacenter.host_of(0) + 1) % _NUM_PMS
            outcome = engine.start([Migration(vm_id=0, dest_pm_id=dest)])
            assert outcome.started
        _delete_vm(datacenter, engine, agent, 0)
        assert not engine.is_migrating(0)
        _assert_matches_oracle(agent.lstd)
        # The engine keeps advancing cleanly with the flight cancelled.
        _drive(datacenter, engine, agent, monitor, steps=3, start=6)
        _assert_matches_oracle(agent.lstd)

    def test_retire_last_vm_on_pm(self, scenario):
        datacenter, engine, agent, monitor = scenario
        # Gather every VM still on some PM onto others until one PM
        # hosts exactly one VM, then retire that VM.
        lone_pm = datacenter.host_of(2)
        for vm_id in range(_NUM_VMS):
            if vm_id != 2 and datacenter.host_of(vm_id) == lone_pm:
                engine.cancel(vm_id)
                datacenter.move(vm_id, (lone_pm + 1) % _NUM_PMS)
        assert datacenter.vms_on(lone_pm) == {2}
        _delete_vm(datacenter, engine, agent, 2)
        assert datacenter.vms_on(lone_pm) == set()
        slept = datacenter.sleep_idle_hosts()
        assert lone_pm in slept
        _assert_matches_oracle(agent.lstd)

    def test_retirement_requires_dynamic_slots(self, scenario):
        datacenter, _, _, _ = scenario
        del datacenter
        static_agent = MeghScheduler(
            num_vms=_NUM_VMS, num_pms=_NUM_PMS, seed=0
        )
        with pytest.raises(ConfigurationError):
            static_agent.lstd.retire_actions([0])

    def test_retire_out_of_range_slot(self, scenario):
        _, _, agent, _ = scenario
        with pytest.raises(ConfigurationError):
            agent.retire_vm(_NUM_VMS)
