"""Integration tests for the churn-driven service loop."""

import json

import pytest

from repro.cloudsim.events import EventKind, EventLog
from repro.cloudsim.reference import ReferenceDatacenter
from repro.config import SimulationConfig
from repro.core.agent import MeghScheduler
from repro.engine.registry import (
    BuilderSpec,
    SchedulerSpec,
    execute_spec,
    job_spec,
)
from repro.errors import ConfigurationError
from repro.service.builders import build_churn_service
from repro.service.churn import ChurnConfig, ChurnModel
from repro.service.loop import ServiceSimulation

from tests.conftest import make_pm, make_vm


def _result_key(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class TestRun:
    def test_smoke_run_completes(self):
        service = build_churn_service(seed=0, num_steps=30)
        agent = MeghScheduler.from_simulation(service, seed=0)
        result = service.run(agent)
        assert len(result.metrics.steps) == 30
        assert service.churn_events_applied == len(service.churn.events)
        assert agent.dynamic_slots
        assert agent.lstd.operator_tracking_enabled

    def test_results_are_wall_clock_free(self):
        service = build_churn_service(seed=0, num_steps=15)
        agent = MeghScheduler.from_simulation(service, seed=0)
        result = service.run(agent)
        assert all(
            step.scheduler_seconds == 0.0 for step in result.metrics.steps
        )

    def test_identical_runs_are_byte_identical(self):
        keys = []
        for _ in range(2):
            service = build_churn_service(seed=5, num_steps=40)
            agent = MeghScheduler.from_simulation(service, seed=5)
            keys.append(_result_key(service.run(agent)))
        assert keys[0] == keys[1]

    def test_runs_via_engine_registry(self):
        spec = job_spec(
            BuilderSpec.create("churn", num_steps=20, num_pms=6, capacity=8),
            SchedulerSpec.create("megh", seed=2),
            seed=2,
        )
        result = execute_spec(spec)
        assert len(result.metrics.steps) == 20

    def test_departures_free_slots_for_reuse(self):
        service = build_churn_service(
            seed=1,
            num_steps=60,
            capacity=6,
            arrival_rate=1.0,
            mean_lifetime_steps=6.0,
            initial_vms=4,
        )
        agent = MeghScheduler.from_simulation(service, seed=1)
        service.run(agent)
        creates = sum(
            1 for e in service.churn.events if e.kind == "create"
        )
        # More arrivals than slots can only complete via slot reuse.
        assert creates > service.capacity
        assert agent.lstd.retirements_applied > 0
        assert service.num_live_vms <= service.capacity

    def test_pool_full_rejection_is_logged(self):
        service = build_churn_service(
            seed=0, num_steps=5, capacity=2, initial_vms=5, arrival_rate=0.0
        )
        agent = MeghScheduler.from_simulation(service, seed=0)
        log = EventLog()
        service.run(agent, event_log=log)
        rejections = [
            e
            for e in log
            if e.kind == EventKind.CUSTOM
            and e.payload.get("reason") == "vm_rejected_pool_full"
        ]
        assert len(rejections) == 3
        creates = [e for e in log if e.kind == EventKind.VM_CREATED]
        assert len(creates) == 2


class TestTraceReplay:
    def test_saved_event_log_replays_byte_identically(self, tmp_path):
        service = build_churn_service(seed=6, num_steps=40)
        agent = MeghScheduler.from_simulation(service, seed=6)
        log = EventLog()
        original = service.run(agent, event_log=log)
        path = str(tmp_path / "lifecycle.jsonl")
        log.save_jsonl(path)

        replay = build_churn_service(
            seed=6, num_steps=40, trace_path=path
        )
        replay_agent = MeghScheduler.from_simulation(replay, seed=6)
        replayed = replay.run(replay_agent)
        assert _result_key(original) == _result_key(replayed)


class TestValidation:
    def _slots(self, n):
        return [make_vm(j) for j in range(n)]

    def test_reference_backend_rejected(self):
        datacenter = ReferenceDatacenter(
            [make_pm(i) for i in range(2)], self._slots(2)
        )
        churn = ChurnModel(ChurnConfig(), num_steps=10, seed=0)
        with pytest.raises(ConfigurationError):
            ServiceSimulation(
                datacenter, churn, SimulationConfig(num_steps=10)
            )

    def test_bad_cadence_rejected(self):
        with pytest.raises(ConfigurationError):
            build_churn_service(num_steps=10, decide_every=0)

    def test_short_churn_horizon_rejected(self):
        service = build_churn_service(seed=0, num_steps=10)
        agent = MeghScheduler.from_simulation(service, seed=0)
        with pytest.raises(ConfigurationError):
            service.run(agent, num_steps=11)

    def test_checkpoint_cadence_requires_path(self):
        service = build_churn_service(seed=0, num_steps=10)
        agent = MeghScheduler.from_simulation(service, seed=0)
        with pytest.raises(ConfigurationError):
            service.run(agent, checkpoint_every=5)

    def test_checkpoint_requires_learner(self, tmp_path):
        from repro.baselines.noop import NoMigrationScheduler

        service = build_churn_service(seed=0, num_steps=10)
        with pytest.raises(ConfigurationError):
            service.run(
                NoMigrationScheduler(),
                checkpoint_every=5,
                checkpoint_path=str(tmp_path / "x.npz"),
            )

    def test_introspection_before_run_is_zero(self):
        service = build_churn_service(seed=0, num_steps=10)
        assert service.num_live_vms == 0
        assert service.churn_events_applied == 0
