"""Library-wide quality gates: docstrings, exports, import hygiene.

These are meta-tests: they walk the installed package and assert the
documentation and export invariants a downstream user relies on — every
public module, class, and function documented; every ``__all__`` name
importable; no module accidentally importing test-only dependencies.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.cloudsim",
    "repro.core",
    "repro.costs",
    "repro.baselines",
    "repro.baselines.mmt",
    "repro.workloads",
    "repro.mdp",
    "repro.harness",
    "repro.engine",
]


def all_modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            if not info.ispkg:
                names.append(f"{package_name}.{info.name}")
    return sorted(set(names))


MODULES = all_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, (
        f"{module_name} has undocumented public members: {undocumented}"
    )


@pytest.mark.parametrize(
    "package_name",
    [name for name in PACKAGES],
)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    for name in exported:
        assert hasattr(package, name), (
            f"{package_name}.__all__ lists {name} but it is not importable"
        )


def test_top_level_public_api():
    # The names README's quickstart and examples rely on.
    for name in (
        "build_planetlab_simulation",
        "build_google_simulation",
        "MeghScheduler",
        "MMTScheduler",
        "MadVMScheduler",
        "NoMigrationScheduler",
        "Simulation",
        "SimulationConfig",
        "MeghConfig",
    ):
        assert hasattr(repro, name)


def test_version_is_pep440ish():
    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(part.isdigit() for part in parts[:2])


def test_no_module_requires_pytest_at_import():
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        source_deps = getattr(module, "__dict__", {})
        assert "pytest" not in source_deps, (
            f"{module_name} imports pytest at module scope"
        )
