"""Tests for the configuration dataclasses and their validation."""

import pytest

from repro.config import (
    CostConfig,
    DatacenterConfig,
    MeghConfig,
    SimulationConfig,
)
from repro.errors import ConfigurationError


class TestCostConfig:
    def test_paper_defaults(self):
        config = CostConfig()
        assert config.energy_price_usd_per_kwh == pytest.approx(0.18675)
        assert config.vm_price_usd_per_hour == pytest.approx(1.2)
        assert config.payback_minor == pytest.approx(0.167)
        assert config.payback_major == pytest.approx(0.333)
        assert config.minor_downtime_threshold == pytest.approx(0.0005)
        assert config.major_downtime_threshold == pytest.approx(0.001)

    def test_watt_second_conversion(self):
        config = CostConfig(energy_price_usd_per_kwh=3.6)
        # 3.6 USD/kWh = 3.6 / (1000 * 3600) USD per watt-second = 1e-6.
        assert config.energy_price_usd_per_watt_second == pytest.approx(1e-6)

    def test_billing_window_default(self):
        assert CostConfig().sla_billing_window_seconds == pytest.approx(7200.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"energy_price_usd_per_kwh": -1.0},
            {"vm_price_usd_per_hour": -0.1},
            {"payback_minor": 0.5, "payback_major": 0.2},
            {"minor_downtime_threshold": 0.01, "major_downtime_threshold": 0.001},
            {"sla_billing_window_seconds": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            CostConfig(**kwargs)


class TestDatacenterConfig:
    def test_paper_defaults(self):
        config = DatacenterConfig()
        assert config.overload_threshold == pytest.approx(0.70)
        assert config.migration_cpu_threshold == pytest.approx(0.30)
        assert config.sleep_idle_hosts
        assert config.migration_overhead_fraction == pytest.approx(0.10)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"overload_threshold": 0.0},
            {"overload_threshold": 1.5},
            {"migration_cpu_threshold": -0.1},
            {"migration_overhead_fraction": 1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            DatacenterConfig(**kwargs)


class TestMeghConfig:
    def test_paper_defaults(self):
        config = MeghConfig()
        assert config.gamma == pytest.approx(0.5)
        assert config.initial_temperature == pytest.approx(3.0)
        assert config.temperature_decay == pytest.approx(0.01)
        assert config.max_migration_fraction == pytest.approx(0.02)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gamma": 1.0},
            {"initial_temperature": 0.0},
            {"temperature_decay": -0.1},
            {"min_temperature": 0.0},
            {"delta": 0.0},
            {"max_migration_fraction": 0.0},
            {"cost_scale": 0.0},
            {"underload_threshold": 1.5},
            {"candidate_destinations": -1},
            {"max_candidate_vms": -1},
            {"migration_margin": -0.1},
            {"destination_headroom": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            MeghConfig(**kwargs)

    def test_delta_none_allowed(self):
        assert MeghConfig(delta=None).delta is None

    def test_cost_scale_none_allowed(self):
        assert MeghConfig(cost_scale=None).cost_scale is None


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.interval_seconds == pytest.approx(300.0)
        assert config.num_steps == 288

    def test_total_seconds(self):
        config = SimulationConfig(interval_seconds=300.0, num_steps=10)
        assert config.total_seconds == pytest.approx(3000.0)

    def test_nested_configs_default(self):
        config = SimulationConfig()
        assert isinstance(config.costs, CostConfig)
        assert isinstance(config.datacenter, DatacenterConfig)

    @pytest.mark.parametrize(
        "kwargs",
        [{"interval_seconds": 0.0}, {"num_steps": 0}],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**kwargs)

    def test_frozen(self):
        config = SimulationConfig()
        with pytest.raises(Exception):
            config.num_steps = 5
