"""Tests for the energy, SLA, and aggregate operation-cost models."""

import pytest

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.sla import SlaAccountant
from repro.config import CostConfig
from repro.costs.energy import EnergyCostModel
from repro.costs.model import OperationCostModel, StepCost
from repro.costs.sla_cost import SlaCostModel
from repro.errors import ConfigurationError

from tests.conftest import make_pm, make_vm


@pytest.fixture
def dc():
    datacenter = Datacenter([make_pm(0), make_pm(1)], [make_vm(0)])
    datacenter.place(0, 0)
    return datacenter


class TestEnergyCost:
    def test_idle_fleet_cost(self, dc):
        config = CostConfig()
        model = EnergyCostModel(config)
        dc.share_cpu()
        cost = model.step_cost(dc, 300.0)
        # Host 0 (G4 idle 86 W) + host 1 (G5 idle 93.7 W) for 300 s.
        expected = (86.0 + 93.7) * 300.0 * config.energy_price_usd_per_watt_second
        assert cost == pytest.approx(expected)
        assert model.total_usd == pytest.approx(expected)
        assert model.total_joules == pytest.approx((86.0 + 93.7) * 300.0)

    def test_sleeping_host_free(self, dc):
        model = EnergyCostModel(CostConfig())
        dc.pm(1).sleep()
        dc.share_cpu()
        cost_awake = (
            86.0 * 300.0 * CostConfig().energy_price_usd_per_watt_second
        )
        assert model.step_cost(dc, 300.0) == pytest.approx(cost_awake)

    def test_utilization_raises_cost(self, dc):
        low = EnergyCostModel(CostConfig())
        high = EnergyCostModel(CostConfig())
        dc.share_cpu()
        low_cost = low.step_cost(dc, 300.0)
        dc.vm(0).set_demand(1.0)
        dc.share_cpu()
        high_cost = high.step_cost(dc, 300.0)
        assert high_cost > low_cost

    def test_accumulates(self, dc):
        model = EnergyCostModel(CostConfig())
        dc.share_cpu()
        first = model.step_cost(dc, 300.0)
        model.step_cost(dc, 300.0)
        assert model.total_usd == pytest.approx(2 * first)

    def test_invalid_interval(self, dc):
        model = EnergyCostModel(CostConfig())
        with pytest.raises(ConfigurationError):
            model.step_cost(dc, 0.0)


class TestSlaCost:
    def test_payback_tiers(self):
        model = SlaCostModel(CostConfig())
        assert model.payback_rate(0.0) == 0.0
        assert model.payback_rate(0.0004) == 0.0
        assert model.payback_rate(0.0007) == pytest.approx(0.167)
        assert model.payback_rate(0.002) == pytest.approx(0.333)

    def test_tier_boundaries(self):
        model = SlaCostModel(CostConfig())
        # Exactly at a threshold: the lower tier applies ("(x, y]" bands).
        assert model.payback_rate(0.0005) == 0.0
        assert model.payback_rate(0.001) == pytest.approx(0.167)

    def test_step_cost_charges_violating_vms(self, dc):
        accountant = SlaAccountant(beta=0.7)
        record = accountant.vm_record(0)
        record.record_step(downtime=30.0, requested=300.0)  # 10 % down
        model = SlaCostModel(CostConfig())
        cost = model.step_cost(accountant, 300.0)
        expected = 0.333 * 1.2 * (300.0 / 3600.0)
        assert cost == pytest.approx(expected)

    def test_no_violation_no_cost(self, dc):
        accountant = SlaAccountant()
        accountant.vm_record(0).record_step(0.0, 300.0)
        model = SlaCostModel(CostConfig())
        assert model.step_cost(accountant, 300.0) == 0.0

    def test_invalid_interval(self):
        model = SlaCostModel(CostConfig())
        with pytest.raises(ConfigurationError):
            model.step_cost(SlaAccountant(), -1.0)


class TestOperationCost:
    def test_step_cost_combines(self, dc):
        model = OperationCostModel(CostConfig())
        accountant = SlaAccountant()
        accountant.vm_record(0).record_step(300.0, 300.0)  # total violation
        dc.share_cpu()
        step = model.step_cost(dc, accountant, 300.0)
        assert isinstance(step, StepCost)
        assert step.energy_usd > 0.0
        assert step.sla_usd > 0.0
        assert step.total_usd == pytest.approx(step.energy_usd + step.sla_usd)
        assert model.total_usd == pytest.approx(step.total_usd)

    def test_nonnegative_per_stage_cost(self, dc):
        # Eq. (6) discussion: Delta C_p > 0 and Delta C_v >= 0 always.
        model = OperationCostModel(CostConfig())
        accountant = SlaAccountant()
        dc.share_cpu()
        for _ in range(5):
            step = model.step_cost(dc, accountant, 300.0)
            assert step.energy_usd > 0.0
            assert step.sla_usd >= 0.0
