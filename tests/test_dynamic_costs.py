"""Tests for the dynamic cost-model variants (time-of-use, tiered VMs)."""

import pytest

from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.sla import SlaAccountant
from repro.config import CostConfig
from repro.costs.dynamic import (
    TieredVmPricingSlaCostModel,
    TimeOfUseEnergyCostModel,
    peak_offpeak_schedule,
    spot_and_premium_prices,
)
from repro.costs.energy import EnergyCostModel
from repro.costs.model import OperationCostModel
from repro.errors import ConfigurationError

from tests.conftest import make_pm, make_vm


@pytest.fixture
def dc():
    datacenter = Datacenter([make_pm(0)], [make_vm(0)])
    datacenter.place(0, 0)
    datacenter.share_cpu()
    return datacenter


class TestSchedule:
    def test_peak_and_offpeak_bands(self):
        schedule = peak_offpeak_schedule(
            peak_multiplier=2.0, offpeak_multiplier=0.5,
            peak_start_hour=8.0, peak_end_hour=20.0,
        )
        assert schedule(12.0) == 2.0
        assert schedule(3.0) == 0.5
        assert schedule(20.0) == 0.5  # end is exclusive
        assert schedule(8.0) == 2.0  # start is inclusive

    def test_wraps_past_midnight(self):
        schedule = peak_offpeak_schedule()
        assert schedule(25.0) == schedule(1.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            peak_offpeak_schedule(peak_multiplier=0.0)
        with pytest.raises(ConfigurationError):
            peak_offpeak_schedule(peak_start_hour=10.0, peak_end_hour=5.0)


class TestTimeOfUseEnergy:
    def test_multiplier_applied(self, dc):
        config = CostConfig()
        flat = EnergyCostModel(config)
        tou = TimeOfUseEnergyCostModel(
            config, lambda hour: 2.0, interval_seconds=300.0
        )
        flat_cost = flat.step_cost(dc, 300.0)
        tou_cost = tou.step_cost(dc, 300.0)
        assert tou_cost == pytest.approx(2.0 * flat_cost)
        assert tou.total_usd == pytest.approx(tou_cost)

    def test_clock_advances(self, dc):
        tou = TimeOfUseEnergyCostModel(
            CostConfig(), lambda hour: 1.0, interval_seconds=3600.0,
            start_hour=23.0,
        )
        tou.step_cost(dc, 3600.0)
        tou.step_cost(dc, 3600.0)
        assert tou.clock_hours == pytest.approx(1.0)  # wrapped past midnight

    def test_band_transition(self, dc):
        schedule = peak_offpeak_schedule(
            peak_multiplier=3.0, offpeak_multiplier=1.0,
            peak_start_hour=1.0, peak_end_hour=2.0,
        )
        tou = TimeOfUseEnergyCostModel(
            CostConfig(), schedule, interval_seconds=3600.0, start_hour=0.0
        )
        offpeak = tou.step_cost(dc, 3600.0)  # hour 0
        peak = tou.step_cost(dc, 3600.0)  # hour 1
        assert peak == pytest.approx(3.0 * offpeak)

    def test_invalid_schedule_value(self, dc):
        tou = TimeOfUseEnergyCostModel(
            CostConfig(), lambda hour: 0.0, interval_seconds=300.0
        )
        with pytest.raises(ConfigurationError):
            tou.step_cost(dc, 300.0)

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            TimeOfUseEnergyCostModel(
                CostConfig(), lambda hour: 1.0, interval_seconds=0.0
            )


class TestTieredSla:
    def _violating_accountant(self, vm_ids):
        accountant = SlaAccountant()
        for vm_id in vm_ids:
            accountant.vm_record(vm_id).record_step(30.0, 300.0)
        return accountant

    def test_premium_vm_costs_more(self):
        config = CostConfig()
        model = TieredVmPricingSlaCostModel(config, {0: 2.4, 1: 0.4})
        accountant = self._violating_accountant([0, 1])
        cost = model.step_cost(accountant, 300.0)
        expected = 0.333 * (2.4 + 0.4) * (300.0 / 3600.0)
        assert cost == pytest.approx(expected)

    def test_missing_vm_uses_default_price(self):
        config = CostConfig(vm_price_usd_per_hour=1.2)
        model = TieredVmPricingSlaCostModel(config, {})
        assert model.price_of(7) == pytest.approx(1.2)

    def test_negative_price_rejected(self):
        with pytest.raises(ConfigurationError):
            TieredVmPricingSlaCostModel(CostConfig(), {0: -1.0})

    def test_spot_and_premium_helper(self):
        prices = spot_and_premium_prices(
            4, premium_vms=[1], premium_price=3.0, spot_price=0.5
        )
        assert prices[1] == 3.0
        assert prices[0] == 0.5
        with pytest.raises(ConfigurationError):
            spot_and_premium_prices(2, premium_vms=[5])


class TestIntegrationWithSimulation:
    def test_custom_cost_model_in_run(self, tiny_simulation):
        from repro.baselines.noop import NoMigrationScheduler

        config = tiny_simulation.config.costs
        custom = OperationCostModel(
            config,
            energy=TimeOfUseEnergyCostModel(
                config, lambda hour: 2.0, interval_seconds=300.0
            ),
        )
        doubled = tiny_simulation.run(
            NoMigrationScheduler(), cost_model=custom
        )
        tiny_simulation.reset()
        flat = tiny_simulation.run(NoMigrationScheduler())
        assert doubled.metrics.total_energy_cost_usd == pytest.approx(
            2.0 * flat.metrics.total_energy_cost_usd
        )
