"""Tests for the exception hierarchy."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.ConfigurationError,
        errors.CapacityError,
        errors.PlacementError,
        errors.UnknownEntityError,
        errors.MigrationError,
        errors.TraceError,
        errors.SchedulerError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    assert issubclass(exc, Exception)


def test_single_except_catches_everything():
    try:
        raise errors.CapacityError("full")
    except errors.ReproError as caught:
        assert "full" in str(caught)
