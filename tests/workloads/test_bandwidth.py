"""Tests for the bandwidth-dimension (multi-resource) extension."""

import numpy as np
import pytest

from repro.baselines.noop import NoMigrationScheduler
from repro.cloudsim.datacenter import Datacenter
from repro.cloudsim.simulation import Simulation
from repro.cloudsim.sla import SlaAccountant
from repro.config import DatacenterConfig, SimulationConfig
from repro.core.agent import MeghScheduler
from repro.errors import ConfigurationError, TraceError
from repro.workloads.base import ArrayWorkload
from repro.workloads.bandwidth import (
    BandwidthWorkload,
    derive_bandwidth_workload,
)
from repro.workloads.planetlab import generate_planetlab_workload

from tests.conftest import make_pm, make_vm


@pytest.fixture
def cpu_workload():
    return ArrayWorkload(
        np.array([[0.2, 0.4], [0.6, 0.8]]), name="cpu"
    )


class TestBandwidthWorkload:
    def test_wraps_cpu_and_adds_bandwidth(self, cpu_workload):
        bw = BandwidthWorkload(
            cpu_workload, np.array([[0.1, 0.2], [0.3, 0.4]])
        )
        assert bw.num_vms == 2
        assert bw.utilization(0, 1) == pytest.approx(0.4)
        assert bw.bandwidth_utilization(1, 0) == pytest.approx(0.3)

    def test_shape_mismatch(self, cpu_workload):
        with pytest.raises(TraceError):
            BandwidthWorkload(cpu_workload, np.zeros((3, 2)))

    def test_range_checked(self, cpu_workload):
        with pytest.raises(TraceError):
            BandwidthWorkload(cpu_workload, np.full((2, 2), 1.5))

    def test_inactive_steps_have_zero_bandwidth(self):
        cpu = ArrayWorkload(
            np.array([[0.5, 0.5]]),
            active=np.array([[True, False]]),
        )
        bw = BandwidthWorkload(cpu, np.array([[0.9, 0.9]]))
        assert bw.bandwidth_utilization(0, 0) == 0.9
        assert bw.bandwidth_utilization(0, 1) == 0.0


class TestDerive:
    def test_correlation_with_cpu(self):
        cpu = generate_planetlab_workload(num_vms=30, num_steps=100, seed=0)
        derived = derive_bandwidth_workload(
            cpu, correlation=0.8, noise_std=0.02, seed=0
        )
        cpu_flat = np.asarray(cpu.matrix).ravel()
        bw_flat = np.asarray(derived.bandwidth_matrix).ravel()
        corr = np.corrcoef(cpu_flat, bw_flat)[0, 1]
        assert corr > 0.7

    def test_zero_correlation_flat(self):
        cpu = generate_planetlab_workload(num_vms=10, num_steps=50, seed=0)
        derived = derive_bandwidth_workload(
            cpu, correlation=0.0, base_level=0.2, noise_std=0.0, seed=0
        )
        assert np.allclose(derived.bandwidth_matrix, 0.2)

    def test_invalid_params(self):
        cpu = generate_planetlab_workload(num_vms=2, num_steps=5, seed=0)
        with pytest.raises(ConfigurationError):
            derive_bandwidth_workload(cpu, correlation=2.0)
        with pytest.raises(ConfigurationError):
            derive_bandwidth_workload(cpu, noise_std=-1.0)


class TestDatacenterBandwidth:
    def test_bandwidth_utilization_accounting(self, placed_datacenter):
        placed_datacenter.vm(0).set_bandwidth_demand(0.5)
        placed_datacenter.vm(1).set_bandwidth_demand(0.5)
        # Two VMs at 50 Mbps each on a 1000-Mbps host link = 10 %.
        assert placed_datacenter.bandwidth_demanded_utilization(
            0
        ) == pytest.approx(0.1)

    def test_bandwidth_overload_detection(self, placed_datacenter):
        placed_datacenter.vm(4).set_bandwidth_demand(1.0)  # 100 of 1000
        assert placed_datacenter.is_bandwidth_overloaded(2, threshold=0.05)
        assert not placed_datacenter.is_bandwidth_overloaded(2, threshold=0.2)

    def test_overloaded_ids_with_bandwidth(self, placed_datacenter):
        placed_datacenter.vm(4).set_bandwidth_demand(1.0)
        cpu_only = placed_datacenter.overloaded_pm_ids(0.7)
        both = placed_datacenter.overloaded_pm_ids(
            0.7, bandwidth_threshold=0.05
        )
        assert cpu_only == []
        assert both == [2]

    def test_inactive_vm_has_zero_bandwidth(self, placed_datacenter):
        placed_datacenter.vm(0).set_bandwidth_demand(0.9)
        placed_datacenter.vm(0).set_active(False)
        assert placed_datacenter.bandwidth_demanded_mbps(0) == 0.0

    def test_invalid_bandwidth_demand(self, placed_datacenter):
        with pytest.raises(ConfigurationError):
            placed_datacenter.vm(0).set_bandwidth_demand(1.5)


class TestSlaBandwidth:
    def test_bandwidth_overload_bills_downtime(self):
        dc = Datacenter([make_pm(0)], [make_vm(0)])
        dc.place(0, 0)
        dc.vm(0).set_demand(0.1)  # CPU fine
        dc.vm(0).set_bandwidth_demand(0.9)  # 90 of 1000 Mbps... too low
        accountant = SlaAccountant(
            beta=0.7, bandwidth_threshold=0.05
        )
        accountant.observe_step(dc, 300.0)
        assert accountant.downtime_fraction(0) == pytest.approx(1.0)

    def test_without_threshold_bandwidth_ignored(self):
        dc = Datacenter([make_pm(0)], [make_vm(0)])
        dc.place(0, 0)
        dc.vm(0).set_bandwidth_demand(1.0)
        accountant = SlaAccountant(beta=0.7)
        accountant.observe_step(dc, 300.0)
        assert accountant.downtime_fraction(0) == 0.0


class TestEndToEndBandwidthAware:
    def _simulation(self, bandwidth_aware: bool):
        pms = [make_pm(i) for i in range(4)]
        # VM bandwidth allocation 500 Mbps: two busy VMs saturate a
        # 1000-Mbps host link.
        vms = [
            make_vm(j, mips=800.0, ram_mb=512.0) for j in range(6)
        ]
        for vm in vms:
            vm.bandwidth_mbps = 500.0
        dc = Datacenter(pms, vms)
        for j in range(6):
            dc.place(j, j % 2)  # packed on two hosts
        cpu = ArrayWorkload(np.full((6, 30), 0.2))
        workload = BandwidthWorkload(cpu, np.full((6, 30), 0.9))
        config = SimulationConfig(
            num_steps=30,
            datacenter=DatacenterConfig(bandwidth_aware=bandwidth_aware),
        )
        return Simulation(dc, workload, config)

    def test_noop_pays_bandwidth_sla_when_aware(self):
        aware = self._simulation(True).run(NoMigrationScheduler())
        blind = self._simulation(False).run(NoMigrationScheduler())
        assert aware.metrics.total_sla_cost_usd > 0.0
        assert blind.metrics.total_sla_cost_usd == 0.0

    def test_megh_relieves_bandwidth_overloads(self):
        sim = self._simulation(True)
        megh = MeghScheduler.from_simulation(sim, seed=0)
        assert megh.bandwidth_beta is not None
        result = sim.run(megh)
        # Megh must start migrating VMs off the saturated links.
        assert result.total_migrations > 0
        # And the final configuration has fewer network-overloaded hosts
        # than the packed start (3 VMs x 450 Mbps on a 1-Gbps link).
        final_overloads = len(
            sim.datacenter.overloaded_pm_ids(0.7, 0.7)
        )
        assert final_overloads < 2
