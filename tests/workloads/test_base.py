"""Unit tests for the ArrayWorkload container."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads.base import ArrayWorkload, Workload


@pytest.fixture
def workload():
    matrix = np.array([[0.1, 0.2, 0.3], [0.4, 0.5, 0.6]])
    return ArrayWorkload(matrix, name="test")


class TestValidation:
    def test_rejects_1d(self):
        with pytest.raises(TraceError):
            ArrayWorkload(np.array([0.1, 0.2]))

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            ArrayWorkload(np.empty((0, 0)))

    def test_rejects_out_of_range(self):
        with pytest.raises(TraceError):
            ArrayWorkload(np.array([[1.5]]))
        with pytest.raises(TraceError):
            ArrayWorkload(np.array([[-0.1]]))

    def test_rejects_mismatched_mask(self):
        with pytest.raises(TraceError):
            ArrayWorkload(np.array([[0.5]]), active=np.array([[True, False]]))


class TestAccess:
    def test_shape(self, workload):
        assert workload.num_vms == 2
        assert workload.num_steps == 3

    def test_utilization(self, workload):
        assert workload.utilization(1, 2) == pytest.approx(0.6)

    def test_always_active_by_default(self, workload):
        assert workload.is_active(0, 0)

    def test_inactive_returns_zero(self):
        w = ArrayWorkload(
            np.array([[0.5, 0.5]]), active=np.array([[True, False]])
        )
        assert w.utilization(0, 0) == 0.5
        assert w.utilization(0, 1) == 0.0
        assert not w.is_active(0, 1)

    def test_bounds_checked(self, workload):
        with pytest.raises(TraceError):
            workload.utilization(5, 0)
        with pytest.raises(TraceError):
            workload.utilization(0, 5)

    def test_matrix_readonly(self, workload):
        with pytest.raises(ValueError):
            workload.matrix[0, 0] = 0.9

    def test_satisfies_protocol(self, workload):
        assert isinstance(workload, Workload)


class TestSlicing:
    def test_slice_vms(self, workload):
        sliced = workload.slice_vms([1])
        assert sliced.num_vms == 1
        assert sliced.utilization(0, 0) == pytest.approx(0.4)

    def test_slice_vms_empty_rejected(self, workload):
        with pytest.raises(TraceError):
            workload.slice_vms([])

    def test_slice_steps(self, workload):
        sliced = workload.slice_steps(1, 3)
        assert sliced.num_steps == 2
        assert sliced.utilization(0, 0) == pytest.approx(0.2)

    def test_slice_steps_invalid(self, workload):
        with pytest.raises(TraceError):
            workload.slice_steps(2, 2)
        with pytest.raises(TraceError):
            workload.slice_steps(0, 99)


class TestComposition:
    def test_repeat_tiles_steps(self, workload):
        tiled = workload.repeat(3)
        assert tiled.num_steps == 9
        assert tiled.utilization(0, 3) == workload.utilization(0, 0)
        assert tiled.utilization(1, 8) == workload.utilization(1, 2)

    def test_repeat_invalid(self, workload):
        with pytest.raises(TraceError):
            workload.repeat(0)

    def test_concat_steps(self, workload):
        from repro.workloads.base import concat_steps

        combined = concat_steps([workload, workload.slice_steps(0, 1)])
        assert combined.num_steps == 4
        assert combined.utilization(0, 3) == workload.utilization(0, 0)

    def test_concat_requires_same_vms(self, workload):
        from repro.workloads.base import concat_steps

        with pytest.raises(TraceError):
            concat_steps([workload, workload.slice_vms([0])])
        with pytest.raises(TraceError):
            concat_steps([])

    def test_stack_vms(self, workload):
        from repro.workloads.base import stack_vms

        fleet = stack_vms([workload, workload.slice_vms([0])])
        assert fleet.num_vms == 3
        assert fleet.utilization(2, 1) == workload.utilization(0, 1)

    def test_stack_requires_same_steps(self, workload):
        from repro.workloads.base import stack_vms

        with pytest.raises(TraceError):
            stack_vms([workload, workload.slice_steps(0, 2)])
        with pytest.raises(TraceError):
            stack_vms([])

    def test_activity_masks_compose(self):
        masked = ArrayWorkload(
            np.array([[0.5, 0.5]]), active=np.array([[True, False]])
        )
        tiled = masked.repeat(2)
        assert tiled.is_active(0, 0)
        assert not tiled.is_active(0, 1)
        assert not tiled.is_active(0, 3)
