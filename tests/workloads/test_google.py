"""Tests for the Google-Cluster-style task generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.google import (
    GoogleClusterWorkloadConfig,
    generate_google_workload,
    sample_task_durations_seconds,
)


class TestGenerator:
    def test_shape(self):
        w = generate_google_workload(num_vms=10, num_steps=50, seed=0)
        assert w.num_vms == 10
        assert w.num_steps == 50

    def test_deterministic(self):
        a = generate_google_workload(num_vms=8, num_steps=40, seed=3)
        b = generate_google_workload(num_vms=8, num_steps=40, seed=3)
        assert np.array_equal(a.matrix, b.matrix)
        assert np.array_equal(a.activity, b.activity)

    def test_idle_gaps_between_tasks(self):
        w = generate_google_workload(
            num_vms=40, num_steps=300, gap_mean_steps=10.0, seed=0
        )
        activity = np.asarray(w.activity)
        assert activity.mean() < 0.95  # some idle time exists

    def test_inactive_means_zero_utilization(self):
        w = generate_google_workload(num_vms=20, num_steps=100, seed=1)
        for vm_id in range(20):
            for step in range(100):
                if not w.is_active(vm_id, step):
                    assert w.utilization(vm_id, step) == 0.0

    def test_tasks_cover_active_steps(self):
        w, tasks = generate_google_workload(
            num_vms=10, num_steps=80, seed=0, return_tasks=True
        )
        covered = np.zeros((10, 80), dtype=bool)
        for task in tasks:
            covered[task.vm_id, task.start_step : task.end_step] = True
        assert np.array_equal(covered, np.asarray(w.activity))

    def test_low_mean_load(self):
        w = generate_google_workload(num_vms=100, num_steps=200, seed=0)
        matrix = np.asarray(w.matrix)
        active = np.asarray(w.activity)
        assert matrix[active].mean() < 0.40

    def test_config_and_overrides_exclusive(self):
        config = GoogleClusterWorkloadConfig(num_vms=5, num_steps=10)
        with pytest.raises(ConfigurationError):
            generate_google_workload(config, num_vms=8)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_vms": 0},
            {"min_duration_seconds": 0.0},
            {"min_duration_seconds": 1e7},
            {"short_task_fraction": 2.0},
            {"interval_seconds": 0.0},
            {"gap_mean_steps": -1.0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            GoogleClusterWorkloadConfig(**kwargs)


class TestDurations:
    def test_duration_range_spans_decades(self):
        # Paper Figure 1(b): durations from ~10^1 to ~10^6 seconds.
        config = GoogleClusterWorkloadConfig(num_vms=1, num_steps=1)
        rng = np.random.default_rng(0)
        durations = sample_task_durations_seconds(rng, 5000, config)
        assert durations.min() >= config.min_duration_seconds
        assert durations.max() <= config.max_duration_seconds
        assert durations.max() / durations.min() > 1e3

    def test_durations_not_normal(self):
        # The paper stresses the durations fit no standard distribution;
        # at minimum they must be strongly right-skewed.
        config = GoogleClusterWorkloadConfig(num_vms=1, num_steps=1)
        rng = np.random.default_rng(0)
        durations = sample_task_durations_seconds(rng, 5000, config)
        assert np.mean(durations) > 5 * np.median(durations)

    def test_short_task_bump(self):
        config = GoogleClusterWorkloadConfig(
            num_vms=1, num_steps=1, short_task_fraction=0.9
        )
        rng = np.random.default_rng(0)
        durations = sample_task_durations_seconds(rng, 2000, config)
        # With 90 % short tasks the median collapses to the bump (~200 s).
        assert np.median(durations) < 2000.0

    def test_task_fields(self):
        _, tasks = generate_google_workload(
            num_vms=5, num_steps=50, seed=0, return_tasks=True
        )
        for task in tasks:
            assert 0 <= task.vm_id < 5
            assert task.duration_steps >= 1
            assert 0.0 < task.utilization <= 1.0
            assert task.end_step <= 50
