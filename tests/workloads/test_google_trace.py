"""Tests for the real Google cluster task_events loader."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads.google_trace import (
    EVENT_SCHEDULE,
    load_google_task_events,
    parse_task_events,
)


def event_row(
    timestamp_us, job_id, task_index, event_type, cpu=""
):
    """One task_events CSV row (13 columns, mostly blank)."""
    row = [""] * 13
    row[0] = str(timestamp_us)
    row[2] = str(job_id)
    row[3] = str(task_index)
    row[5] = str(event_type)
    row[9] = str(cpu)
    return ",".join(row)


@pytest.fixture
def trace_file(tmp_path):
    """Two tasks: one finishes, one killed, one still running."""
    lines = [
        event_row(0, 100, 0, 0),  # SUBMIT (ignored)
        event_row(300_000_000, 100, 0, EVENT_SCHEDULE, cpu="0.25"),
        event_row(900_000_000, 100, 0, 4),  # FINISH at 900 s
        event_row(600_000_000, 200, 1, EVENT_SCHEDULE, cpu="0.125"),
        event_row(1_200_000_000, 200, 1, 5),  # KILL at 1200 s
        event_row(1_500_000_000, 300, 0, EVENT_SCHEDULE),  # blank cpu
    ]
    path = tmp_path / "task_events.csv"
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestParse:
    def test_intervals_reconstructed(self, trace_file):
        intervals = parse_task_events(trace_file)
        assert len(intervals) == 3
        finished = next(i for i in intervals if i.job_id == 100)
        assert finished.start_seconds == pytest.approx(300.0)
        assert finished.end_seconds == pytest.approx(900.0)
        assert finished.cpu_request == pytest.approx(0.25)

    def test_open_interval_kept(self, trace_file):
        intervals = parse_task_events(trace_file)
        running = next(i for i in intervals if i.job_id == 300)
        assert running.end_seconds is None

    def test_unmatched_terminal_skipped(self, tmp_path):
        path = tmp_path / "orphan.csv"
        path.write_text(event_row(100, 1, 0, 4) + "\n")
        assert parse_task_events(str(path)) == []

    def test_missing_file(self):
        with pytest.raises(TraceError):
            parse_task_events("/nonexistent.csv")

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("1,2,3\n")
        with pytest.raises(TraceError):
            parse_task_events(str(path))

    def test_malformed_numbers_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(event_row("abc", 1, 0, 1) + "\n")
        with pytest.raises(TraceError):
            parse_task_events(str(path))

    def test_sorted_by_start(self, trace_file):
        intervals = parse_task_events(trace_file)
        starts = [i.start_seconds for i in intervals]
        assert starts == sorted(starts)


class TestLoad:
    def test_workload_shape_and_levels(self, trace_file):
        workload = load_google_task_events(
            trace_file, interval_seconds=300.0, cpu_scale=2.0
        )
        assert workload.num_vms == 3
        # Task (100, 0): active steps 1-2 (300-900 s) at 0.25*2 = 0.5.
        assert workload.is_active(0, 1)
        assert workload.utilization(0, 1) == pytest.approx(0.5)
        assert not workload.is_active(0, 0)
        assert not workload.is_active(0, 3)

    def test_blank_cpu_uses_default(self, trace_file):
        workload = load_google_task_events(
            trace_file, default_utilization=0.33
        )
        # Task (300, 0) runs from 1500 s to the horizon at the default.
        step = int(1500 // 300)
        assert workload.utilization(2, step) == pytest.approx(0.33)

    def test_open_interval_runs_to_end(self, trace_file):
        workload = load_google_task_events(trace_file, num_steps=8)
        assert workload.is_active(2, 7)

    def test_max_vms(self, trace_file):
        workload = load_google_task_events(trace_file, max_vms=2)
        assert workload.num_vms == 2

    def test_num_steps_truncates(self, trace_file):
        workload = load_google_task_events(trace_file, num_steps=3)
        assert workload.num_steps == 3

    def test_values_in_range(self, trace_file):
        workload = load_google_task_events(trace_file, cpu_scale=10.0)
        assert float(np.asarray(workload.matrix).max()) <= 1.0

    def test_invalid_interval(self, trace_file):
        with pytest.raises(TraceError):
            load_google_task_events(trace_file, interval_seconds=0.0)

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceError):
            load_google_task_events(str(path))

    def test_runs_through_simulator(self, trace_file):
        from repro.baselines.noop import NoMigrationScheduler
        from repro.harness.builders import build_simulation

        workload = load_google_task_events(trace_file, num_steps=6)
        sim = build_simulation(workload, num_pms=2, fleet_style="google")
        result = sim.run(NoMigrationScheduler(), num_steps=6)
        assert len(result.metrics.steps) == 6
