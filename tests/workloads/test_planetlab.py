"""Tests for the PlanetLab synthetic generator and trace loader."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.workloads.planetlab import (
    PlanetLabWorkloadConfig,
    STEPS_PER_DAY,
    generate_planetlab_workload,
    load_planetlab_directory,
)


class TestGenerator:
    def test_shape(self):
        w = generate_planetlab_workload(num_vms=10, num_steps=50, seed=0)
        assert w.num_vms == 10
        assert w.num_steps == 50

    def test_deterministic(self):
        a = generate_planetlab_workload(num_vms=8, num_steps=40, seed=3)
        b = generate_planetlab_workload(num_vms=8, num_steps=40, seed=3)
        assert np.array_equal(a.matrix, b.matrix)

    def test_seeds_differ(self):
        a = generate_planetlab_workload(num_vms=8, num_steps=40, seed=1)
        b = generate_planetlab_workload(num_vms=8, num_steps=40, seed=2)
        assert not np.array_equal(a.matrix, b.matrix)

    def test_values_in_range(self):
        w = generate_planetlab_workload(num_vms=20, num_steps=100, seed=0)
        assert np.all(w.matrix >= 0.0)
        assert np.all(w.matrix <= 1.0)

    def test_calibration_matches_paper_statistics(self):
        # Paper: mean ~12 %, high dispersion, heavy VMs present.
        w = generate_planetlab_workload(
            num_vms=200, num_steps=STEPS_PER_DAY, seed=0
        )
        matrix = np.asarray(w.matrix)
        assert 0.05 <= matrix.mean() <= 0.30
        assert matrix.std() >= 0.10
        assert matrix.max() >= 0.80

    def test_heavy_fraction_respected(self):
        w = generate_planetlab_workload(
            num_vms=100, num_steps=100, heavy_fraction=0.2, seed=0
        )
        per_vm_mean = np.asarray(w.matrix).mean(axis=1)
        heavy = int(np.sum(per_vm_mean > 0.35))
        assert 12 <= heavy <= 28  # ~20 expected

    def test_temporal_autocorrelation(self):
        # AR(1) jitter means consecutive samples correlate.
        w = generate_planetlab_workload(num_vms=50, num_steps=200, seed=0)
        matrix = np.asarray(w.matrix)
        diffs = np.abs(np.diff(matrix, axis=1)).mean()
        shuffled = matrix.copy()
        rng = np.random.default_rng(0)
        for row in shuffled:
            rng.shuffle(row)
        shuffled_diffs = np.abs(np.diff(shuffled, axis=1)).mean()
        assert diffs < shuffled_diffs

    def test_always_active(self):
        w = generate_planetlab_workload(num_vms=5, num_steps=10, seed=0)
        assert np.all(w.activity)

    def test_config_and_overrides_exclusive(self):
        config = PlanetLabWorkloadConfig(num_vms=5, num_steps=10)
        with pytest.raises(ConfigurationError):
            generate_planetlab_workload(config, num_vms=8)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_vms": 0},
            {"heavy_fraction": 1.5},
            {"ar_coefficient": 1.0},
            {"base_mean": -0.1},
            {"burst_duration_steps": 0.5},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            PlanetLabWorkloadConfig(**kwargs)


class TestLoader:
    def _write_trace(self, directory, name, values):
        path = directory / name
        path.write_text("\n".join(str(v) for v in values) + "\n")

    def test_loads_comon_format(self, tmp_path):
        self._write_trace(tmp_path, "vm_a", [10, 20, 30])
        self._write_trace(tmp_path, "vm_b", [40, 50, 60])
        w = load_planetlab_directory(str(tmp_path))
        assert w.num_vms == 2
        assert w.num_steps == 3
        assert w.utilization(0, 1) == pytest.approx(0.20)
        assert w.utilization(1, 2) == pytest.approx(0.60)

    def test_truncates_to_shortest(self, tmp_path):
        self._write_trace(tmp_path, "a", [10, 20, 30, 40])
        self._write_trace(tmp_path, "b", [50, 60])
        w = load_planetlab_directory(str(tmp_path))
        assert w.num_steps == 2

    def test_explicit_steps_enforced(self, tmp_path):
        self._write_trace(tmp_path, "a", [10, 20])
        with pytest.raises(TraceError):
            load_planetlab_directory(str(tmp_path), num_steps=5)

    def test_missing_directory(self):
        with pytest.raises(TraceError):
            load_planetlab_directory("/nonexistent/path")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(TraceError):
            load_planetlab_directory(str(tmp_path))

    def test_empty_file(self, tmp_path):
        (tmp_path / "empty").write_text("")
        with pytest.raises(TraceError):
            load_planetlab_directory(str(tmp_path))
