"""Tests for the Poisson-arrival queueing workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.queueing import (
    QueueingWorkloadConfig,
    expected_busy_fraction,
    generate_queueing_workload,
)


class TestConfig:
    def test_offered_load(self):
        config = QueueingWorkloadConfig(
            arrival_rate=0.1, mean_service_steps=6.0
        )
        assert config.offered_load == pytest.approx(0.6)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_vms": 0},
            {"arrival_rate": -0.1},
            {"mean_service_steps": 0.0},
            {"utilization_low": 0.9, "utilization_high": 0.1},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            QueueingWorkloadConfig(**kwargs)


class TestGenerator:
    def test_shape_and_determinism(self):
        a = generate_queueing_workload(num_vms=5, num_steps=40, seed=3)
        b = generate_queueing_workload(num_vms=5, num_steps=40, seed=3)
        assert a.num_vms == 5
        assert a.num_steps == 40
        assert np.array_equal(a.matrix, b.matrix)

    def test_config_and_overrides_exclusive(self):
        with pytest.raises(ConfigurationError):
            generate_queueing_workload(
                QueueingWorkloadConfig(), num_vms=3
            )

    def test_idle_when_queue_empty(self):
        w = generate_queueing_workload(
            num_vms=20, num_steps=100, arrival_rate=0.02, seed=0
        )
        activity = np.asarray(w.activity)
        assert activity.mean() < 0.5  # mostly idle at rho = 0.12

    def test_busy_fraction_tracks_offered_load(self):
        # rho = 0.5: long-run busy fraction near 0.5.
        config = QueueingWorkloadConfig(
            num_vms=100,
            num_steps=400,
            arrival_rate=0.1,
            mean_service_steps=5.0,
            seed=1,
        )
        w = generate_queueing_workload(config)
        busy = float(np.asarray(w.activity).mean())
        assert busy == pytest.approx(expected_busy_fraction(config), abs=0.08)

    def test_saturated_stream_always_busy_eventually(self):
        config = QueueingWorkloadConfig(
            num_vms=20,
            num_steps=200,
            arrival_rate=0.5,
            mean_service_steps=10.0,  # rho = 5: saturated
            seed=0,
        )
        w = generate_queueing_workload(config)
        late_activity = np.asarray(w.activity)[:, 100:]
        assert late_activity.mean() > 0.95
        assert expected_busy_fraction(config) == 1.0

    def test_demand_within_configured_range(self):
        w = generate_queueing_workload(
            num_vms=10,
            num_steps=100,
            utilization_low=0.3,
            utilization_high=0.4,
            arrival_rate=0.3,
            seed=0,
        )
        matrix = np.asarray(w.matrix)
        busy = np.asarray(w.activity)
        assert np.all(matrix[busy] >= 0.3)
        assert np.all(matrix[busy] <= 0.4)

    def test_jobs_run_to_completion(self):
        # A busy period's demand stays constant until the job finishes
        # (FIFO, one job at a time).
        w = generate_queueing_workload(
            num_vms=1,
            num_steps=60,
            arrival_rate=0.05,
            mean_service_steps=8.0,
            seed=5,
        )
        matrix = np.asarray(w.matrix)[0]
        activity = np.asarray(w.activity)[0]
        # Within each maximal busy run, consecutive equal demands occur.
        run_values = []
        current = None
        for step in range(60):
            if activity[step]:
                if current is None:
                    current = matrix[step]
                run_values.append((step, matrix[step]))
            else:
                current = None
        # At least some busy time exists for this seed.
        assert run_values

    def test_runs_through_simulator(self):
        from repro.baselines.noop import NoMigrationScheduler
        from repro.harness.builders import build_simulation

        workload = generate_queueing_workload(num_vms=8, num_steps=30, seed=0)
        sim = build_simulation(workload, num_pms=4)
        result = sim.run(NoMigrationScheduler())
        assert len(result.metrics.steps) == 30
