"""Tests for the workload statistics backing Figure 1."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads.base import ArrayWorkload
from repro.workloads.statistics import (
    cullen_frey_coordinates,
    duration_histogram,
    nearest_standard_distribution,
    summarize_workload,
)
from repro.workloads.planetlab import generate_planetlab_workload


class TestSummarize:
    def test_basic_statistics(self):
        matrix = np.array([[0.2, 0.4], [0.6, 0.8]])
        stats = summarize_workload(ArrayWorkload(matrix))
        assert stats.num_vms == 2
        assert stats.num_steps == 2
        assert stats.mean_utilization == pytest.approx(0.5)
        assert stats.per_step_mean == pytest.approx((0.4, 0.6))
        assert stats.per_step_max == pytest.approx((0.6, 0.8))
        assert stats.per_step_min == pytest.approx((0.2, 0.4))
        assert stats.activity_fraction == 1.0

    def test_activity_mask_respected(self):
        matrix = np.array([[0.5, 0.5]])
        active = np.array([[True, False]])
        stats = summarize_workload(ArrayWorkload(matrix, active))
        assert stats.activity_fraction == pytest.approx(0.5)
        assert stats.mean_utilization == pytest.approx(0.5)

    def test_describe_mentions_shape(self):
        stats = summarize_workload(ArrayWorkload(np.array([[0.1]])))
        assert "1 VMs x 1 steps" in stats.describe()

    def test_fig1a_shape_on_planetlab(self):
        # Figure 1(a): per-step max far above per-step mean.
        w = generate_planetlab_workload(num_vms=100, num_steps=100, seed=0)
        stats = summarize_workload(w)
        assert max(stats.per_step_max) > 3 * max(stats.per_step_mean)


class TestDurationHistogram:
    def test_log_bins_cover_range(self):
        durations = [10.0, 100.0, 1000.0, 1e6]
        bins = duration_histogram(durations, bins_per_decade=1)
        assert sum(count for _, _, count in bins) == 4
        assert bins[0][0] <= 10.0
        assert bins[-1][1] >= 1e6

    def test_counts_in_right_bins(self):
        durations = [15.0] * 5 + [1500.0] * 3
        bins = duration_histogram(durations, bins_per_decade=1)
        by_low = {int(low): count for low, _, count in bins}
        assert by_low[10] == 5
        assert by_low[1000] == 3

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            duration_histogram([])
        with pytest.raises(TraceError):
            duration_histogram([0.0, -1.0])


class TestCullenFrey:
    def test_normal_near_reference(self):
        rng = np.random.default_rng(0)
        skew2, kurt = cullen_frey_coordinates(rng.normal(size=20000))
        assert skew2 == pytest.approx(0.0, abs=0.05)
        assert kurt == pytest.approx(3.0, abs=0.2)

    def test_uniform_near_reference(self):
        rng = np.random.default_rng(0)
        skew2, kurt = cullen_frey_coordinates(rng.uniform(size=20000))
        assert kurt == pytest.approx(1.8, abs=0.1)

    def test_exponential_near_reference(self):
        rng = np.random.default_rng(0)
        skew2, kurt = cullen_frey_coordinates(rng.exponential(size=50000))
        assert skew2 == pytest.approx(4.0, abs=0.6)

    def test_constant_series(self):
        assert cullen_frey_coordinates([2.0] * 10) == (0.0, 0.0)

    def test_requires_four_samples(self):
        with pytest.raises(TraceError):
            cullen_frey_coordinates([1.0, 2.0])

    def test_nearest_named_distributions(self):
        rng = np.random.default_rng(0)
        assert nearest_standard_distribution(rng.normal(size=20000)) == "normal"
        assert (
            nearest_standard_distribution(rng.uniform(size=20000)) == "uniform"
        )

    def test_heavy_tail_is_nonstandard(self):
        # Paper: neither trace matches a standard family; a log-uniform
        # heavy tail must land far from every reference point.
        rng = np.random.default_rng(0)
        samples = 10.0 ** rng.uniform(1, 6, size=5000)
        assert nearest_standard_distribution(samples) == "none (non-standard)"
