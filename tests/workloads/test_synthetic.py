"""Tests for the simple synthetic workload shapes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.synthetic import (
    constant_workload,
    periodic_workload,
    random_walk_workload,
    spike_workload,
)


class TestConstant:
    def test_level(self):
        w = constant_workload(3, 5, level=0.4)
        assert np.all(np.asarray(w.matrix) == 0.4)

    def test_invalid_level(self):
        with pytest.raises(ConfigurationError):
            constant_workload(3, 5, level=1.2)


class TestPeriodic:
    def test_bounds(self):
        w = periodic_workload(4, 100, low=0.2, high=0.8)
        matrix = np.asarray(w.matrix)
        assert matrix.min() >= 0.2 - 1e-9
        assert matrix.max() <= 0.8 + 1e-9

    def test_periodicity(self):
        w = periodic_workload(1, 96, low=0.0, high=1.0, period=48)
        matrix = np.asarray(w.matrix)
        assert matrix[0, 0] == pytest.approx(matrix[0, 48], abs=1e-9)

    def test_phase_shift_varies_vms(self):
        w = periodic_workload(4, 48, phase_shift=True)
        matrix = np.asarray(w.matrix)
        assert not np.allclose(matrix[0], matrix[1])

    def test_no_phase_shift(self):
        w = periodic_workload(4, 48, phase_shift=False)
        matrix = np.asarray(w.matrix)
        assert np.allclose(matrix[0], matrix[3])

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            periodic_workload(1, 10, low=0.9, high=0.1)
        with pytest.raises(ConfigurationError):
            periodic_workload(1, 10, period=1)


class TestRandomWalk:
    def test_bounds(self):
        w = random_walk_workload(10, 200, seed=0)
        matrix = np.asarray(w.matrix)
        assert matrix.min() >= 0.0
        assert matrix.max() <= 1.0

    def test_deterministic(self):
        a = random_walk_workload(5, 50, seed=2)
        b = random_walk_workload(5, 50, seed=2)
        assert np.array_equal(a.matrix, b.matrix)

    def test_moves_from_start(self):
        w = random_walk_workload(5, 100, start=0.5, step_std=0.1, seed=0)
        matrix = np.asarray(w.matrix)
        assert np.abs(matrix[:, -1] - 0.5).max() > 0.01

    def test_invalid_start(self):
        with pytest.raises(ConfigurationError):
            random_walk_workload(1, 10, start=2.0)


class TestSpike:
    def test_base_and_spike_values_only(self):
        w = spike_workload(5, 100, base=0.1, spike=0.9, seed=0)
        values = set(np.unique(np.asarray(w.matrix)))
        assert values <= {0.1, 0.9}

    def test_spike_probability_roughly_respected(self):
        w = spike_workload(
            50, 200, base=0.0, spike=1.0, spike_probability=0.1, seed=0
        )
        fraction = np.asarray(w.matrix).mean()
        assert 0.05 < fraction < 0.15

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            spike_workload(1, 10, base=2.0)
        with pytest.raises(ConfigurationError):
            spike_workload(1, 10, spike_probability=-0.1)
