"""Tests for trace persistence (NPZ/CSV/task events)."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads.base import ArrayWorkload
from repro.workloads.google import GoogleTask, generate_google_workload
from repro.workloads.planetlab import generate_planetlab_workload
from repro.workloads.traces import (
    export_task_events,
    load_task_events,
    load_workload_csv,
    load_workload_npz,
    read_task_events,
    save_workload_csv,
    save_workload_npz,
)


@pytest.fixture
def masked_workload():
    matrix = np.array([[0.25, 0.5, 0.0], [0.75, 0.0, 1.0]])
    activity = np.array([[True, True, False], [True, False, True]])
    return ArrayWorkload(matrix, activity, name="masked")


class TestNpzRoundTrip:
    def test_matrix_and_mask_preserved(self, masked_workload, tmp_path):
        path = str(tmp_path / "trace.npz")
        save_workload_npz(masked_workload, path)
        loaded = load_workload_npz(path)
        assert np.array_equal(loaded.matrix, masked_workload.matrix)
        assert np.array_equal(loaded.activity, masked_workload.activity)
        assert loaded.name == "masked"

    def test_planetlab_roundtrip(self, tmp_path):
        workload = generate_planetlab_workload(num_vms=6, num_steps=20, seed=1)
        path = str(tmp_path / "pl.npz")
        save_workload_npz(workload, path)
        loaded = load_workload_npz(path)
        assert np.allclose(loaded.matrix, workload.matrix)

    def test_missing_file(self):
        with pytest.raises(TraceError):
            load_workload_npz("/nonexistent.npz")

    def test_wrong_npz(self, tmp_path):
        path = str(tmp_path / "other.npz")
        np.savez(path, other=np.zeros(3))
        with pytest.raises(TraceError):
            load_workload_npz(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a zip")
        with pytest.raises(TraceError):
            load_workload_npz(str(path))


class TestCsvRoundTrip:
    def test_roundtrip_with_mask(self, masked_workload, tmp_path):
        path = str(tmp_path / "trace.csv")
        save_workload_csv(masked_workload, path)
        loaded = load_workload_csv(path)
        assert np.allclose(loaded.matrix * loaded.activity,
                           np.asarray(masked_workload.matrix)
                           * np.asarray(masked_workload.activity))
        assert np.array_equal(loaded.activity, masked_workload.activity)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(TraceError):
            load_workload_csv(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceError):
            load_workload_csv(str(path))

    def test_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("vm_id,step_0,step_1\n0,0.5\n")
        with pytest.raises(TraceError):
            load_workload_csv(str(path))

    def test_non_numeric_cell(self, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text("vm_id,step_0\n0,abc\n")
        with pytest.raises(TraceError):
            load_workload_csv(str(path))

    def test_no_rows(self, tmp_path):
        path = tmp_path / "norows.csv"
        path.write_text("vm_id,step_0\n")
        with pytest.raises(TraceError):
            load_workload_csv(str(path))


class TestTaskEvents:
    def _tasks(self):
        return [
            GoogleTask(vm_id=0, start_step=0, duration_steps=3, utilization=0.4),
            GoogleTask(vm_id=1, start_step=2, duration_steps=2, utilization=0.8),
        ]

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "events.csv")
        export_task_events(self._tasks(), path)
        loaded = read_task_events(path)
        assert loaded == self._tasks()

    def test_build_workload_from_events(self, tmp_path):
        path = str(tmp_path / "events.csv")
        export_task_events(self._tasks(), path)
        workload = load_task_events(path)
        assert workload.num_vms == 2
        assert workload.num_steps == 4
        assert workload.utilization(0, 1) == pytest.approx(0.4)
        assert workload.utilization(1, 3) == pytest.approx(0.8)
        assert not workload.is_active(1, 0)

    def test_generated_tasks_roundtrip(self, tmp_path):
        workload, tasks = generate_google_workload(
            num_vms=5, num_steps=30, seed=0, return_tasks=True
        )
        path = str(tmp_path / "google.csv")
        export_task_events(tasks, path)
        rebuilt = load_task_events(path, num_vms=5, num_steps=30)
        # Activity masks must agree exactly; utilizations agree up to the
        # per-step noise the generator adds on top of the task level.
        assert np.array_equal(rebuilt.activity, workload.activity)

    def test_explicit_dims_validated(self, tmp_path):
        path = str(tmp_path / "events.csv")
        export_task_events(self._tasks(), path)
        with pytest.raises(TraceError):
            load_task_events(path, num_vms=1)
        with pytest.raises(TraceError):
            load_task_events(path, num_steps=2)

    def test_bad_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(TraceError):
            read_task_events(str(path))

    def test_bad_values(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "vm_id,start_step,duration_steps,utilization\n0,0,0,0.5\n"
        )
        with pytest.raises(TraceError):
            read_task_events(str(path))

    def test_utilization_range(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "vm_id,start_step,duration_steps,utilization\n0,0,1,1.5\n"
        )
        with pytest.raises(TraceError):
            read_task_events(str(path))

    def test_empty_events(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("vm_id,start_step,duration_steps,utilization\n")
        with pytest.raises(TraceError):
            load_task_events(str(path))
